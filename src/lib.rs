//! Workspace umbrella for the MVF reproduction.
//!
//! This crate exists to host the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`; the library
//! surface simply re-exports the flow crate. Use [`mvf`] directly for
//! real work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mvf::*;
