//! Phase II: genetic-algorithm search over pin assignments.
//!
//! The paper optimizes per-function input/output pin permutations with a
//! genetic algorithm (DEAP in the authors' toolchain) whose fitness is the
//! synthesized circuit area, and compares against a random-search baseline
//! given the same number of fitness evaluations (Fig. 4). This crate is
//! the DEAP substitute: a small, deterministic, generic GA engine
//! ([`GeneticAlgorithm`]) with tournament selection, elitism,
//! user-supplied mutation/crossover, per-generation statistics, plus the
//! equal-budget [`random_search`] baseline and permutation operators
//! ([`permutation`]) for the pin-assignment genotype.
//!
//! # Parallel fitness evaluation
//!
//! Every fitness call is an independent full merge → synthesize →
//! tech-map flow, so the engine batches them: each generation first
//! *breeds* all children serially (selection and variation draw from
//! per-individual RNG streams pre-seeded off the master generator), then
//! *evaluates* the batch. With the `parallel` feature the batch is scored
//! on multiple threads (`std::thread::scope`); because breeding never
//! observes fitness-evaluation order and results are collected in genome
//! order, a parallel run is **bit-identical** to a serial run with the
//! same seed. The thread count comes from [`GaConfig::threads`], the
//! `MVF_THREADS` environment variable, or the machine's available
//! parallelism, in that order.
//!
//! # Example
//!
//! ```
//! use mvf_ga::{GaConfig, GeneticAlgorithm};
//! use rand::Rng;
//!
//! // Minimize the number of set bits of a 16-bit genome.
//! let cfg = GaConfig { population: 16, generations: 10, seed: 7, ..GaConfig::default() };
//! let result = GeneticAlgorithm::new(cfg)
//!     .run(
//!         |rng| rng.gen::<u16>(),
//!         |g, rng| *g ^= 1u16 << rng.gen_range(0..16),
//!         |a, b, _rng| (a & 0xFF00) | (b & 0x00FF),
//!         |g| g.count_ones() as f64,
//!     );
//! assert!(result.best_fitness <= 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod permutation;
pub mod strategy;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use strategy::{Ga, HillClimb, Objective, RandomSearch, SearchOutcome, SearchStrategy};

/// Configuration of the GA engine.
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations (after the initial one).
    pub generations: usize,
    /// Probability that a child is produced by crossover.
    pub crossover_rate: f64,
    /// Probability that a child is mutated.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Number of best individuals copied unchanged each generation.
    pub elitism: usize,
    /// RNG seed: runs are fully deterministic given the seed.
    pub seed: u64,
    /// Worker threads for fitness evaluation when the `parallel` feature
    /// is enabled: `0` = auto (`MVF_THREADS` env var, else the machine's
    /// available parallelism), `1` = serial. Results are bit-identical
    /// for every thread count.
    pub threads: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 24,
            generations: 40,
            crossover_rate: 0.7,
            mutation_rate: 0.4,
            tournament: 3,
            elitism: 2,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

/// Resolves a thread-count setting: explicit config, `MVF_THREADS`, then
/// available parallelism.
pub fn resolve_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var("MVF_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A batch fitness evaluator: scores genomes through a per-worker
/// evaluation context.
///
/// This is the seam between the search engines and the two fitness
/// flavors: a plain `Fn(&G) -> f64` closure (context-free) and an
/// [`Objective`] whose evaluations reuse an expensive scratch context.
/// Each worker thread gets its own context, so contexts never need
/// synchronization and their reuse cannot change results.
pub(crate) trait BatchScorer<G>: Sync {
    /// Per-worker evaluation state.
    type Ctx;
    /// Creates one worker context.
    fn new_ctx(&self) -> Self::Ctx;
    /// Scores a genome (lower is better).
    fn score(&self, ctx: &mut Self::Ctx, genome: &G) -> f64;
}

/// Adapts a plain fitness closure to [`BatchScorer`].
pub(crate) struct FnScorer<F>(pub F);

impl<G, F: Fn(&G) -> f64 + Sync> BatchScorer<G> for FnScorer<F> {
    type Ctx = ();
    fn new_ctx(&self) {}
    fn score(&self, _ctx: &mut (), genome: &G) -> f64 {
        (self.0)(genome)
    }
}

/// Adapts an [`Objective`] to [`BatchScorer`].
pub(crate) struct ObjScorer<'a, O>(pub &'a O);

impl<O: Objective> BatchScorer<O::Genome> for ObjScorer<'_, O> {
    type Ctx = O::Ctx;
    fn new_ctx(&self) -> O::Ctx {
        self.0.new_ctx()
    }
    fn score(&self, ctx: &mut O::Ctx, genome: &O::Genome) -> f64 {
        self.0.evaluate(ctx, genome)
    }
}

/// Scores a batch of genomes, preserving order.
///
/// Serial by default; with the `parallel` feature the slice is split into
/// per-thread chunks scored concurrently and re-stitched in order, so the
/// result is independent of scheduling.
///
/// `ctxs` holds one lazily-created evaluation context per worker slot and
/// is owned by the *caller*, so the contexts — and everything they cache —
/// survive across batches: a GA reuses the same contexts for every
/// generation of the run, not just within one batch.
pub(crate) fn evaluate_batch<G, S>(
    genomes: &[G],
    scorer: &S,
    threads: usize,
    ctxs: &mut Vec<Option<S::Ctx>>,
) -> Vec<f64>
where
    G: Sync,
    S: BatchScorer<G>,
    S::Ctx: Send,
{
    #[cfg(feature = "parallel")]
    {
        let threads = threads.min(genomes.len());
        if threads > 1 {
            let chunk = genomes.len().div_ceil(threads);
            let n_chunks = genomes.len().div_ceil(chunk);
            if ctxs.len() < n_chunks {
                ctxs.resize_with(n_chunks, || None);
            }
            let mut out = Vec::with_capacity(genomes.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = genomes
                    .chunks(chunk)
                    .zip(ctxs.iter_mut())
                    .map(|(c, slot)| {
                        scope.spawn(move || {
                            let ctx = slot.get_or_insert_with(|| scorer.new_ctx());
                            c.iter().map(|g| scorer.score(ctx, g)).collect::<Vec<f64>>()
                        })
                    })
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("fitness worker panicked"));
                }
            });
            return out;
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = threads;
    if ctxs.is_empty() {
        ctxs.push(None);
    }
    let ctx = ctxs[0].get_or_insert_with(|| scorer.new_ctx());
    genomes.iter().map(|g| scorer.score(ctx, g)).collect()
}

/// Per-generation statistics (fitness is minimized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenStats {
    /// Best fitness seen up to and including this generation.
    pub best_so_far: f64,
    /// Best fitness within this generation.
    pub best: f64,
    /// Mean fitness of this generation.
    pub avg: f64,
}

/// Result of a GA run.
#[derive(Debug, Clone)]
pub struct GaResult<G> {
    /// The best genome found.
    pub best_genome: G,
    /// Its fitness.
    pub best_fitness: f64,
    /// Statistics per generation (index 0 = initial population).
    pub history: Vec<GenStats>,
    /// Total number of fitness evaluations performed.
    pub evaluations: usize,
}

/// The complete mid-run state of a GA search at a generation boundary.
///
/// Everything the engine carries between generations is here — the
/// sorted population with fitness, the master RNG's stream position, the
/// incumbent best, the statistics trail and the evaluation counter — so
/// a search can be paused, serialized, and resumed **bit-identically**:
/// stepping a restored state produces exactly the generations the
/// uninterrupted run would have produced. This is the checkpoint payload
/// of the audit service's long jobs.
#[derive(Debug, Clone)]
pub struct GaSearchState<G> {
    /// Generations completed so far (`0` = only the initial population
    /// has been evaluated).
    pub generation: usize,
    /// The master RNG's internal state at this boundary
    /// ([`StdRng::state`]); breeding resumes the stream exactly here.
    pub master_rng: [u64; 4],
    /// The current population with fitness, sorted ascending (best
    /// first).
    pub population: Vec<(G, f64)>,
    /// The best `(genome, fitness)` seen so far.
    pub best: (G, f64),
    /// Per-generation statistics (index 0 = initial population).
    pub history: Vec<GenStats>,
    /// Fitness evaluations spent so far.
    pub evaluations: usize,
}

fn gen_stats<G>(pop: &[(G, f64)], best: f64) -> GenStats {
    GenStats {
        best_so_far: best,
        best: pop.iter().map(|p| p.1).fold(f64::INFINITY, f64::min),
        avg: pop.iter().map(|p| p.1).sum::<f64>() / pop.len() as f64,
    }
}

/// Evaluates the initial population — the state every run steps from.
fn ga_init<G, I, S>(
    cfg: &GaConfig,
    init: &mut I,
    scorer: &S,
    threads: usize,
    ctxs: &mut Vec<Option<S::Ctx>>,
) -> GaSearchState<G>
where
    G: Clone + Sync,
    I: FnMut(&mut StdRng) -> G,
    S: BatchScorer<G>,
    S::Ctx: Send,
{
    let mut master = StdRng::seed_from_u64(cfg.seed);
    // Initial population: one pre-drawn RNG stream per individual.
    let genomes: Vec<G> = (0..cfg.population)
        .map(|_| {
            let mut stream = StdRng::seed_from_u64(master.gen::<u64>());
            init(&mut stream)
        })
        .collect();
    let fits = evaluate_batch(&genomes, scorer, threads, ctxs);
    let evaluations = genomes.len();
    let mut population: Vec<(G, f64)> = genomes.into_iter().zip(fits).collect();
    population.sort_by(|a, b| a.1.total_cmp(&b.1));
    let best = population[0].clone();
    let mut history = Vec::with_capacity(cfg.generations + 1);
    history.push(gen_stats(&population, best.1));
    GaSearchState {
        generation: 0,
        master_rng: master.state(),
        population,
        best,
        history,
        evaluations,
    }
}

/// Advances a search state by exactly one generation: breed serially
/// from the state's RNG position, score the batch, apply elitism, sort,
/// update the incumbent and the statistics trail.
fn ga_step<G, M, C, S>(
    cfg: &GaConfig,
    mutate: &mut M,
    crossover: &mut C,
    scorer: &S,
    threads: usize,
    ctxs: &mut Vec<Option<S::Ctx>>,
    state: &mut GaSearchState<G>,
) where
    G: Clone + Sync,
    M: FnMut(&mut G, &mut StdRng),
    C: FnMut(&G, &G, &mut StdRng) -> G,
    S: BatchScorer<G>,
    S::Ctx: Send,
{
    let mut master = StdRng::from_state(state.master_rng);
    let population = &mut state.population;
    let n_elite = cfg.elitism.min(cfg.population);
    // Breed all children serially (cheap), then score the batch.
    let mut children: Vec<G> = Vec::with_capacity(cfg.population - n_elite);
    while children.len() < cfg.population - n_elite {
        let p1 = tournament(population, cfg.tournament, &mut master);
        let p2 = if master.gen_bool(cfg.crossover_rate) {
            Some(tournament(population, cfg.tournament, &mut master))
        } else {
            None
        };
        let do_mutate = master.gen_bool(cfg.mutation_rate);
        let mut stream = StdRng::seed_from_u64(master.gen::<u64>());
        let mut child = match p2 {
            Some(p2) => crossover(&population[p1].0, &population[p2].0, &mut stream),
            None => population[p1].0.clone(),
        };
        if do_mutate {
            mutate(&mut child, &mut stream);
        }
        children.push(child);
    }
    let fits = evaluate_batch(&children, scorer, threads, ctxs);
    state.evaluations += children.len();
    let mut next: Vec<(G, f64)> = Vec::with_capacity(cfg.population);
    for e in population.iter().take(n_elite) {
        next.push(e.clone());
    }
    next.extend(children.into_iter().zip(fits));
    next.sort_by(|a, b| a.1.total_cmp(&b.1));
    *population = next;
    if population[0].1 < state.best.1 {
        state.best = population[0].clone();
    }
    let stats = gen_stats(population, state.best.1);
    state.history.push(stats);
    state.generation += 1;
    state.master_rng = master.state();
}

/// A minimizing genetic algorithm over an arbitrary genome type.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    cfg: GaConfig,
}

impl GeneticAlgorithm {
    /// Creates an engine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the population or tournament size is zero.
    pub fn new(cfg: GaConfig) -> Self {
        assert!(cfg.population > 0, "population must be positive");
        assert!(cfg.tournament > 0, "tournament must be positive");
        GeneticAlgorithm { cfg }
    }

    /// Runs the GA.
    ///
    /// * `init` creates a random genome;
    /// * `mutate` perturbs a genome in place;
    /// * `crossover` combines two parents into a child;
    /// * `fitness` scores a genome (lower is better). It must be a pure
    ///   function of the genome: batches are scored together, potentially
    ///   on several threads (see the crate docs on determinism).
    pub fn run<G, I, M, C, F>(&self, init: I, mutate: M, crossover: C, fitness: F) -> GaResult<G>
    where
        G: Clone + Sync,
        I: FnMut(&mut StdRng) -> G,
        M: FnMut(&mut G, &mut StdRng),
        C: FnMut(&G, &G, &mut StdRng) -> G,
        F: Fn(&G) -> f64 + Sync,
    {
        self.run_inner(init, mutate, crossover, &FnScorer(fitness))
    }

    /// Runs the GA against an [`Objective`], threading a per-worker
    /// evaluation context through the fitness calls.
    ///
    /// The breeding discipline (RNG streams, selection, variation) is the
    /// same code as [`GeneticAlgorithm::run`], so for equivalent operators
    /// the two are **bit-identical** given the same seed; only the
    /// fitness plumbing differs.
    pub fn run_objective<O: Objective>(&self, objective: &O) -> GaResult<O::Genome> {
        self.run_inner(
            |rng| objective.init(rng),
            |g, rng| objective.mutate(g, rng),
            |a, b, rng| objective.crossover(a, b, rng),
            &ObjScorer(objective),
        )
    }

    fn run_inner<G, I, M, C, S>(
        &self,
        mut init: I,
        mut mutate: M,
        mut crossover: C,
        scorer: &S,
    ) -> GaResult<G>
    where
        G: Clone + Sync,
        I: FnMut(&mut StdRng) -> G,
        M: FnMut(&mut G, &mut StdRng),
        C: FnMut(&G, &G, &mut StdRng) -> G,
        S: BatchScorer<G>,
        S::Ctx: Send,
    {
        let cfg = &self.cfg;
        let threads = resolve_threads(cfg.threads);
        // Per-worker evaluation contexts, reused across every generation
        // of the run.
        let mut ctxs: Vec<Option<S::Ctx>> = Vec::new();
        // The run is the stepped engine driven to completion: the state
        // between generations is the same [`GaSearchState`] a paused
        // service job checkpoints, so `run == resume(step*)` by
        // construction, not by parallel maintenance of two loops.
        let mut state = ga_init(cfg, &mut init, scorer, threads, &mut ctxs);
        for _ in 0..cfg.generations {
            ga_step(
                cfg,
                &mut mutate,
                &mut crossover,
                scorer,
                threads,
                &mut ctxs,
                &mut state,
            );
        }
        GaResult {
            best_genome: state.best.0,
            best_fitness: state.best.1,
            history: state.history,
            evaluations: state.evaluations,
        }
    }

    /// Total fitness evaluations the configured run will perform
    /// (initial population plus per-generation children).
    pub fn evaluation_budget(&self) -> usize {
        let per_gen = self.cfg.population - self.cfg.elitism.min(self.cfg.population);
        self.cfg.population + self.cfg.generations * per_gen
    }
}

/// Drives a [`GeneticAlgorithm`] over an [`Objective`] one generation at
/// a time, exposing the full [`GaSearchState`] at every boundary.
///
/// This is the pausable form of [`GeneticAlgorithm::run_objective`] the
/// audit service builds checkpoints on: run some generations, serialize
/// [`ObjectiveRunner::state`], and later [`ObjectiveRunner::resume`]
/// from the snapshot — the completed search is bit-identical to one that
/// was never interrupted, because the state carries the master RNG's
/// exact stream position and the scored population. Evaluation contexts
/// are rebuilt on resume; by the [`Objective`] contract their reuse (or
/// loss) cannot change results.
pub struct ObjectiveRunner<'a, O: Objective> {
    engine: GeneticAlgorithm,
    objective: &'a O,
    threads: usize,
    ctxs: Vec<Option<O::Ctx>>,
    state: GaSearchState<O::Genome>,
}

impl<'a, O: Objective> ObjectiveRunner<'a, O> {
    /// Starts a fresh search: evaluates the initial population and stops
    /// at the first generation boundary.
    pub fn start(engine: GeneticAlgorithm, objective: &'a O) -> Self {
        let threads = resolve_threads(engine.cfg.threads);
        let mut ctxs: Vec<Option<O::Ctx>> = Vec::new();
        let state = ga_init(
            &engine.cfg,
            &mut |rng| objective.init(rng),
            &ObjScorer(objective),
            threads,
            &mut ctxs,
        );
        ObjectiveRunner {
            engine,
            objective,
            threads,
            ctxs,
            state,
        }
    }

    /// Resumes from a snapshot taken by [`ObjectiveRunner::state`] on an
    /// engine with the *same* configuration (seed, rates, population).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's population size does not match the
    /// engine configuration — the clearest symptom of restoring a
    /// checkpoint against the wrong job.
    pub fn resume(
        engine: GeneticAlgorithm,
        objective: &'a O,
        state: GaSearchState<O::Genome>,
    ) -> Self {
        assert_eq!(
            state.population.len(),
            engine.cfg.population,
            "checkpoint population does not match the engine configuration"
        );
        let threads = resolve_threads(engine.cfg.threads);
        ObjectiveRunner {
            engine,
            objective,
            threads,
            ctxs: Vec::new(),
            state,
        }
    }

    /// The state at the current generation boundary.
    pub fn state(&self) -> &GaSearchState<O::Genome> {
        &self.state
    }

    /// Whether the configured number of generations has completed.
    pub fn is_done(&self) -> bool {
        self.state.generation >= self.engine.cfg.generations
    }

    /// Runs one generation; returns `false` (and does nothing) when the
    /// search is already complete.
    pub fn step(&mut self) -> bool {
        if self.is_done() {
            return false;
        }
        let objective = self.objective;
        ga_step(
            &self.engine.cfg,
            &mut |g: &mut O::Genome, rng: &mut StdRng| objective.mutate(g, rng),
            &mut |a: &O::Genome, b: &O::Genome, rng: &mut StdRng| objective.crossover(a, b, rng),
            &ObjScorer(objective),
            self.threads,
            &mut self.ctxs,
            &mut self.state,
        );
        true
    }

    /// Steps until done and returns the final result.
    pub fn finish(mut self) -> GaResult<O::Genome> {
        while self.step() {}
        self.into_result()
    }

    /// The result of the search so far (the incumbent best, the history
    /// trail and the evaluation count up to the current boundary).
    pub fn into_result(self) -> GaResult<O::Genome> {
        GaResult {
            best_genome: self.state.best.0,
            best_fitness: self.state.best.1,
            history: self.state.history,
            evaluations: self.state.evaluations,
        }
    }
}

fn tournament<G>(pop: &[(G, f64)], k: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.gen_range(0..pop.len());
    for _ in 1..k {
        let c = rng.gen_range(0..pop.len());
        if pop[c].1 < pop[best].1 {
            best = c;
        }
    }
    best
}

/// Result of a random-search baseline run.
#[derive(Debug, Clone)]
pub struct RandomSearchResult<G> {
    /// The best genome found.
    pub best_genome: G,
    /// Its fitness.
    pub best_fitness: f64,
    /// The mean of all sampled fitness values.
    pub avg_fitness: f64,
    /// Every sampled fitness, in order (Fig. 4a's histogram data).
    pub samples: Vec<f64>,
}

/// The equal-budget random baseline of Fig. 4: draws `n_evals` random
/// genomes and records every fitness.
///
/// Like [`GeneticAlgorithm::run`], the genomes are drawn from
/// per-individual RNG streams and scored batch-wise (parallel with the
/// `parallel` feature, bit-identical to serial). The thread count is
/// auto-resolved; use [`random_search_with_threads`] to pin it.
///
/// # Panics
///
/// Panics if `n_evals == 0`.
pub fn random_search<G, I, F>(
    n_evals: usize,
    seed: u64,
    init: I,
    fitness: F,
) -> RandomSearchResult<G>
where
    G: Clone + Sync,
    I: FnMut(&mut StdRng) -> G,
    F: Fn(&G) -> f64 + Sync,
{
    random_search_with_threads(n_evals, seed, 0, init, fitness)
}

/// [`random_search`] with an explicit thread-count setting (`0` = auto,
/// `1` = serial; interpreted like [`GaConfig::threads`]).
///
/// # Panics
///
/// Panics if `n_evals == 0`.
pub fn random_search_with_threads<G, I, F>(
    n_evals: usize,
    seed: u64,
    threads: usize,
    init: I,
    fitness: F,
) -> RandomSearchResult<G>
where
    G: Clone + Sync,
    I: FnMut(&mut StdRng) -> G,
    F: Fn(&G) -> f64 + Sync,
{
    random_search_inner(n_evals, seed, threads, 0, init, &FnScorer(fitness))
}

/// Random search against an [`Objective`]: like
/// [`random_search_with_threads`], with fitness evaluated through the
/// objective's per-worker context (bit-identical to the closure form).
///
/// # Panics
///
/// Panics if `n_evals == 0`.
pub fn random_search_objective<O: Objective>(
    n_evals: usize,
    seed: u64,
    threads: usize,
    objective: &O,
) -> RandomSearchResult<O::Genome> {
    random_search_objective_chunked(n_evals, seed, threads, 0, objective)
}

/// [`random_search_objective`] with an explicit evaluation chunk size:
/// at most `chunk` genomes are materialized at a time (`0` = auto), so a
/// paper-scale budget (`MVF_PAPER_SCALE=1`: 9,726 evaluations per
/// workload) streams through bounded memory instead of allocating the
/// whole candidate batch up front.
///
/// Chunking never changes results: genomes are drawn from the same
/// per-individual RNG streams in the same master order, and every chunk
/// is scored by the same batch engine, so the outcome is bit-identical
/// for every chunk size (and every thread count).
///
/// # Panics
///
/// Panics if `n_evals == 0`.
pub fn random_search_objective_chunked<O: Objective>(
    n_evals: usize,
    seed: u64,
    threads: usize,
    chunk: usize,
    objective: &O,
) -> RandomSearchResult<O::Genome> {
    random_search_inner(
        n_evals,
        seed,
        threads,
        chunk,
        |rng| objective.init(rng),
        &ObjScorer(objective),
    )
}

/// Resolves a chunk-size setting: explicit value, else a multiple of the
/// worker count large enough to keep every thread busy while bounding
/// the number of genomes held in memory.
fn resolve_chunk(chunk: usize, threads: usize) -> usize {
    if chunk > 0 {
        return chunk;
    }
    (threads * 64).clamp(256, 4096)
}

fn random_search_inner<G, I, S>(
    n_evals: usize,
    seed: u64,
    threads: usize,
    chunk: usize,
    mut init: I,
    scorer: &S,
) -> RandomSearchResult<G>
where
    G: Clone + Sync,
    I: FnMut(&mut StdRng) -> G,
    S: BatchScorer<G>,
    S::Ctx: Send,
{
    assert!(n_evals > 0, "random search needs at least one evaluation");
    let threads = resolve_threads(threads);
    let chunk = resolve_chunk(chunk, threads);
    let mut master = StdRng::seed_from_u64(seed);
    let mut ctxs: Vec<Option<S::Ctx>> = Vec::new();
    let mut samples: Vec<f64> = Vec::with_capacity(n_evals);
    let mut genomes: Vec<G> = Vec::with_capacity(chunk.min(n_evals));
    // `best` replicates `min_by(total_cmp)` over the full sample stream:
    // the *first* genome attaining the minimum wins ties, so only a
    // strict improvement replaces the incumbent.
    let mut best: Option<(G, f64)> = None;
    let mut remaining = n_evals;
    while remaining > 0 {
        let take = chunk.min(remaining);
        genomes.clear();
        for _ in 0..take {
            let mut stream = StdRng::seed_from_u64(master.gen::<u64>());
            genomes.push(init(&mut stream));
        }
        let fits = evaluate_batch(&genomes, scorer, threads, &mut ctxs);
        for (g, &f) in genomes.iter().zip(&fits) {
            let improves = match &best {
                None => true,
                Some((_, bf)) => f.total_cmp(bf) == std::cmp::Ordering::Less,
            };
            if improves {
                best = Some((g.clone(), f));
            }
        }
        samples.extend_from_slice(&fits);
        remaining -= take;
    }
    let (best_genome, best_fitness) = best.expect("n_evals > 0");
    RandomSearchResult {
        best_genome,
        best_fitness,
        avg_fitness: samples.iter().sum::<f64>() / samples.len() as f64,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Takes `&Vec` because it is passed directly as the GA fitness over
    // `Vec<f64>` genomes.
    #[allow(clippy::ptr_arg)]
    fn sphere(g: &Vec<f64>) -> f64 {
        g.iter().map(|x| x * x).sum()
    }

    #[test]
    fn ga_minimizes_sphere() {
        let cfg = GaConfig {
            population: 20,
            generations: 30,
            seed: 42,
            ..GaConfig::default()
        };
        let res = GeneticAlgorithm::new(cfg).run(
            |rng| {
                (0..4)
                    .map(|_| rng.gen_range(-10.0..10.0))
                    .collect::<Vec<f64>>()
            },
            |g, rng| {
                let i = rng.gen_range(0..g.len());
                g[i] += rng.gen_range(-1.0..1.0);
            },
            |a, b, rng| {
                let cut = rng.gen_range(0..a.len());
                a[..cut].iter().chain(b[cut..].iter()).copied().collect()
            },
            sphere,
        );
        assert!(res.best_fitness < sphere(&vec![10.0; 4]));
        assert!(
            res.best_fitness < res.history[0].avg,
            "GA must improve on init"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GaConfig {
            population: 10,
            generations: 5,
            seed: 9,
            ..GaConfig::default()
        };
        let run = || {
            GeneticAlgorithm::new(cfg.clone()).run(
                |rng| rng.gen::<u32>(),
                |g, rng| *g ^= 1u32 << rng.gen_range(0..32),
                |a, b, _| a ^ b,
                |g| g.count_ones() as f64,
            )
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.best_genome, r2.best_genome);
        assert_eq!(r1.best_fitness, r2.best_fitness);
        assert_eq!(r1.evaluations, r2.evaluations);
    }

    #[test]
    fn history_is_monotone_in_best_so_far() {
        let cfg = GaConfig {
            population: 12,
            generations: 12,
            seed: 5,
            ..GaConfig::default()
        };
        let res = GeneticAlgorithm::new(cfg).run(
            |rng| rng.gen::<u16>(),
            |g, rng| *g = g.rotate_left(rng.gen_range(1..4)),
            |a, b, _| a.wrapping_add(*b),
            |g| *g as f64,
        );
        for w in res.history.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far);
        }
    }

    #[test]
    fn evaluation_budget_matches_actual() {
        let cfg = GaConfig {
            population: 10,
            generations: 7,
            elitism: 2,
            seed: 1,
            ..GaConfig::default()
        };
        let engine = GeneticAlgorithm::new(cfg);
        let res = engine.run(
            |rng| rng.gen::<u8>(),
            |g, rng| *g ^= 1u8 << rng.gen_range(0..8),
            |a, b, _| a ^ b,
            |g| *g as f64,
        );
        assert_eq!(res.evaluations, engine.evaluation_budget());
    }

    #[test]
    fn random_search_tracks_best_and_average() {
        let res = random_search(100, 3, |rng| rng.gen_range(0.0..1.0f64), |g| *g);
        assert_eq!(res.samples.len(), 100);
        assert!(res.best_fitness <= res.avg_fitness);
        assert!(
            (res.best_fitness - res.samples.iter().cloned().fold(f64::INFINITY, f64::min)).abs()
                < 1e-12
        );
    }

    #[test]
    fn elitism_preserves_best() {
        // With heavy mutation, the elite must still survive verbatim.
        let cfg = GaConfig {
            population: 8,
            generations: 20,
            mutation_rate: 1.0,
            crossover_rate: 1.0,
            elitism: 1,
            seed: 11,
            ..GaConfig::default()
        };
        let res = GeneticAlgorithm::new(cfg).run(
            |rng| rng.gen::<u32>(),
            |g, rng| *g = rng.gen(),
            |a, b, _| a ^ b,
            |g| g.count_ones() as f64,
        );
        for w in res.history.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far);
        }
        assert!(res.best_fitness <= res.history[0].best);
    }

    /// Serial (threads = 1) and multi-threaded runs must agree bit for
    /// bit on every statistic and on the winning genome.
    #[test]
    fn thread_count_does_not_change_results() {
        let run = |threads: usize| {
            let cfg = GaConfig {
                population: 12,
                generations: 8,
                seed: 0xD5,
                threads,
                ..GaConfig::default()
            };
            GeneticAlgorithm::new(cfg).run(
                |rng| rng.gen::<u32>(),
                |g, rng| *g ^= 1u32 << rng.gen_range(0..32),
                |a, b, _| (a & 0xFFFF_0000) | (b & 0xFFFF),
                |g| g.count_ones() as f64,
            )
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            let par = run(threads);
            assert_eq!(par.best_genome, serial.best_genome, "threads={threads}");
            assert_eq!(
                par.best_fitness.to_bits(),
                serial.best_fitness.to_bits(),
                "threads={threads}"
            );
            assert_eq!(par.history.len(), serial.history.len());
            for (a, b) in par.history.iter().zip(&serial.history) {
                assert_eq!(a.best_so_far.to_bits(), b.best_so_far.to_bits());
                assert_eq!(a.best.to_bits(), b.best.to_bits());
                assert_eq!(a.avg.to_bits(), b.avg.to_bits());
            }
        }
    }

    struct BitsObjective;
    impl Objective for BitsObjective {
        type Genome = u32;
        type Ctx = ();
        fn new_ctx(&self) {}
        fn init(&self, rng: &mut StdRng) -> u32 {
            rng.gen()
        }
        fn mutate(&self, g: &mut u32, rng: &mut StdRng) {
            *g ^= 1u32 << rng.gen_range(0..32);
        }
        fn crossover(&self, a: &u32, b: &u32, _rng: &mut StdRng) -> u32 {
            (a & 0xFFFF_0000) | (b & 0xFFFF)
        }
        fn evaluate(&self, _ctx: &mut (), g: &u32) -> f64 {
            g.count_ones() as f64
        }
    }

    fn assert_results_identical(a: &GaResult<u32>, b: &GaResult<u32>) {
        assert_eq!(a.best_genome, b.best_genome);
        assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.best_so_far.to_bits(), y.best_so_far.to_bits());
            assert_eq!(x.best.to_bits(), y.best.to_bits());
            assert_eq!(x.avg.to_bits(), y.avg.to_bits());
        }
    }

    #[test]
    fn stepped_runner_is_bit_identical_to_run_objective() {
        let cfg = GaConfig {
            population: 10,
            generations: 9,
            seed: 0xBEE,
            threads: 1,
            ..GaConfig::default()
        };
        let direct = GeneticAlgorithm::new(cfg.clone()).run_objective(&BitsObjective);
        let stepped = ObjectiveRunner::start(GeneticAlgorithm::new(cfg), &BitsObjective).finish();
        assert_results_identical(&direct, &stepped);
    }

    #[test]
    fn resume_at_every_boundary_is_bit_identical() {
        let cfg = GaConfig {
            population: 8,
            generations: 6,
            seed: 0x5AFE,
            threads: 1,
            ..GaConfig::default()
        };
        let uninterrupted = GeneticAlgorithm::new(cfg.clone()).run_objective(&BitsObjective);
        for kill_at in 0..=cfg.generations {
            // Run to the boundary, snapshot, drop the runner ("kill"),
            // resume from the snapshot alone.
            let mut first =
                ObjectiveRunner::start(GeneticAlgorithm::new(cfg.clone()), &BitsObjective);
            for _ in 0..kill_at {
                first.step();
            }
            let snapshot = first.state().clone();
            drop(first);
            let resumed = ObjectiveRunner::resume(
                GeneticAlgorithm::new(cfg.clone()),
                &BitsObjective,
                snapshot,
            )
            .finish();
            assert_results_identical(&uninterrupted, &resumed);
        }
    }

    #[test]
    #[should_panic(expected = "checkpoint population")]
    fn resume_rejects_mismatched_population() {
        let cfg = GaConfig {
            population: 8,
            generations: 2,
            seed: 1,
            threads: 1,
            ..GaConfig::default()
        };
        let runner = ObjectiveRunner::start(GeneticAlgorithm::new(cfg.clone()), &BitsObjective);
        let state = runner.state().clone();
        let wrong = GaConfig {
            population: 9,
            ..cfg
        };
        let _ = ObjectiveRunner::resume(GeneticAlgorithm::new(wrong), &BitsObjective, state);
    }

    #[test]
    fn resolve_threads_prefers_explicit_config() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn resolve_chunk_bounds_the_auto_default() {
        assert_eq!(resolve_chunk(17, 8), 17);
        assert_eq!(resolve_chunk(0, 1), 256);
        assert_eq!(resolve_chunk(0, 1000), 4096);
    }

    /// Streaming the evaluation budget through bounded chunks must not
    /// change a single bit of the outcome: same genome stream, same
    /// samples, same winner — including the `min_by(total_cmp)` tie rule
    /// (the *first* genome attaining the minimum wins), checked against
    /// an explicit `min_by` reference over the regenerated stream.
    #[test]
    fn chunked_random_search_is_bit_identical() {
        struct Quantized;
        impl Objective for Quantized {
            type Genome = u32;
            type Ctx = ();
            fn new_ctx(&self) {}
            fn init(&self, rng: &mut StdRng) -> u32 {
                rng.gen()
            }
            fn mutate(&self, _g: &mut u32, _rng: &mut StdRng) {}
            fn crossover(&self, a: &u32, _b: &u32, _rng: &mut StdRng) -> u32 {
                *a
            }
            fn evaluate(&self, _ctx: &mut (), g: &u32) -> f64 {
                // Coarse quantization forces fitness ties, exercising the
                // tie rule across chunk boundaries.
                (g % 4) as f64
            }
        }
        // Reference winner: regenerate the genome stream exactly as the
        // search draws it and apply `min_by(total_cmp)` directly.
        let mut master = StdRng::seed_from_u64(0xC1);
        let stream_genomes: Vec<u32> = (0..100)
            .map(|_| StdRng::seed_from_u64(master.gen::<u64>()).gen())
            .collect();
        let min_by_winner = *stream_genomes
            .iter()
            .min_by(|a, b| ((*a % 4) as f64).total_cmp(&((*b % 4) as f64)))
            .expect("non-empty");
        let reference = random_search_objective_chunked(100, 0xC1, 1, 100, &Quantized);
        assert_eq!(
            reference.best_genome, min_by_winner,
            "the first tied minimum must win, as min_by returns it"
        );
        for chunk in [1usize, 3, 7, 32, 0] {
            let got = random_search_objective_chunked(100, 0xC1, 1, chunk, &Quantized);
            assert_eq!(got.best_genome, reference.best_genome, "chunk={chunk}");
            assert_eq!(got.best_fitness.to_bits(), reference.best_fitness.to_bits());
            assert_eq!(got.avg_fitness.to_bits(), reference.avg_fitness.to_bits());
            assert_eq!(got.samples, reference.samples);
        }
    }
}
