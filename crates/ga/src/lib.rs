//! Phase II: genetic-algorithm search over pin assignments.
//!
//! The paper optimizes per-function input/output pin permutations with a
//! genetic algorithm (DEAP in the authors' toolchain) whose fitness is the
//! synthesized circuit area, and compares against a random-search baseline
//! given the same number of fitness evaluations (Fig. 4). This crate is
//! the DEAP substitute: a small, deterministic, generic GA engine
//! ([`GeneticAlgorithm`]) with tournament selection, elitism,
//! user-supplied mutation/crossover, per-generation statistics, plus the
//! equal-budget [`random_search`] baseline and permutation operators
//! ([`permutation`]) for the pin-assignment genotype.
//!
//! # Example
//!
//! ```
//! use mvf_ga::{GaConfig, GeneticAlgorithm};
//! use rand::Rng;
//!
//! // Minimize the number of set bits of a 16-bit genome.
//! let cfg = GaConfig { population: 16, generations: 10, seed: 7, ..GaConfig::default() };
//! let result = GeneticAlgorithm::new(cfg)
//!     .run(
//!         |rng| rng.gen::<u16>(),
//!         |g, rng| *g ^= 1 << rng.gen_range(0..16),
//!         |a, b, _rng| (a & 0xFF00) | (b & 0x00FF),
//!         |g| g.count_ones() as f64,
//!     );
//! assert!(result.best_fitness <= 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod permutation;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the GA engine.
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations (after the initial one).
    pub generations: usize,
    /// Probability that a child is produced by crossover.
    pub crossover_rate: f64,
    /// Probability that a child is mutated.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Number of best individuals copied unchanged each generation.
    pub elitism: usize,
    /// RNG seed: runs are fully deterministic given the seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 24,
            generations: 40,
            crossover_rate: 0.7,
            mutation_rate: 0.4,
            tournament: 3,
            elitism: 2,
            seed: 0xC0FFEE,
        }
    }
}

/// Per-generation statistics (fitness is minimized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenStats {
    /// Best fitness seen up to and including this generation.
    pub best_so_far: f64,
    /// Best fitness within this generation.
    pub best: f64,
    /// Mean fitness of this generation.
    pub avg: f64,
}

/// Result of a GA run.
#[derive(Debug, Clone)]
pub struct GaResult<G> {
    /// The best genome found.
    pub best_genome: G,
    /// Its fitness.
    pub best_fitness: f64,
    /// Statistics per generation (index 0 = initial population).
    pub history: Vec<GenStats>,
    /// Total number of fitness evaluations performed.
    pub evaluations: usize,
}

/// A minimizing genetic algorithm over an arbitrary genome type.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    cfg: GaConfig,
}

impl GeneticAlgorithm {
    /// Creates an engine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the population or tournament size is zero.
    pub fn new(cfg: GaConfig) -> Self {
        assert!(cfg.population > 0, "population must be positive");
        assert!(cfg.tournament > 0, "tournament must be positive");
        GeneticAlgorithm { cfg }
    }

    /// Runs the GA.
    ///
    /// * `init` creates a random genome;
    /// * `mutate` perturbs a genome in place;
    /// * `crossover` combines two parents into a child;
    /// * `fitness` scores a genome (lower is better).
    pub fn run<G, I, M, C, F>(
        &self,
        mut init: I,
        mut mutate: M,
        mut crossover: C,
        mut fitness: F,
    ) -> GaResult<G>
    where
        G: Clone,
        I: FnMut(&mut StdRng) -> G,
        M: FnMut(&mut G, &mut StdRng),
        C: FnMut(&G, &G, &mut StdRng) -> G,
        F: FnMut(&G) -> f64,
    {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut evaluations = 0usize;
        let mut population: Vec<(G, f64)> = (0..cfg.population)
            .map(|_| {
                let g = init(&mut rng);
                let f = fitness(&g);
                evaluations += 1;
                (g, f)
            })
            .collect();
        population.sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut history = Vec::with_capacity(cfg.generations + 1);
        let mut best = population[0].clone();
        let stat = |pop: &[(G, f64)], best: f64| GenStats {
            best_so_far: best,
            best: pop.iter().map(|p| p.1).fold(f64::INFINITY, f64::min),
            avg: pop.iter().map(|p| p.1).sum::<f64>() / pop.len() as f64,
        };
        history.push(stat(&population, best.1));

        for _ in 0..cfg.generations {
            let mut next: Vec<(G, f64)> = Vec::with_capacity(cfg.population);
            // Elitism.
            for e in population.iter().take(cfg.elitism.min(cfg.population)) {
                next.push(e.clone());
            }
            while next.len() < cfg.population {
                let p1 = tournament(&population, cfg.tournament, &mut rng);
                let mut child = if rng.gen_bool(cfg.crossover_rate) {
                    let p2 = tournament(&population, cfg.tournament, &mut rng);
                    crossover(&population[p1].0, &population[p2].0, &mut rng)
                } else {
                    population[p1].0.clone()
                };
                if rng.gen_bool(cfg.mutation_rate) {
                    mutate(&mut child, &mut rng);
                }
                let f = fitness(&child);
                evaluations += 1;
                next.push((child, f));
            }
            next.sort_by(|a, b| a.1.total_cmp(&b.1));
            population = next;
            if population[0].1 < best.1 {
                best = population[0].clone();
            }
            history.push(stat(&population, best.1));
        }
        GaResult {
            best_genome: best.0,
            best_fitness: best.1,
            history,
            evaluations,
        }
    }

    /// Total fitness evaluations the configured run will perform
    /// (initial population plus per-generation children).
    pub fn evaluation_budget(&self) -> usize {
        let per_gen = self.cfg.population - self.cfg.elitism.min(self.cfg.population);
        self.cfg.population + self.cfg.generations * per_gen
    }
}

fn tournament<G>(pop: &[(G, f64)], k: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.gen_range(0..pop.len());
    for _ in 1..k {
        let c = rng.gen_range(0..pop.len());
        if pop[c].1 < pop[best].1 {
            best = c;
        }
    }
    best
}

/// Result of a random-search baseline run.
#[derive(Debug, Clone)]
pub struct RandomSearchResult<G> {
    /// The best genome found.
    pub best_genome: G,
    /// Its fitness.
    pub best_fitness: f64,
    /// The mean of all sampled fitness values.
    pub avg_fitness: f64,
    /// Every sampled fitness, in order (Fig. 4a's histogram data).
    pub samples: Vec<f64>,
}

/// The equal-budget random baseline of Fig. 4: draws `n_evals` random
/// genomes and records every fitness.
///
/// # Panics
///
/// Panics if `n_evals == 0`.
pub fn random_search<G, I, F>(
    n_evals: usize,
    seed: u64,
    mut init: I,
    mut fitness: F,
) -> RandomSearchResult<G>
where
    G: Clone,
    I: FnMut(&mut StdRng) -> G,
    F: FnMut(&G) -> f64,
{
    assert!(n_evals > 0, "random search needs at least one evaluation");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(G, f64)> = None;
    let mut samples = Vec::with_capacity(n_evals);
    for _ in 0..n_evals {
        let g = init(&mut rng);
        let f = fitness(&g);
        samples.push(f);
        if best.as_ref().map_or(true, |(_, bf)| f < *bf) {
            best = Some((g, f));
        }
    }
    let (best_genome, best_fitness) = best.expect("n_evals > 0");
    RandomSearchResult {
        best_genome,
        best_fitness,
        avg_fitness: samples.iter().sum::<f64>() / samples.len() as f64,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(g: &Vec<f64>) -> f64 {
        g.iter().map(|x| x * x).sum()
    }

    #[test]
    fn ga_minimizes_sphere() {
        let cfg = GaConfig { population: 20, generations: 30, seed: 42, ..GaConfig::default() };
        let res = GeneticAlgorithm::new(cfg).run(
            |rng| (0..4).map(|_| rng.gen_range(-10.0..10.0)).collect::<Vec<f64>>(),
            |g, rng| {
                let i = rng.gen_range(0..g.len());
                g[i] += rng.gen_range(-1.0..1.0);
            },
            |a, b, rng| {
                let cut = rng.gen_range(0..a.len());
                a[..cut].iter().chain(b[cut..].iter()).copied().collect()
            },
            sphere,
        );
        assert!(res.best_fitness < sphere(&vec![10.0; 4]));
        assert!(res.best_fitness < res.history[0].avg, "GA must improve on init");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GaConfig { population: 10, generations: 5, seed: 9, ..GaConfig::default() };
        let run = || {
            GeneticAlgorithm::new(cfg.clone()).run(
                |rng| rng.gen::<u32>(),
                |g, rng| *g ^= 1 << rng.gen_range(0..32),
                |a, b, _| a ^ b,
                |g| g.count_ones() as f64,
            )
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.best_genome, r2.best_genome);
        assert_eq!(r1.best_fitness, r2.best_fitness);
        assert_eq!(r1.evaluations, r2.evaluations);
    }

    #[test]
    fn history_is_monotone_in_best_so_far() {
        let cfg = GaConfig { population: 12, generations: 12, seed: 5, ..GaConfig::default() };
        let res = GeneticAlgorithm::new(cfg).run(
            |rng| rng.gen::<u16>(),
            |g, rng| *g = g.rotate_left(rng.gen_range(1..4)),
            |a, b, _| a.wrapping_add(*b),
            |g| *g as f64,
        );
        for w in res.history.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far);
        }
    }

    #[test]
    fn evaluation_budget_matches_actual() {
        let cfg = GaConfig { population: 10, generations: 7, elitism: 2, seed: 1, ..GaConfig::default() };
        let engine = GeneticAlgorithm::new(cfg);
        let res = engine.run(
            |rng| rng.gen::<u8>(),
            |g, rng| *g ^= 1 << rng.gen_range(0..8),
            |a, b, _| a ^ b,
            |g| *g as f64,
        );
        assert_eq!(res.evaluations, engine.evaluation_budget());
    }

    #[test]
    fn random_search_tracks_best_and_average() {
        let res = random_search(100, 3, |rng| rng.gen_range(0.0..1.0f64), |g| *g);
        assert_eq!(res.samples.len(), 100);
        assert!(res.best_fitness <= res.avg_fitness);
        assert!((res.best_fitness - res.samples.iter().cloned().fold(f64::INFINITY, f64::min)).abs() < 1e-12);
    }

    #[test]
    fn elitism_preserves_best() {
        // With heavy mutation, the elite must still survive verbatim.
        let cfg = GaConfig {
            population: 8,
            generations: 20,
            mutation_rate: 1.0,
            crossover_rate: 1.0,
            elitism: 1,
            seed: 11,
            ..GaConfig::default()
        };
        let res = GeneticAlgorithm::new(cfg).run(
            |rng| rng.gen::<u32>(),
            |g, rng| *g = rng.gen(),
            |a, b, _| a ^ b,
            |g| g.count_ones() as f64,
        );
        for w in res.history.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far);
        }
        assert!(res.best_fitness <= res.history[0].best);
    }
}
