//! Pluggable search strategies over a shared [`Objective`].
//!
//! The paper's Phase II is "a search over pin assignments whose fitness
//! is the synthesized area" — the *search algorithm* (GA in the paper,
//! random search as its baseline) is a policy choice, not part of the
//! problem. This module makes that explicit:
//!
//! * [`Objective`] describes the problem once: how to draw, perturb and
//!   combine genomes, and how to score one through a reusable
//!   per-worker evaluation context;
//! * [`SearchStrategy`] is the policy: [`Ga`] (the paper's Phase II),
//!   [`RandomSearch`] (the equal-budget baseline of Fig. 4) and
//!   [`HillClimb`] (batched stochastic hill climbing with restarts).
//!
//! Every strategy is deterministic given its seed, evaluates genome
//! batches through the same engine as the closure API (so the `parallel`
//! feature keeps its bit-identical guarantee), and reports a uniform
//! [`SearchOutcome`].
//!
//! # Example
//!
//! ```
//! use mvf_ga::{HillClimb, Objective, SearchStrategy};
//! use rand::rngs::StdRng;
//! use rand::Rng;
//!
//! /// Minimize the number of set bits of a 16-bit word.
//! struct Bits;
//! impl Objective for Bits {
//!     type Genome = u16;
//!     type Ctx = ();
//!     fn new_ctx(&self) {}
//!     fn init(&self, rng: &mut StdRng) -> u16 {
//!         rng.gen()
//!     }
//!     fn mutate(&self, g: &mut u16, rng: &mut StdRng) {
//!         *g ^= 1u16 << rng.gen_range(0..16);
//!     }
//!     fn crossover(&self, a: &u16, b: &u16, _rng: &mut StdRng) -> u16 {
//!         (a & 0xFF00) | (b & 0x00FF)
//!     }
//!     fn evaluate(&self, _ctx: &mut (), g: &u16) -> f64 {
//!         g.count_ones() as f64
//!     }
//! }
//!
//! let outcome = HillClimb::default().search(&Bits);
//! assert!(outcome.best_fitness <= 4.0);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{evaluate_batch, resolve_threads, GaConfig, GenStats, GeneticAlgorithm, ObjScorer};

/// A search problem: genome construction, variation operators and a
/// context-threaded fitness function (minimized).
///
/// The context ([`Objective::Ctx`]) is the reuse hook for expensive
/// fitness evaluation: every worker thread creates one context with
/// [`Objective::new_ctx`] and threads it through all of its
/// [`Objective::evaluate`] calls, so scratch state (arenas, caches,
/// buffers) lives across evaluations instead of being reallocated per
/// call. Evaluation must be a pure function of the genome — the context
/// may only carry state whose reuse cannot change results.
pub trait Objective: Sync {
    /// The genome type being searched.
    type Genome: Clone + Send + Sync;
    /// Per-worker evaluation scratch; use `()` when evaluation needs
    /// none. `Send` so worker slots can persist across parallel batches.
    type Ctx: Send;

    /// Creates one per-worker evaluation context.
    fn new_ctx(&self) -> Self::Ctx;
    /// Draws a random genome.
    fn init(&self, rng: &mut StdRng) -> Self::Genome;
    /// Perturbs a genome in place.
    fn mutate(&self, genome: &mut Self::Genome, rng: &mut StdRng);
    /// Combines two parents into a child.
    fn crossover(&self, a: &Self::Genome, b: &Self::Genome, rng: &mut StdRng) -> Self::Genome;
    /// Scores a genome (lower is better).
    fn evaluate(&self, ctx: &mut Self::Ctx, genome: &Self::Genome) -> f64;
}

/// The uniform result of a [`SearchStrategy`] run.
#[derive(Debug, Clone)]
pub struct SearchOutcome<G> {
    /// The best genome found.
    pub best_genome: G,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-batch statistics, where a batch is a GA generation, a
    /// hill-climbing step, or empty for strategies without a trajectory
    /// (random search).
    pub history: Vec<GenStats>,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
    /// Every sampled fitness in evaluation order, when the strategy
    /// retains them (random search; `None` otherwise).
    pub samples: Option<Vec<f64>>,
}

/// A pluggable search policy over any [`Objective`].
///
/// Strategies are deterministic given their seed and honor a worker
/// thread-count setting interpreted like [`GaConfig::threads`]
/// (`0` = auto). Results are bit-identical for every thread count.
pub trait SearchStrategy: Clone + Send + Sync {
    /// Runs the search to completion.
    fn search<O: Objective>(&self, objective: &O) -> SearchOutcome<O::Genome>;

    /// A copy of this strategy with a different seed and worker
    /// thread-count (used to derive per-workload searches in batch runs).
    #[must_use]
    fn reconfigured(&self, seed: u64, threads: usize) -> Self;

    /// The RNG seed the search will use.
    fn seed(&self) -> u64;

    /// The configured worker thread-count (`0` = auto).
    fn threads(&self) -> usize;

    /// Total fitness evaluations a run will perform.
    fn evaluation_budget(&self) -> usize;

    /// A short human-readable name ("ga", "random", "hill-climb").
    fn name(&self) -> &'static str;
}

/// The paper's Phase II: a genetic algorithm over the objective's
/// genome, driven by [`GeneticAlgorithm`]. Bit-identical to the closure
/// API for the same [`GaConfig`].
#[derive(Debug, Clone, Default)]
pub struct Ga {
    cfg: GaConfig,
}

impl Ga {
    /// A GA strategy with the given engine configuration.
    pub fn new(cfg: GaConfig) -> Self {
        Ga { cfg }
    }

    /// The engine configuration.
    pub fn config(&self) -> &GaConfig {
        &self.cfg
    }
}

impl SearchStrategy for Ga {
    fn search<O: Objective>(&self, objective: &O) -> SearchOutcome<O::Genome> {
        let result = GeneticAlgorithm::new(self.cfg.clone()).run_objective(objective);
        SearchOutcome {
            best_genome: result.best_genome,
            best_fitness: result.best_fitness,
            history: result.history,
            evaluations: result.evaluations,
            samples: None,
        }
    }

    fn reconfigured(&self, seed: u64, threads: usize) -> Self {
        let mut cfg = self.cfg.clone();
        cfg.seed = seed;
        cfg.threads = threads;
        Ga { cfg }
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn threads(&self) -> usize {
        self.cfg.threads
    }

    fn evaluation_budget(&self) -> usize {
        GeneticAlgorithm::new(self.cfg.clone()).evaluation_budget()
    }

    fn name(&self) -> &'static str {
        "ga"
    }
}

/// The equal-budget random baseline of Fig. 4 as a strategy: `n_evals`
/// independent draws, every sampled fitness retained.
///
/// Candidates are streamed through a bounded evaluation chunk
/// ([`RandomSearch::chunk`]) so a paper-scale budget
/// (`MVF_PAPER_SCALE=1`: 9,726 evaluations per workload) never
/// materializes the whole batch; results are bit-identical for every
/// chunk size.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Number of genomes drawn and evaluated.
    pub n_evals: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (`0` = auto, `1` = serial).
    pub threads: usize,
    /// Maximum genomes materialized at a time (`0` = auto). Results are
    /// bit-identical for every setting.
    pub chunk: usize,
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch {
            n_evals: 1000,
            seed: 0xBA5E,
            threads: 0,
            chunk: 0,
        }
    }
}

impl SearchStrategy for RandomSearch {
    fn search<O: Objective>(&self, objective: &O) -> SearchOutcome<O::Genome> {
        let result = crate::random_search_objective_chunked(
            self.n_evals,
            self.seed,
            self.threads,
            self.chunk,
            objective,
        );
        SearchOutcome {
            best_genome: result.best_genome,
            best_fitness: result.best_fitness,
            history: Vec::new(),
            evaluations: self.n_evals,
            samples: Some(result.samples),
        }
    }

    fn reconfigured(&self, seed: u64, threads: usize) -> Self {
        RandomSearch {
            seed,
            threads,
            ..self.clone()
        }
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn evaluation_budget(&self) -> usize {
        self.n_evals
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Batched stochastic hill climbing with random restarts.
///
/// Each restart draws a fresh genome and then repeatedly proposes
/// `batch` mutated neighbors, evaluated as one batch (parallel with the
/// `parallel` feature); the climb moves to the best neighbor whenever it
/// improves on the incumbent. Like the GA, neighbors are bred serially
/// from per-individual RNG streams before the batch is scored, so runs
/// are bit-identical across thread counts.
///
/// This is the cheap middle ground between [`RandomSearch`] and [`Ga`]:
/// it exploits locality of the pin-assignment landscape (one swap is a
/// small area change) without maintaining a population.
#[derive(Debug, Clone)]
pub struct HillClimb {
    /// Independent climbs from fresh random starting points.
    pub restarts: usize,
    /// Neighbor batches evaluated per climb.
    pub steps: usize,
    /// Mutated neighbors proposed per step.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (`0` = auto, `1` = serial).
    pub threads: usize,
}

impl Default for HillClimb {
    fn default() -> Self {
        HillClimb {
            restarts: 3,
            steps: 25,
            batch: 8,
            seed: 0xC11B,
            threads: 0,
        }
    }
}

impl SearchStrategy for HillClimb {
    fn search<O: Objective>(&self, objective: &O) -> SearchOutcome<O::Genome> {
        assert!(self.restarts > 0, "hill climb needs at least one restart");
        assert!(self.batch > 0, "hill climb needs a positive batch size");
        let scorer = ObjScorer(objective);
        let threads = resolve_threads(self.threads);
        let mut master = StdRng::seed_from_u64(self.seed);
        let mut history = Vec::with_capacity(self.restarts * (self.steps + 1));
        let mut evaluations = 0usize;
        let mut global: Option<(O::Genome, f64)> = None;
        // Per-worker evaluation contexts, reused across every step and
        // restart of the climb.
        let mut ctxs: Vec<Option<O::Ctx>> = Vec::new();
        for _ in 0..self.restarts {
            let mut stream = StdRng::seed_from_u64(master.gen::<u64>());
            let start = objective.init(&mut stream);
            let start_fit = evaluate_batch(std::slice::from_ref(&start), &scorer, 1, &mut ctxs)[0];
            evaluations += 1;
            let mut current = (start, start_fit);
            if global.as_ref().is_none_or(|g| current.1 < g.1) {
                global = Some(current.clone());
            }
            let best_so_far = global.as_ref().expect("set above").1;
            history.push(GenStats {
                best_so_far,
                best: start_fit,
                avg: start_fit,
            });
            for _ in 0..self.steps {
                // Breed serially from pre-drawn streams, then score the
                // batch — the same discipline as the GA engine.
                let mut neighbors: Vec<O::Genome> = Vec::with_capacity(self.batch);
                for _ in 0..self.batch {
                    let mut stream = StdRng::seed_from_u64(master.gen::<u64>());
                    let mut n = current.0.clone();
                    objective.mutate(&mut n, &mut stream);
                    neighbors.push(n);
                }
                let fits = evaluate_batch(&neighbors, &scorer, threads, &mut ctxs);
                evaluations += neighbors.len();
                let avg = fits.iter().sum::<f64>() / fits.len() as f64;
                let (best_idx, best_fit) = fits
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("batch > 0");
                if best_fit < current.1 {
                    current = (neighbors.swap_remove(best_idx), best_fit);
                    if global.as_ref().is_none_or(|g| current.1 < g.1) {
                        global = Some(current.clone());
                    }
                }
                history.push(GenStats {
                    best_so_far: global.as_ref().expect("set above").1,
                    best: best_fit,
                    avg,
                });
            }
        }
        let (best_genome, best_fitness) = global.expect("restarts > 0");
        SearchOutcome {
            best_genome,
            best_fitness,
            history,
            evaluations,
            samples: None,
        }
    }

    fn reconfigured(&self, seed: u64, threads: usize) -> Self {
        HillClimb {
            seed,
            threads,
            ..self.clone()
        }
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn evaluation_budget(&self) -> usize {
        self.restarts * (1 + self.steps * self.batch)
    }

    fn name(&self) -> &'static str {
        "hill-climb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize the squared distance of a 6-vector from the origin.
    struct Sphere;

    impl Objective for Sphere {
        type Genome = Vec<f64>;
        type Ctx = usize; // counts evaluations per worker context

        fn new_ctx(&self) -> usize {
            0
        }
        fn init(&self, rng: &mut StdRng) -> Vec<f64> {
            (0..6).map(|_| rng.gen_range(-10.0..10.0)).collect()
        }
        fn mutate(&self, g: &mut Vec<f64>, rng: &mut StdRng) {
            let i = rng.gen_range(0..g.len());
            g[i] += rng.gen_range(-1.0..1.0);
        }
        fn crossover(&self, a: &Vec<f64>, b: &Vec<f64>, rng: &mut StdRng) -> Vec<f64> {
            let cut = rng.gen_range(0..a.len());
            a[..cut].iter().chain(b[cut..].iter()).copied().collect()
        }
        fn evaluate(&self, ctx: &mut usize, g: &Vec<f64>) -> f64 {
            *ctx += 1;
            g.iter().map(|x| x * x).sum()
        }
    }

    #[test]
    fn ga_strategy_matches_run_objective() {
        let cfg = GaConfig {
            population: 12,
            generations: 8,
            seed: 0xAB,
            ..GaConfig::default()
        };
        let direct = GeneticAlgorithm::new(cfg.clone()).run_objective(&Sphere);
        let via_strategy = Ga::new(cfg).search(&Sphere);
        assert_eq!(direct.best_genome, via_strategy.best_genome);
        assert_eq!(
            direct.best_fitness.to_bits(),
            via_strategy.best_fitness.to_bits()
        );
        assert_eq!(direct.evaluations, via_strategy.evaluations);
    }

    #[test]
    fn random_search_strategy_keeps_samples() {
        let rs = RandomSearch {
            n_evals: 40,
            seed: 3,
            threads: 1,
            chunk: 0,
        };
        let out = rs.search(&Sphere);
        let samples = out.samples.expect("random search retains samples");
        assert_eq!(samples.len(), 40);
        assert_eq!(out.evaluations, rs.evaluation_budget());
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(out.best_fitness.to_bits(), min.to_bits());
    }

    #[test]
    fn hill_climb_improves_and_is_deterministic() {
        let hc = HillClimb {
            restarts: 2,
            steps: 20,
            batch: 6,
            seed: 0x5EED,
            threads: 1,
        };
        let a = hc.search(&Sphere);
        let b = hc.search(&Sphere);
        assert_eq!(a.best_genome, b.best_genome);
        assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits());
        assert_eq!(a.evaluations, hc.evaluation_budget());
        assert!(
            a.best_fitness < a.history[0].best,
            "climbing must improve on the first random start"
        );
        // best_so_far is monotone.
        for w in a.history.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far);
        }
    }

    #[test]
    fn hill_climb_thread_count_does_not_change_results() {
        let serial = HillClimb {
            restarts: 2,
            steps: 10,
            batch: 7,
            seed: 9,
            threads: 1,
        };
        let a = serial.search(&Sphere);
        for threads in [2, 4] {
            let b = serial.reconfigured(serial.seed, threads).search(&Sphere);
            assert_eq!(a.best_genome, b.best_genome, "threads={threads}");
            assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits());
            assert_eq!(a.history.len(), b.history.len());
        }
    }

    #[test]
    fn reconfigured_changes_seed_and_threads_only() {
        let ga = Ga::new(GaConfig {
            population: 5,
            ..GaConfig::default()
        });
        let re = ga.reconfigured(123, 2);
        assert_eq!(re.seed(), 123);
        assert_eq!(re.config().threads, 2);
        assert_eq!(re.config().population, 5);
        assert_eq!(ga.name(), "ga");
        assert_eq!(RandomSearch::default().name(), "random");
        assert_eq!(HillClimb::default().name(), "hill-climb");
    }
}
