//! Genetic operators over permutations — the genotype of Phase II.
//!
//! Pin assignments are per-function permutations, so the GA needs
//! permutation-preserving operators: [`random_permutation`] for
//! initialization, [`swap_mutation`] for mutation, and partially-mapped
//! crossover ([`pmx`]) for recombination.

use rand::rngs::StdRng;
use rand::Rng;

/// A uniformly random permutation of `0..n` (Fisher–Yates).
pub fn random_permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// Swaps two random positions in place. A no-op for permutations of
/// length < 2.
pub fn swap_mutation(p: &mut [usize], rng: &mut StdRng) {
    if p.len() < 2 {
        return;
    }
    let i = rng.gen_range(0..p.len());
    let mut j = rng.gen_range(0..p.len());
    if i == j {
        j = (j + 1) % p.len();
    }
    p.swap(i, j);
}

/// Partially-mapped crossover: copies a random segment from `a` and fills
/// the rest from `b`, repairing collisions through the PMX mapping chain.
/// Always produces a valid permutation.
///
/// # Panics
///
/// Panics if the parents differ in length.
pub fn pmx(a: &[usize], b: &[usize], rng: &mut StdRng) -> Vec<usize> {
    assert_eq!(a.len(), b.len(), "parents must have equal length");
    let n = a.len();
    if n < 2 {
        return a.to_vec();
    }
    let mut lo = rng.gen_range(0..n);
    let mut hi = rng.gen_range(0..n);
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut child = vec![usize::MAX; n];
    let mut used = vec![false; n];
    for i in lo..=hi {
        child[i] = a[i];
        used[a[i]] = true;
    }
    // Position of each value in a, for the repair chain.
    let mut pos_in_a = vec![0usize; n];
    for (i, &v) in a.iter().enumerate() {
        pos_in_a[v] = i;
    }
    for i in (0..lo).chain(hi + 1..n) {
        let mut v = b[i];
        // Follow the mapping chain until the value is free.
        while used[v] {
            v = b[pos_in_a[v]];
        }
        child[i] = v;
        used[v] = true;
    }
    child
}

/// `true` iff `p` is a permutation of `0..p.len()`.
pub fn is_permutation(p: &[usize]) -> bool {
    let mut seen = vec![false; p.len()];
    for &x in p {
        if x >= p.len() || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_permutations_are_valid_and_varied() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let p = random_permutation(6, &mut rng);
            assert!(is_permutation(&p));
            distinct.insert(p);
        }
        assert!(distinct.len() > 20, "permutations should vary");
    }

    #[test]
    fn swap_mutation_preserves_validity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = random_permutation(8, &mut rng);
        for _ in 0..100 {
            swap_mutation(&mut p, &mut rng);
            assert!(is_permutation(&p));
        }
    }

    #[test]
    fn swap_mutation_changes_something() {
        let mut rng = StdRng::seed_from_u64(3);
        let orig: Vec<usize> = (0..8).collect();
        let mut p = orig.clone();
        swap_mutation(&mut p, &mut rng);
        assert_ne!(p, orig);
    }

    #[test]
    fn pmx_produces_valid_children() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let a = random_permutation(9, &mut rng);
            let b = random_permutation(9, &mut rng);
            let c = pmx(&a, &b, &mut rng);
            assert!(is_permutation(&c), "a={a:?} b={b:?} c={c:?}");
        }
    }

    #[test]
    fn pmx_inherits_from_both_parents() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: Vec<usize> = (0..10).collect();
        let b: Vec<usize> = (0..10).rev().collect();
        let mut from_a = 0;
        let mut from_b = 0;
        for _ in 0..100 {
            let c = pmx(&a, &b, &mut rng);
            for (i, &v) in c.iter().enumerate() {
                if a[i] == v {
                    from_a += 1;
                }
                if b[i] == v {
                    from_b += 1;
                }
            }
        }
        assert!(from_a > 0 && from_b > 0, "a:{from_a} b:{from_b}");
    }

    #[test]
    fn pmx_handles_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(pmx(&[0], &[0], &mut rng), vec![0]);
        assert_eq!(pmx(&[], &[], &mut rng), Vec::<usize>::new());
    }
}
