//! The end-to-end obfuscation flow: builder, configuration and results.

use mvf_aig::Script;
use mvf_cells::{CamoLibrary, Library};
use mvf_ga::{Ga, GaConfig, GenStats, SearchOutcome, SearchStrategy};
use mvf_logic::VectorFunction;
use mvf_merge::{build_merged, MergedCircuit, PinAssignment};
use mvf_netlist::subject_graph;
use mvf_obfuscate::{
    lock_library, lock_merged_netlist, LockOptions, LockedNetlist, ObfuscationSpace, SchemeKind,
};
use mvf_sim::ValidationError;
use mvf_techmap::{map_standard, CamoMapOptions, CamoMappedCircuit, CamoWitness, MapOptions};

use crate::error::MvfError;
use crate::eval::{EvalContext, PinObjective};

/// Configuration of the three-phase flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Synthesis script (used for fitness evaluation and the final
    /// circuit alike, as in the paper's single ABC script).
    pub script: Script,
    /// Genetic-algorithm settings (Phase II) — used by the default
    /// [`Ga`] strategy; ignored when [`FlowBuilder::build_with`] installs
    /// a different [`SearchStrategy`].
    pub ga: GaConfig,
    /// Plain-mapping options (area fitness).
    pub map: MapOptions,
    /// Camouflage-mapping options (Phase III).
    pub camo_map: CamoMapOptions,
    /// Validate the final circuit exhaustively (ModelSim substitute).
    pub validate: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            script: Script::fast(),
            ga: GaConfig::default(),
            map: MapOptions::default(),
            camo_map: CamoMapOptions::default(),
            validate: true,
        }
    }
}

/// Output of [`Flow::run`].
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The best pin assignment found by the search strategy.
    pub assignment: PinAssignment,
    /// The merged circuit for that assignment (synthesized).
    pub merged: MergedCircuit,
    /// Phase-II area: GE after synthesis + standard mapping ("GA" in
    /// Table I).
    pub synthesized_area_ge: f64,
    /// The obfuscated circuit ("GA+TM" in Table I): camouflage-mapped
    /// under [`SchemeKind::Camouflage`], key-gate-locked (with an empty
    /// doping witness) under [`SchemeKind::Locking`]. Either way the
    /// netlist is select-free and every viable function stays plausible.
    pub mapped: CamoMappedCircuit,
    /// Its GE area.
    pub mapped_area_ge: f64,
    /// The locking secret — sites and correct key — when the flow was
    /// built with [`FlowBuilder::scheme`]`(SchemeKind::Locking)`; `None`
    /// for camouflage flows. Key bits `0..n_selects` carry the select
    /// value: [`LockedNetlist::key_for_select`]`(j)` realizes viable
    /// function `j`.
    pub locked: Option<LockedNetlist>,
    /// Search statistics per batch (Fig. 4b; empty for strategies
    /// without a trajectory).
    pub ga_history: Vec<GenStats>,
    /// Total fitness evaluations spent by the search.
    pub evaluations: usize,
    /// Fitness evaluations that failed (merge/map error) and were scored
    /// as [`f64::INFINITY`]. Zero in a healthy run: the variation
    /// operators only produce valid assignments.
    pub failed_evaluations: usize,
}

/// Random-search baseline over pin assignments (Fig. 4a / Table I
/// "Random" columns).
#[derive(Debug, Clone)]
pub struct RandomBaseline {
    /// Mean sampled area.
    pub avg_area_ge: f64,
    /// Best sampled area.
    pub best_area_ge: f64,
    /// The best assignment found.
    pub best_assignment: PinAssignment,
    /// Every sampled area (histogram data for Fig. 4a).
    pub samples: Vec<f64>,
    /// Samples that failed to evaluate (scored [`f64::INFINITY`]).
    pub failed_evaluations: usize,
}

/// Builder for a [`Flow`]: cell libraries, synthesis script, mapper
/// options and search strategy are all pluggable.
///
/// # Example
///
/// ```
/// use mvf::{Flow, FlowBuilder};
/// use mvf_ga::{GaConfig, HillClimb};
/// use mvf_sboxes::optimal_sboxes;
///
/// let functions = optimal_sboxes()[..2].to_vec();
///
/// // Default GA strategy, custom budget:
/// let flow = Flow::builder()
///     .ga(GaConfig { population: 8, generations: 3, ..GaConfig::default() })
///     .build();
/// let result = flow.run(&functions)?;
/// assert!(result.mapped_area_ge > 0.0);
///
/// // Same pipeline, different search policy:
/// let flow = FlowBuilder::new()
///     .build_with(HillClimb { restarts: 1, steps: 4, batch: 4, ..HillClimb::default() });
/// let result = flow.run(&functions)?;
/// assert_eq!(result.failed_evaluations, 0);
/// # Ok::<(), mvf::MvfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowBuilder {
    config: FlowConfig,
    lib: Option<Library>,
    camo: Option<CamoLibrary>,
    scheme: SchemeKind,
    lock_opts: LockOptions,
    workload_threads: usize,
    attack_sweep: bool,
    attack_shards: usize,
    attack_interpretation_freedom: bool,
    attack_npn: bool,
    attack_class_share: bool,
    attack_screen: bool,
    attack_inprocess: bool,
}

impl Default for FlowBuilder {
    fn default() -> Self {
        FlowBuilder {
            config: FlowConfig::default(),
            lib: None,
            camo: None,
            scheme: SchemeKind::Camouflage,
            lock_opts: LockOptions::default(),
            workload_threads: 0,
            attack_sweep: false,
            attack_shards: 0,
            attack_interpretation_freedom: false,
            // NPN completion and cross-candidate class sharing multiply
            // the orbit by 2^(n_in + n_out); strictly audit-tier, so
            // opt-in on top of interpretation freedom.
            attack_npn: false,
            attack_class_share: false,
            // The screen-then-solve funnel never changes a verdict, so
            // it is on unless an audit explicitly wants SAT-only runs.
            attack_screen: true,
            // Likewise SAT inprocessing: verdicts and witnesses are
            // bit-identical either way, only solve time changes.
            attack_inprocess: true,
        }
    }
}

impl FlowBuilder {
    /// A builder with the default configuration (standard library,
    /// derived camouflaged library, fast script, default GA).
    pub fn new() -> Self {
        FlowBuilder::default()
    }

    /// Replaces the whole [`FlowConfig`].
    #[must_use]
    pub fn config(mut self, config: FlowConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the synthesis script.
    #[must_use]
    pub fn script(mut self, script: Script) -> Self {
        self.config.script = script;
        self
    }

    /// Sets the GA engine settings used by the default [`Ga`] strategy.
    #[must_use]
    pub fn ga(mut self, ga: GaConfig) -> Self {
        self.config.ga = ga;
        self
    }

    /// Sets the plain-mapping (fitness) options.
    #[must_use]
    pub fn map(mut self, map: MapOptions) -> Self {
        self.config.map = map;
        self
    }

    /// Sets the camouflage-mapping (Phase III) options.
    #[must_use]
    pub fn camo_map(mut self, camo_map: CamoMapOptions) -> Self {
        self.config.camo_map = camo_map;
        self
    }

    /// Enables or disables exhaustive validation of the final circuit.
    #[must_use]
    pub fn validate(mut self, validate: bool) -> Self {
        self.config.validate = validate;
        self
    }

    /// Uses a custom standard-cell library instead of
    /// [`Library::standard`]. Unless [`FlowBuilder::camo_library`] is
    /// also given, the camouflaged library is derived from it.
    #[must_use]
    pub fn library(mut self, lib: Library) -> Self {
        self.lib = Some(lib);
        self
    }

    /// Uses a custom camouflaged-cell library instead of deriving one
    /// from the standard library.
    #[must_use]
    pub fn camo_library(mut self, camo: CamoLibrary) -> Self {
        self.camo = Some(camo);
        self
    }

    /// Selects the obfuscation family Phase III emits (default:
    /// [`SchemeKind::Camouflage`], the paper's flow). Under
    /// [`SchemeKind::Locking`] the standard-mapped merged circuit is
    /// key-gate-locked instead of camouflage-mapped: every select input
    /// is bound to a key bit and [`FlowBuilder::lock_options`] extra key
    /// gates are inserted, so the multiple-viable-function property is
    /// carried by the key rather than by doping choices.
    #[must_use]
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Key-gate insertion options for [`SchemeKind::Locking`] flows
    /// (ignored under camouflage).
    #[must_use]
    pub fn lock_options(mut self, opts: LockOptions) -> Self {
        self.lock_opts = opts;
        self
    }

    /// Worker threads for [`Flow::run_many`]'s workload-level
    /// parallelism (`0` = auto, `1` = serial). Results are identical for
    /// every setting.
    #[must_use]
    pub fn workload_threads(mut self, threads: usize) -> Self {
        self.workload_threads = threads;
        self
    }

    /// Enables the opt-in red-team pass of [`Flow::run_many`]: every
    /// successful workload's camouflaged netlist is swept through the SAT
    /// adversary ([`mvf_attack::plausibility_sweep`]) and the per-viable-
    /// function verdict vector is attached to its
    /// [`WorkloadReport::plausibility`](crate::WorkloadReport::plausibility).
    #[must_use]
    pub fn attack_sweep(mut self, enabled: bool) -> Self {
        self.attack_sweep = enabled;
        self
    }

    /// Worker shards for the red-team pass
    /// ([`mvf_attack::plausibility_sweep_sharded`]): each workload's
    /// candidate sweep clones the encoded solver per shard and answers
    /// queries in parallel. `0` (the default) gives every sweep the
    /// workload's inner thread share; verdicts are bit-identical for
    /// every shard count.
    #[must_use]
    pub fn attack_shards(mut self, shards: usize) -> Self {
        self.attack_shards = shards;
        self
    }

    /// Upgrades the red-team pass to the paper's **full** adversary: in
    /// addition to the identity-interpretation sweep, every viable
    /// function is tested for plausibility under *some* input/output pin
    /// permutation ([`mvf_attack::plausibility_sweep_any_io_sharded`],
    /// sharded per [`FlowBuilder::attack_shards`]), and the witness
    /// interpretation is attached to the report
    /// ([`PlausibilityVerdict::witness`](crate::PlausibilityVerdict)).
    ///
    /// Only meaningful together with [`FlowBuilder::attack_sweep`]. The
    /// orbit search costs up to `n_in! · n_out!` SAT queries per
    /// candidate (pruned by pin-symmetry signatures), so enable it for
    /// audit runs rather than every batch.
    #[must_use]
    pub fn attack_interpretation_freedom(mut self, enabled: bool) -> Self {
        self.attack_interpretation_freedom = enabled;
        self
    }

    /// Extends the full adversary's orbit from pin permutations to the
    /// complete NPN group: every viable function is additionally tested
    /// under all `2^n_in · 2^n_out` input/output polarity flips
    /// ([`mvf_attack::AnyIoOptions::npn`]), and the reported witness
    /// carries the negation masks. Only meaningful together with
    /// [`FlowBuilder::attack_interpretation_freedom`]; multiplies the
    /// orbit by `2^(n_in + n_out)`, so this is an audit-tier knob.
    #[must_use]
    pub fn attack_npn(mut self, enabled: bool) -> Self {
        self.attack_npn = enabled;
        self
    }

    /// Enables cross-candidate orbit-class sharing in the full adversary
    /// ([`mvf_attack::AnyIoOptions::class_share`]): candidates whose
    /// orbits coincide (same NPN/P class) share one screen pass and one
    /// SAT verdict cache, so each distinct transformed function is
    /// queried once per batch instead of once per candidate. Verdicts
    /// and witnesses are bit-identical with sharing off; only
    /// [`PlausibilityVerdict::queries`](crate::PlausibilityVerdict) and
    /// `screened` counts drop.
    #[must_use]
    pub fn attack_class_share(mut self, enabled: bool) -> Self {
        self.attack_class_share = enabled;
        self
    }

    /// Enables or disables the red-team pass's SAT-free screen (the
    /// screen-then-solve funnel, on by default): a word-parallel batch
    /// simulation over all enumerable doping configurations refutes —
    /// and, when the batch covers every minterm, confirms — candidates
    /// before any SAT query. Verdicts and witness permutations are
    /// bit-identical either way; only the
    /// [`PlausibilityVerdict::queries`](crate::PlausibilityVerdict)
    /// count changes. Disable for SAT-only audit baselines.
    #[must_use]
    pub fn attack_screen(mut self, enabled: bool) -> Self {
        self.attack_screen = enabled;
        self
    }

    /// Enables or disables SAT inprocessing in the red-team pass (on by
    /// default): after each workload's netlist is encoded, the solver
    /// runs one vivification-and-variable-elimination pass
    /// (`mvf_sat::Solver::simplify`) and keeps vivifying between
    /// restarts, shrinking the clause database before the candidate
    /// queries hit it. Verdicts, witness permutations and query counts
    /// are bit-identical either way; disable only for unsimplified
    /// SAT baselines.
    #[must_use]
    pub fn attack_inprocess(mut self, enabled: bool) -> Self {
        self.attack_inprocess = enabled;
        self
    }

    /// Builds a flow with the default [`Ga`] strategy configured from
    /// [`FlowConfig::ga`].
    pub fn build(self) -> Flow<Ga> {
        let strategy = Ga::new(self.config.ga.clone());
        self.build_with(strategy)
    }

    /// Builds a flow with an explicit [`SearchStrategy`] for Phase II.
    pub fn build_with<S: SearchStrategy>(self, strategy: S) -> Flow<S> {
        let lib = self.lib.unwrap_or_else(Library::standard);
        let camo = self.camo.unwrap_or_else(|| CamoLibrary::from_library(&lib));
        let lock = lock_library(&lib);
        Flow {
            config: self.config,
            lib,
            camo,
            lock,
            scheme: self.scheme,
            lock_opts: self.lock_opts,
            strategy,
            workload_threads: self.workload_threads,
            attack_sweep: self.attack_sweep,
            attack_shards: self.attack_shards,
            attack_interpretation_freedom: self.attack_interpretation_freedom,
            attack_npn: self.attack_npn,
            attack_class_share: self.attack_class_share,
            attack_screen: self.attack_screen,
            attack_inprocess: self.attack_inprocess,
        }
    }
}

/// The end-to-end obfuscation flow (Phases I–III), generic over the
/// Phase-II [`SearchStrategy`] (default: the paper's [`Ga`]).
///
/// Construct with [`Flow::builder`].
#[derive(Debug, Clone)]
pub struct Flow<S = Ga> {
    pub(crate) config: FlowConfig,
    pub(crate) lib: Library,
    pub(crate) camo: CamoLibrary,
    pub(crate) lock: CamoLibrary,
    pub(crate) scheme: SchemeKind,
    pub(crate) lock_opts: LockOptions,
    pub(crate) strategy: S,
    pub(crate) workload_threads: usize,
    pub(crate) attack_sweep: bool,
    pub(crate) attack_shards: usize,
    pub(crate) attack_interpretation_freedom: bool,
    pub(crate) attack_npn: bool,
    pub(crate) attack_class_share: bool,
    pub(crate) attack_screen: bool,
    pub(crate) attack_inprocess: bool,
}

impl Flow<Ga> {
    /// Creates a flow over the standard library and its camouflaged
    /// variants.
    #[deprecated(since = "0.2.0", note = "use `Flow::builder()` instead")]
    pub fn new(config: FlowConfig) -> Self {
        FlowBuilder::new().config(config).build()
    }
}

impl Flow {
    /// Starts building a flow.
    pub fn builder() -> FlowBuilder {
        FlowBuilder::new()
    }
}

impl<S> Flow<S> {
    /// The configuration in use.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The standard library in use.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// The camouflaged library in use.
    pub fn camo_library(&self) -> &CamoLibrary {
        &self.camo
    }

    /// The obfuscation family Phase III emits.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// The key-gate insertion options a locking flow uses.
    pub fn lock_options(&self) -> &LockOptions {
        &self.lock_opts
    }

    /// The choice-set library of the active scheme: the camouflaged
    /// library under [`SchemeKind::Camouflage`], the key-gate library
    /// under [`SchemeKind::Locking`]. This is the library the mapped
    /// netlist's `Camo` cell references index, and the one every
    /// attack-layer call must be handed.
    pub fn choice_library(&self) -> &CamoLibrary {
        match self.scheme {
            SchemeKind::Camouflage => &self.camo,
            SchemeKind::Locking => &self.lock,
        }
    }

    /// The [`ObfuscationSpace`] of this flow's outputs — the seam the
    /// attack layer and the audit service consume.
    pub fn obfuscation_space(&self) -> ObfuscationSpace<'_> {
        ObfuscationSpace::with_kind(self.scheme, &self.lib, self.choice_library())
    }

    /// The Phase-II search strategy in use.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Completes the flow for a fixed assignment (used for baselines and
    /// internally by [`Flow::run`]).
    ///
    /// # Errors
    ///
    /// Same as [`Flow::run`].
    pub fn finish(
        &self,
        functions: &[VectorFunction],
        assignment: PinAssignment,
        ga_history: Vec<GenStats>,
        evaluations: usize,
    ) -> Result<FlowResult, MvfError> {
        self.complete(functions, assignment, ga_history, evaluations, 0)
    }

    /// [`Flow::finish`] with an explicit failed-evaluation tally, for
    /// externally driven searches (checkpointed or stepped runners) that
    /// track their own failure count instead of going through
    /// [`Flow::run`].
    ///
    /// # Errors
    ///
    /// Same as [`Flow::run`].
    pub fn finish_with(
        &self,
        functions: &[VectorFunction],
        assignment: PinAssignment,
        ga_history: Vec<GenStats>,
        evaluations: usize,
        failed_evaluations: usize,
    ) -> Result<FlowResult, MvfError> {
        self.complete(
            functions,
            assignment,
            ga_history,
            evaluations,
            failed_evaluations,
        )
    }

    pub(crate) fn complete(
        &self,
        functions: &[VectorFunction],
        assignment: PinAssignment,
        ga_history: Vec<GenStats>,
        evaluations: usize,
        failed_evaluations: usize,
    ) -> Result<FlowResult, MvfError> {
        let mut merged = build_merged(functions, &assignment)?;
        merged.aig = self.config.script.run(&merged.aig);
        let subject = subject_graph::from_aig(&merged.aig, &self.lib);
        let plain = map_standard(&subject, &self.lib, &self.config.map)?;
        let synthesized_area = plain.area_ge(&self.lib, None);
        // One context carries the Phase-III scratch (camouflage matcher
        // tables, widened validation arena) through mapping *and*
        // validation.
        let mut ctx = EvalContext::new();
        let (mapped, locked) = match self.scheme {
            SchemeKind::Camouflage => {
                let mapped = ctx.map_camouflage(
                    &subject,
                    &self.lib,
                    &self.camo,
                    &merged.select_indices,
                    &self.config.camo_map,
                )?;
                (mapped, None)
            }
            SchemeKind::Locking => {
                // Phase III by key-gate insertion: the select inputs of
                // the standard-mapped merged circuit become key bits, so
                // the interface matches the camouflage path (select-free)
                // and every viable function stays reachable under its
                // select key.
                let locked = lock_merged_netlist(
                    &plain,
                    &self.lib,
                    &self.lock,
                    &merged.select_indices,
                    &self.lock_opts,
                )?;
                let mapped = CamoMappedCircuit {
                    netlist: locked.netlist.clone(),
                    witness: CamoWitness { cells: Vec::new() },
                };
                (mapped, Some(locked))
            }
        };
        let mapped_area = mapped
            .netlist
            .area_ge(&self.lib, Some(self.choice_library()));
        if self.config.validate {
            match &locked {
                None => ctx.validate_mapped(&mapped, &self.lib, &self.camo, &merged.functions)?,
                Some(locked) => self.validate_locked(locked, &merged.functions)?,
            }
        }
        Ok(FlowResult {
            assignment,
            merged,
            synthesized_area_ge: synthesized_area,
            mapped,
            mapped_area_ge: mapped_area,
            locked,
            ga_history,
            evaluations,
            failed_evaluations,
        })
    }

    /// Exhaustive locking validation (the ModelSim substitute of the
    /// locking path): under every select key the locked circuit must
    /// compute exactly that viable function.
    fn validate_locked(
        &self,
        locked: &LockedNetlist,
        functions: &[VectorFunction],
    ) -> Result<(), MvfError> {
        for (j, f) in functions.iter().enumerate() {
            let cfg = locked.config_for_key(&locked.key_for_select(j));
            let got = mvf_sim::eval_camo_netlist(&locked.netlist, &self.lib, &self.lock, &cfg)?;
            if got.len() != f.outputs().len() {
                return Err(ValidationError::ShapeMismatch(format!(
                    "locked circuit has {} outputs, function {j} expects {}",
                    got.len(),
                    f.outputs().len()
                ))
                .into());
            }
            for (output, (g, want)) in got.iter().zip(f.outputs()).enumerate() {
                if g != want {
                    return Err(ValidationError::FunctionMismatch {
                        function: j,
                        output,
                    }
                    .into());
                }
            }
        }
        Ok(())
    }
}

impl<S: SearchStrategy> Flow<S> {
    /// Runs Phases I–III on the viable functions.
    ///
    /// # Errors
    ///
    /// Returns an [`MvfError`] on merge/map failure, or a validation
    /// error if the mapped circuit cannot realize every viable function
    /// (which would indicate a bug, and is checked exhaustively when
    /// `config.validate` is set).
    pub fn run(&self, functions: &[VectorFunction]) -> Result<FlowResult, MvfError> {
        self.run_with_strategy(functions, &self.strategy)
    }

    /// [`Flow::run`] with the strategy reseeded to `seed` — the serial
    /// equivalent of one [`Flow::run_many`] batch entry.
    ///
    /// # Errors
    ///
    /// Same as [`Flow::run`].
    pub fn run_seeded(
        &self,
        functions: &[VectorFunction],
        seed: u64,
    ) -> Result<FlowResult, MvfError> {
        let strategy = self.strategy.reconfigured(seed, self.strategy.threads());
        self.run_with_strategy(functions, &strategy)
    }

    pub(crate) fn run_with_strategy(
        &self,
        functions: &[VectorFunction],
        strategy: &S,
    ) -> Result<FlowResult, MvfError> {
        let objective =
            PinObjective::new(functions, &self.config.script, &self.lib, &self.config.map);
        let SearchOutcome {
            best_genome,
            history,
            evaluations,
            ..
        } = strategy.search(&objective);
        self.complete(
            functions,
            best_genome,
            history,
            evaluations,
            objective.failed_evaluations(),
        )
    }

    /// Runs the equal-budget random baseline: `n_evals` random pin
    /// assignments evaluated with the same fitness as the search, using
    /// the strategy's worker thread-count.
    pub fn random_baseline(
        &self,
        functions: &[VectorFunction],
        n_evals: usize,
        seed: u64,
    ) -> RandomBaseline {
        let objective =
            PinObjective::new(functions, &self.config.script, &self.lib, &self.config.map);
        let rs =
            mvf_ga::random_search_objective(n_evals, seed, self.strategy.threads(), &objective);
        RandomBaseline {
            avg_area_ge: rs.avg_fitness,
            best_area_ge: rs.best_fitness,
            best_assignment: rs.best_genome,
            samples: rs.samples,
            failed_evaluations: objective.failed_evaluations(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{random_assignment, EvalContext};
    use mvf_sboxes::optimal_sboxes;

    fn tiny_flow() -> Flow<Ga> {
        Flow::builder()
            .ga(GaConfig {
                population: 6,
                generations: 2,
                seed: 7,
                ..GaConfig::default()
            })
            .build()
    }

    #[test]
    fn fitness_is_finite_and_positive() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let flow = Flow::builder().build();
        let a = PinAssignment::identity(&funcs);
        let area = EvalContext::new()
            .synthesized_area_ge(
                &funcs,
                &a,
                &flow.config().script,
                flow.library(),
                &flow.config().map,
            )
            .expect("fitness");
        assert!(area.is_finite() && area > 0.0, "area = {area}");
    }

    #[test]
    fn small_flow_end_to_end() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let flow = tiny_flow();
        let result = flow.run(&funcs).expect("flow succeeds");
        assert!(result.mapped_area_ge > 0.0);
        assert!(
            result.mapped_area_ge <= result.synthesized_area_ge,
            "TM must not grow area: {} vs {}",
            result.mapped_area_ge,
            result.synthesized_area_ge
        );
        assert_eq!(result.ga_history.len(), 3);
        assert_eq!(result.failed_evaluations, 0);
        // The mapped netlist has no select inputs.
        assert_eq!(result.mapped.netlist.inputs().len(), 4);
    }

    #[test]
    fn baseline_matches_sample_statistics() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let flow = Flow::builder().build();
        let base = flow.random_baseline(&funcs, 5, 3);
        assert_eq!(base.samples.len(), 5);
        assert_eq!(base.failed_evaluations, 0);
        let min = base.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((base.best_area_ge - min).abs() < 1e-9);
        assert!(base.best_area_ge <= base.avg_area_ge);
    }

    #[test]
    fn builder_accepts_custom_libraries_and_options() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let flow = Flow::builder()
            .library(lib)
            .camo_library(camo)
            .script(Script::fast())
            .map(MapOptions::default())
            .camo_map(CamoMapOptions::default())
            .validate(false)
            .workload_threads(1)
            .build();
        assert!(!flow.config().validate);
        let funcs = optimal_sboxes()[..2].to_vec();
        let a = PinAssignment::identity(&funcs);
        let result = flow
            .finish(&funcs, a, Vec::new(), 0)
            .expect("finish succeeds");
        assert!(result.mapped_area_ge > 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_flow_new_matches_builder() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let mut config = FlowConfig::default();
        config.ga.population = 6;
        config.ga.generations = 1;
        config.ga.seed = 0xD0;
        let old = Flow::new(config.clone()).run(&funcs).expect("shim runs");
        let new = Flow::builder()
            .config(config)
            .build()
            .run(&funcs)
            .expect("builder runs");
        assert_eq!(old.assignment, new.assignment);
        assert_eq!(
            old.synthesized_area_ge.to_bits(),
            new.synthesized_area_ge.to_bits()
        );
        assert_eq!(old.mapped_area_ge.to_bits(), new.mapped_area_ge.to_bits());
    }

    #[test]
    fn run_seeded_overrides_the_strategy_seed() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let flow = tiny_flow();
        let a = flow.run_seeded(&funcs, 0xFEED).expect("flow succeeds");
        let b = flow.run_seeded(&funcs, 0xFEED).expect("flow succeeds");
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(
            a.synthesized_area_ge.to_bits(),
            b.synthesized_area_ge.to_bits()
        );
    }

    #[test]
    fn hill_climb_strategy_runs_the_flow() {
        use mvf_ga::HillClimb;
        let funcs = optimal_sboxes()[..2].to_vec();
        let flow = FlowBuilder::new().build_with(HillClimb {
            restarts: 1,
            steps: 2,
            batch: 4,
            seed: 2,
            threads: 0,
        });
        let result = flow.run(&funcs).expect("flow succeeds");
        assert_eq!(result.evaluations, flow.strategy().evaluation_budget());
        assert_eq!(result.failed_evaluations, 0);
        assert!(result.mapped_area_ge > 0.0);
    }

    #[test]
    fn locking_flow_end_to_end() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let flow = Flow::builder()
            .ga(GaConfig {
                population: 4,
                generations: 1,
                seed: 9,
                ..GaConfig::default()
            })
            .scheme(SchemeKind::Locking)
            .build();
        assert_eq!(flow.scheme(), SchemeKind::Locking);
        assert_eq!(flow.obfuscation_space().kind(), SchemeKind::Locking);
        // validate defaults to true: `run` exhaustively checks every
        // select key realizes its viable function before returning.
        let result = flow.run(&funcs).expect("locking flow succeeds");
        let locked = result
            .locked
            .as_ref()
            .expect("locking flow carries the key");
        assert_eq!(locked.n_selects, 1, "two functions need one select bit");
        assert_eq!(
            locked.key_bits(),
            1 + flow.lock_options().n_xor + flow.lock_options().n_mux
        );
        // Same select-free interface as the camouflage path, but the
        // witness is carried by the key, not by doping choices.
        assert_eq!(result.mapped.netlist.inputs().len(), 4);
        assert!(result.mapped.witness.cells.is_empty());
        assert!(
            result.mapped_area_ge > result.synthesized_area_ge,
            "key gates add area on top of the plain mapping"
        );
    }

    #[test]
    fn random_assignments_are_valid() {
        use rand::SeedableRng;
        let funcs = optimal_sboxes()[..4].to_vec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let a = random_assignment(&funcs, &mut rng);
            build_merged(&funcs, &a).expect("valid random assignment");
        }
    }
}
