use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

use mvf_aig::Script;
use mvf_cells::{CamoLibrary, Library};
use mvf_ga::permutation::{pmx, random_permutation, swap_mutation};
use mvf_ga::{GaConfig, GenStats, GeneticAlgorithm};
use mvf_logic::VectorFunction;
use mvf_merge::{build_merged, MergedCircuit, PinAssignment};
use mvf_netlist::subject_graph;
use mvf_techmap::{map_camouflage, map_standard, CamoMapOptions, CamoMappedCircuit, MapOptions};

/// Errors from the end-to-end flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// Merged-circuit construction failed.
    Merge(mvf_merge::MergeError),
    /// Technology mapping failed.
    Map(mvf_techmap::MapError),
    /// Final validation failed — this would be a flow bug.
    Validation(mvf_sim::ValidationError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Merge(e) => write!(f, "merge: {e}"),
            FlowError::Map(e) => write!(f, "map: {e}"),
            FlowError::Validation(e) => write!(f, "validation: {e}"),
        }
    }
}

impl Error for FlowError {}

impl From<mvf_merge::MergeError> for FlowError {
    fn from(e: mvf_merge::MergeError) -> Self {
        FlowError::Merge(e)
    }
}

impl From<mvf_techmap::MapError> for FlowError {
    fn from(e: mvf_techmap::MapError) -> Self {
        FlowError::Map(e)
    }
}

impl From<mvf_sim::ValidationError> for FlowError {
    fn from(e: mvf_sim::ValidationError) -> Self {
        FlowError::Validation(e)
    }
}

/// Configuration of the three-phase flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Synthesis script (used for fitness evaluation and the final
    /// circuit alike, as in the paper's single ABC script).
    pub script: Script,
    /// Genetic-algorithm settings (Phase II).
    pub ga: GaConfig,
    /// Plain-mapping options (area fitness).
    pub map: MapOptions,
    /// Camouflage-mapping options (Phase III).
    pub camo_map: CamoMapOptions,
    /// Validate the final circuit exhaustively (ModelSim substitute).
    pub validate: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            script: Script::fast(),
            ga: GaConfig::default(),
            map: MapOptions::default(),
            camo_map: CamoMapOptions::default(),
            validate: true,
        }
    }
}

/// Output of [`Flow::run`].
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The best pin assignment found by the GA.
    pub assignment: PinAssignment,
    /// The merged circuit for that assignment (synthesized).
    pub merged: MergedCircuit,
    /// Phase-II area: GE after synthesis + standard mapping ("GA" in
    /// Table I).
    pub synthesized_area_ge: f64,
    /// The camouflage-mapped circuit ("GA+TM" in Table I).
    pub mapped: CamoMappedCircuit,
    /// Its GE area.
    pub mapped_area_ge: f64,
    /// GA statistics per generation (Fig. 4b).
    pub ga_history: Vec<GenStats>,
    /// Total fitness evaluations spent by the GA.
    pub evaluations: usize,
}

/// Random-search baseline over pin assignments (Fig. 4a / Table I
/// "Random" columns).
#[derive(Debug, Clone)]
pub struct RandomBaseline {
    /// Mean sampled area.
    pub avg_area_ge: f64,
    /// Best sampled area.
    pub best_area_ge: f64,
    /// The best assignment found.
    pub best_assignment: PinAssignment,
    /// Every sampled area (histogram data for Fig. 4a).
    pub samples: Vec<f64>,
}

/// Draws a uniformly random pin assignment for the given functions.
pub fn random_assignment(functions: &[VectorFunction], rng: &mut StdRng) -> PinAssignment {
    PinAssignment {
        input_perms: functions
            .iter()
            .map(|f| random_permutation(f.n_inputs(), rng))
            .collect(),
        output_perms: functions
            .iter()
            .map(|f| random_permutation(f.n_outputs(), rng))
            .collect(),
    }
}

/// The Phase-II fitness: merge under `assignment`, synthesize with
/// `script`, map onto the standard library and return the GE area.
///
/// # Errors
///
/// Returns a [`FlowError`] if merging or mapping fails.
pub fn synthesized_area_ge(
    functions: &[VectorFunction],
    assignment: &PinAssignment,
    script: &Script,
    lib: &Library,
    map: &MapOptions,
) -> Result<f64, FlowError> {
    let merged = build_merged(functions, assignment)?;
    let synthesized = script.run(&merged.aig);
    let subject = subject_graph::from_aig(&synthesized, lib);
    let mapped = map_standard(&subject, lib, map)?;
    Ok(mapped.area_ge(lib, None))
}

/// The end-to-end obfuscation flow (Phases I–III).
#[derive(Debug, Clone)]
pub struct Flow {
    config: FlowConfig,
    lib: Library,
    camo: CamoLibrary,
}

impl Flow {
    /// Creates a flow over the standard library and its camouflaged
    /// variants.
    pub fn new(config: FlowConfig) -> Self {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        Flow { config, lib, camo }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The standard library in use.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// The camouflaged library in use.
    pub fn camo_library(&self) -> &CamoLibrary {
        &self.camo
    }

    fn fitness(&self, functions: &[VectorFunction], a: &PinAssignment) -> f64 {
        synthesized_area_ge(
            functions,
            a,
            &self.config.script,
            &self.lib,
            &self.config.map,
        )
        .unwrap_or(f64::INFINITY)
    }

    /// Runs Phases I–III on the viable functions.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] on merge/map failure, or a validation error
    /// if the mapped circuit cannot realize every viable function (which
    /// would indicate a bug, and is checked exhaustively when
    /// `config.validate` is set).
    pub fn run(&self, functions: &[VectorFunction]) -> Result<FlowResult, FlowError> {
        // Phase II: GA over pin assignments (Phase I runs inside the
        // fitness function on every evaluation).
        let engine = GeneticAlgorithm::new(self.config.ga.clone());
        let ga = engine.run(
            |rng| random_assignment(functions, rng),
            mutate_assignment,
            crossover_assignment,
            |g| self.fitness(functions, g),
        );
        self.finish(functions, ga.best_genome, ga.history, ga.evaluations)
    }

    /// Completes the flow for a fixed assignment (used for baselines and
    /// for [`Flow::run`]).
    ///
    /// # Errors
    ///
    /// Same as [`Flow::run`].
    pub fn finish(
        &self,
        functions: &[VectorFunction],
        assignment: PinAssignment,
        ga_history: Vec<GenStats>,
        evaluations: usize,
    ) -> Result<FlowResult, FlowError> {
        let mut merged = build_merged(functions, &assignment)?;
        merged.aig = self.config.script.run(&merged.aig);
        let subject = subject_graph::from_aig(&merged.aig, &self.lib);
        let plain = map_standard(&subject, &self.lib, &self.config.map)?;
        let synthesized_area = plain.area_ge(&self.lib, None);
        let mapped = map_camouflage(
            &subject,
            &self.lib,
            &self.camo,
            &merged.select_indices,
            &self.config.camo_map,
        )?;
        let mapped_area = mapped.netlist.area_ge(&self.lib, Some(&self.camo));
        if self.config.validate {
            mvf_sim::validate_mapped(&mapped, &self.lib, &self.camo, &merged.functions)?;
        }
        Ok(FlowResult {
            assignment,
            merged,
            synthesized_area_ge: synthesized_area,
            mapped,
            mapped_area_ge: mapped_area,
            ga_history,
            evaluations,
        })
    }

    /// Runs the equal-budget random baseline: `n_evals` random pin
    /// assignments evaluated with the same fitness as the GA, honoring
    /// the configured `ga.threads`.
    pub fn random_baseline(
        &self,
        functions: &[VectorFunction],
        n_evals: usize,
        seed: u64,
    ) -> RandomBaseline {
        let rs = mvf_ga::random_search_with_threads(
            n_evals,
            seed,
            self.config.ga.threads,
            |rng| random_assignment(functions, rng),
            |g| self.fitness(functions, g),
        );
        RandomBaseline {
            avg_area_ge: rs.avg_fitness,
            best_area_ge: rs.best_fitness,
            best_assignment: rs.best_genome,
            samples: rs.samples,
        }
    }
}

/// Mutation: swap two pins in one random permutation of the genotype.
fn mutate_assignment(g: &mut PinAssignment, rng: &mut StdRng) {
    let n = g.input_perms.len();
    // Function 0's pins can stay fixed (a global relabeling is free), but
    // keeping all functions mutable matches the paper's genotype.
    let j = rng.gen_range(0..n);
    if rng.gen_bool(0.5) {
        swap_mutation(&mut g.input_perms[j], rng);
    } else {
        swap_mutation(&mut g.output_perms[j], rng);
    }
}

/// Crossover: per-function PMX on input and output permutations.
fn crossover_assignment(a: &PinAssignment, b: &PinAssignment, rng: &mut StdRng) -> PinAssignment {
    let input_perms = a
        .input_perms
        .iter()
        .zip(&b.input_perms)
        .map(|(x, y)| {
            if rng.gen_bool(0.5) {
                pmx(x, y, rng)
            } else {
                x.clone()
            }
        })
        .collect();
    let output_perms = a
        .output_perms
        .iter()
        .zip(&b.output_perms)
        .map(|(x, y)| {
            if rng.gen_bool(0.5) {
                pmx(x, y, rng)
            } else {
                x.clone()
            }
        })
        .collect();
    PinAssignment {
        input_perms,
        output_perms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_sboxes::optimal_sboxes;
    use rand::SeedableRng;

    #[test]
    fn fitness_is_finite_and_positive() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let flow = Flow::new(FlowConfig::default());
        let a = PinAssignment::identity(&funcs);
        let area = flow.fitness(&funcs, &a);
        assert!(area.is_finite() && area > 0.0, "area = {area}");
    }

    #[test]
    fn mutation_and_crossover_keep_assignments_valid() {
        let funcs = optimal_sboxes()[..4].to_vec();
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = random_assignment(&funcs, &mut rng);
        let b = random_assignment(&funcs, &mut rng);
        for _ in 0..50 {
            mutate_assignment(&mut a, &mut rng);
            let c = crossover_assignment(&a, &b, &mut rng);
            // Validity is enforced by build_merged; it must not error.
            build_merged(&funcs, &c).expect("valid child");
        }
        build_merged(&funcs, &a).expect("valid mutant");
    }

    #[test]
    fn small_flow_end_to_end() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let mut config = FlowConfig::default();
        config.ga.population = 6;
        config.ga.generations = 2;
        config.ga.seed = 7;
        let flow = Flow::new(config);
        let result = flow.run(&funcs).expect("flow succeeds");
        assert!(result.mapped_area_ge > 0.0);
        assert!(
            result.mapped_area_ge <= result.synthesized_area_ge,
            "TM must not grow area: {} vs {}",
            result.mapped_area_ge,
            result.synthesized_area_ge
        );
        assert_eq!(result.ga_history.len(), 3);
        // The mapped netlist has no select inputs.
        assert_eq!(result.mapped.netlist.inputs().len(), 4);
    }

    #[test]
    fn baseline_matches_sample_statistics() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let flow = Flow::new(FlowConfig::default());
        let base = flow.random_baseline(&funcs, 5, 3);
        assert_eq!(base.samples.len(), 5);
        let min = base.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((base.best_area_ge - min).abs() < 1e-9);
        assert!(base.best_area_ge <= base.avg_area_ge);
    }
}
