//! The unified error type of the flow API.

use std::error::Error;
use std::fmt;

/// The single error type of the `mvf` crate, consolidating every failure
/// the three-phase flow can surface: merged-circuit construction
/// ([`mvf_merge::MergeError`]), technology mapping
/// ([`mvf_techmap::MapError`]), key-gate insertion
/// ([`mvf_obfuscate::LockError`], locking flows only) and final
/// exhaustive validation ([`mvf_sim::ValidationError`]).
///
/// All variants are values the lower layers produced; `MvfError`
/// implements [`Error::source`] so callers can walk to the original
/// cause.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MvfError {
    /// Merged-circuit construction failed (Phase I).
    Merge(mvf_merge::MergeError),
    /// Technology mapping failed (Phase II fitness or Phase III).
    Map(mvf_techmap::MapError),
    /// Key-gate insertion failed (Phase III of a locking flow).
    Lock(mvf_obfuscate::LockError),
    /// Final validation failed — this would be a flow bug.
    Validation(mvf_sim::ValidationError),
}

impl fmt::Display for MvfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvfError::Merge(e) => write!(f, "merge: {e}"),
            MvfError::Map(e) => write!(f, "map: {e}"),
            MvfError::Lock(e) => write!(f, "lock: {e}"),
            MvfError::Validation(e) => write!(f, "validation: {e}"),
        }
    }
}

impl Error for MvfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MvfError::Merge(e) => Some(e),
            MvfError::Map(e) => Some(e),
            MvfError::Lock(e) => Some(e),
            MvfError::Validation(e) => Some(e),
        }
    }
}

impl From<mvf_merge::MergeError> for MvfError {
    fn from(e: mvf_merge::MergeError) -> Self {
        MvfError::Merge(e)
    }
}

impl From<mvf_techmap::MapError> for MvfError {
    fn from(e: mvf_techmap::MapError) -> Self {
        MvfError::Map(e)
    }
}

impl From<mvf_obfuscate::LockError> for MvfError {
    fn from(e: mvf_obfuscate::LockError) -> Self {
        MvfError::Lock(e)
    }
}

impl From<mvf_sim::ValidationError> for MvfError {
    fn from(e: mvf_sim::ValidationError) -> Self {
        MvfError::Validation(e)
    }
}

/// The pre-0.2 name of [`MvfError`].
#[deprecated(since = "0.2.0", note = "renamed to `MvfError`")]
pub type FlowError = MvfError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_cover_all_variants() {
        let merge: MvfError = mvf_merge::MergeError::NoFunctions.into();
        assert!(merge.to_string().starts_with("merge:"));
        assert!(merge.source().is_some());

        let map: MvfError = mvf_techmap::MapError::BadSubject("x".into()).into();
        assert!(map.to_string().starts_with("map:"));
        assert!(map.source().is_some());

        let lock: MvfError = mvf_obfuscate::LockError::MissingKeyCell("XKEY").into();
        assert!(lock.to_string().starts_with("lock:"));
        assert!(lock.source().is_some());

        let val: MvfError = mvf_sim::ValidationError::ShapeMismatch("y".into()).into();
        assert!(val.to_string().starts_with("validation:"));
        assert!(val.source().is_some());
    }
}
