//! Batched multi-workload runs.
//!
//! The paper evaluates its flow on a table of S-box workloads (Table I);
//! the production goal is to serve many such workloads fast. A
//! [`Workload`] names one obfuscation job — a set of viable functions
//! plus an optional seed — and [`Flow::run_many`] executes a batch of
//! them across the worker thread pool, each with a deterministic
//! per-workload seed, returning one [`WorkloadReport`] per entry in
//! input order.
//!
//! Batch runs are reproducible by construction: the per-workload seed is
//! either the workload's own or derived from the strategy seed and the
//! workload's batch index, and the underlying searches are bit-identical
//! for every thread count. So `run_many(&ws)[i]` equals
//! `flow.run_seeded(&ws[i].functions, reports[i].seed)` exactly.

use std::fmt;

use mvf_ga::{resolve_threads, SearchStrategy};
use mvf_logic::{IoInterpretation, VectorFunction};

use crate::error::MvfError;
use crate::flow::{Flow, FlowResult};

/// One obfuscation job for [`Flow::run_many`].
#[derive(Debug, Clone)]
pub struct Workload {
    /// A label carried into the report ("PRESENT x4", "DES x2", …).
    pub name: String,
    /// The viable functions to merge and camouflage.
    pub functions: Vec<VectorFunction>,
    /// Optional seed override; when `None`, a deterministic seed is
    /// derived from the strategy seed and the workload's batch index.
    pub seed: Option<u64>,
}

impl Workload {
    /// A workload with a derived seed.
    pub fn new(name: impl Into<String>, functions: Vec<VectorFunction>) -> Self {
        Workload {
            name: name.into(),
            functions,
            seed: None,
        }
    }

    /// Pins this workload's search seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The seed this workload uses at batch position `index` under a
    /// strategy seeded `strategy_seed` — the workload's own override, or
    /// the same derivation [`Flow::run_many`] applies. Exposed so
    /// external drivers (checkpointed audit jobs) reproduce batch
    /// reports exactly.
    pub fn resolve_seed(&self, strategy_seed: u64, index: u64) -> u64 {
        self.seed
            .unwrap_or_else(|| derive_seed(strategy_seed, index))
    }
}

/// One viable function's red-team verdict from the SAT adversary, as
/// attached to [`WorkloadReport::plausibility`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlausibilityVerdict {
    /// Plausible under the **identity** pin interpretation (the
    /// adversary reads each wire as the logical pin it was mapped to).
    /// A correct flow yields `true` for every viable function.
    pub identity: bool,
    /// Plausible under **some** input/output pin interpretation — the
    /// paper's full adversary: every pin permutation, plus every
    /// polarity flip when the flow was built with
    /// [`FlowBuilder::attack_npn`](crate::FlowBuilder::attack_npn).
    /// Present when the flow was built with
    /// [`FlowBuilder::attack_interpretation_freedom`](crate::FlowBuilder::attack_interpretation_freedom);
    /// implied `true` whenever `identity` is `true` (the identity is one
    /// of the interpretations searched).
    pub any_io: Option<bool>,
    /// The witness interpretation behind a `true` `any_io` verdict: the
    /// orbit-minimal [`IoInterpretation`] under which the transformed
    /// function is plausible (negation masks are `0` unless the NPN
    /// orbit was searched). Deterministic for every shard count.
    pub witness: Option<IoInterpretation>,
    /// Queries the SAT-free screen settled before any solver call
    /// ([`FlowBuilder::attack_screen`](crate::FlowBuilder::attack_screen)):
    /// orbit representatives for the full adversary, `0` or `1` for the
    /// identity-only sweep. `0` when screening is off or stood down.
    pub screened: usize,
    /// SAT queries actually issued for this function's verdict.
    pub queries: usize,
}

/// The per-workload result of a [`Flow::run_many`] batch.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// The workload's label.
    pub name: String,
    /// The seed the search actually used (workload override or derived).
    pub seed: u64,
    /// The search strategy's name.
    pub strategy: &'static str,
    /// The flow result, or the error that stopped this workload. Other
    /// workloads in the batch are unaffected.
    pub outcome: Result<FlowResult, MvfError>,
    /// Red-team verdicts from the SAT adversary, present when the flow
    /// was built with
    /// [`FlowBuilder::attack_sweep`](crate::FlowBuilder::attack_sweep)
    /// and the workload succeeded: `plausibility[j]` reports viable
    /// function `j` (in its pin-permuted, mapped-circuit form) against
    /// the camouflaged netlist. A correct flow keeps every
    /// [`PlausibilityVerdict::identity`] `true`; any `false` is a red
    /// flag, and the interpretation-freedom fields tell the auditor
    /// whether *any* pin reading rescues the function.
    pub plausibility: Option<Vec<PlausibilityVerdict>>,
}

impl PlausibilityVerdict {
    /// Folds interpretation-freedom verdicts into report verdicts. The
    /// identity interpretation is orbit index 0 of the any-IO search and
    /// can never be skipped, so identity plausibility is derivable from
    /// the witness: the witness *is* the identity interpretation. This
    /// is exactly the mapping [`Flow::run_many`] applies, exposed so
    /// externally driven sweeps (checkpointed audit jobs) produce
    /// identical reports.
    pub fn from_any_io(verdicts: Vec<mvf_attack::AnyIoVerdict>) -> Vec<PlausibilityVerdict> {
        verdicts
            .into_iter()
            .map(|v| PlausibilityVerdict {
                identity: v
                    .witness
                    .as_ref()
                    .is_some_and(IoInterpretation::is_identity),
                any_io: Some(v.plausible),
                witness: v.witness,
                screened: v.screened,
                queries: v.queries,
            })
            .collect()
    }

    /// Folds identity-interpretation verdicts into report verdicts — the
    /// [`Flow::run_many`] mapping for flows without interpretation
    /// freedom.
    pub fn from_identity(verdicts: &[mvf_attack::SweepVerdict]) -> Vec<PlausibilityVerdict> {
        verdicts
            .iter()
            .map(|v| PlausibilityVerdict {
                identity: v.plausible,
                any_io: None,
                witness: None,
                screened: usize::from(v.screened),
                queries: usize::from(!v.screened),
            })
            .collect()
    }
}

impl WorkloadReport {
    /// The successful result, if any.
    pub fn result(&self) -> Option<&FlowResult> {
        self.outcome.as_ref().ok()
    }
}

impl fmt::Display for WorkloadReport {
    /// One stable summary line per report:
    /// `name [strategy, seed 0x…]: ok, area A GE, evals E, plausible
    /// k/n, any-io k/n, screened S, queries Q` (the plausibility tail
    /// appears only when a sweep ran, the any-io field only under
    /// interpretation freedom), or `name [strategy, seed 0x…]: error: …`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}, seed {:#018x}]: ",
            self.name, self.strategy, self.seed
        )?;
        match &self.outcome {
            Err(e) => write!(f, "error: {e}"),
            Ok(r) => {
                write!(
                    f,
                    "ok, area {:.1} GE, evals {}",
                    r.mapped_area_ge, r.evaluations
                )?;
                if let Some(vs) = &self.plausibility {
                    let identity = vs.iter().filter(|v| v.identity).count();
                    write!(f, ", plausible {identity}/{}", vs.len())?;
                    if vs.iter().any(|v| v.any_io.is_some()) {
                        let any = vs.iter().filter(|v| v.any_io == Some(true)).count();
                        write!(f, ", any-io {any}/{}", vs.len())?;
                    }
                    let screened: usize = vs.iter().map(|v| v.screened).sum();
                    let queries: usize = vs.iter().map(|v| v.queries).sum();
                    write!(f, ", screened {screened}, queries {queries}")?;
                }
                Ok(())
            }
        }
    }
}

/// SplitMix64: derives decorrelated per-workload seeds from the strategy
/// seed and the batch index.
fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<S: SearchStrategy> Flow<S> {
    /// Runs a batch of workloads, each through the full three-phase flow
    /// with its own deterministic seed, and returns one report per
    /// workload in input order.
    ///
    /// With the `parallel` feature, workloads are distributed across the
    /// worker thread pool ([`FlowBuilder::workload_threads`](crate::FlowBuilder::workload_threads),
    /// `MVF_THREADS`, or all cores, in that order) and each workload's
    /// inner search runs serially; a batch of one falls back to
    /// parallelism *inside* the search. Either way the reports are
    /// bit-identical to running every workload serially.
    pub fn run_many(&self, workloads: &[Workload]) -> Vec<WorkloadReport> {
        let seeds: Vec<u64> = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| {
                w.seed
                    .unwrap_or_else(|| derive_seed(self.strategy.seed(), i as u64))
            })
            .collect();

        #[cfg(feature = "parallel")]
        {
            let total = resolve_threads(self.workload_threads);
            let pool = total.min(workloads.len());
            if pool > 1 {
                // Striped assignment (worker w takes indices w, w+pool, …)
                // so heavy workloads spread across workers instead of
                // clustering in one contiguous chunk; each worker's inner
                // searches split the remaining cores so small batches
                // still use the whole machine without oversubscribing it.
                // Reports are re-stitched by index, so ordering (and the
                // per-index seeds) are unaffected — and searches are
                // bit-identical for every thread count.
                let inner = (total / pool).max(1);
                let mut reports: Vec<Option<WorkloadReport>> =
                    (0..workloads.len()).map(|_| None).collect();
                std::thread::scope(|scope| {
                    let seeds = &seeds;
                    let handles: Vec<_> = (0..pool)
                        .map(|w| {
                            scope.spawn(move || {
                                workloads
                                    .iter()
                                    .enumerate()
                                    .skip(w)
                                    .step_by(pool)
                                    .map(|(i, wl)| (i, self.run_workload(wl, seeds[i], inner)))
                                    .collect::<Vec<(usize, WorkloadReport)>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        for (i, r) in h.join().expect("workload worker panicked") {
                            reports[i] = Some(r);
                        }
                    }
                });
                return reports
                    .into_iter()
                    .map(|r| r.expect("every workload index is assigned to one worker"))
                    .collect();
            }
        }
        #[cfg(not(feature = "parallel"))]
        let _ = resolve_threads(self.workload_threads);

        workloads
            .iter()
            .zip(&seeds)
            .map(|(w, &seed)| self.run_workload(w, seed, self.strategy.threads()))
            .collect()
    }

    fn run_workload(&self, workload: &Workload, seed: u64, threads: usize) -> WorkloadReport {
        let strategy = self.strategy.reconfigured(seed, threads);
        let outcome = self.run_with_strategy(&workload.functions, &strategy);
        let plausibility = match &outcome {
            Ok(result) if self.attack_sweep => {
                // The sweep shards over the same thread share the
                // workload's inner search uses, unless the builder pinned
                // an explicit shard count. Verdicts are bit-identical to
                // the serial sweep either way.
                let shards = if self.attack_shards > 0 {
                    self.attack_shards
                } else {
                    resolve_threads(threads)
                };
                // The sweep runs through the flow's obfuscation space, so
                // camouflage and locking workloads take the identical
                // scheme-blind path.
                let space = self.obfuscation_space();
                if self.attack_interpretation_freedom {
                    // One sweep (one encoding) answers both the any-IO
                    // and the identity question — see
                    // [`PlausibilityVerdict::from_any_io`].
                    let any_io = mvf_attack::plausibility_sweep_any_io_in(
                        &space,
                        &result.mapped.netlist,
                        &result.merged.functions,
                        &mvf_attack::AnyIoOptions {
                            shards,
                            npn: self.attack_npn,
                            class_share: self.attack_class_share,
                            screen: self.attack_screen,
                            inprocess: self.attack_inprocess,
                            ..mvf_attack::AnyIoOptions::default()
                        },
                    );
                    Some(PlausibilityVerdict::from_any_io(any_io))
                } else {
                    let identity = mvf_attack::plausibility_sweep_in(
                        &space,
                        &result.mapped.netlist,
                        &result.merged.functions,
                        &mvf_attack::SweepOptions {
                            shards,
                            screen: self.attack_screen,
                            inprocess: self.attack_inprocess,
                            ..mvf_attack::SweepOptions::default()
                        },
                    );
                    Some(PlausibilityVerdict::from_identity(&identity))
                }
            }
            _ => None,
        };
        WorkloadReport {
            name: workload.name.clone(),
            seed,
            strategy: strategy.name(),
            outcome,
            plausibility,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_decorrelated_and_stable() {
        let a = derive_seed(0xC0FFEE, 0);
        let b = derive_seed(0xC0FFEE, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed(0xC0FFEE, 0), "derivation is pure");
        assert_ne!(a, derive_seed(0xC0FFEF, 0), "base seed matters");
    }

    #[test]
    fn workload_builder_carries_seed() {
        let w = Workload::new("empty", Vec::new()).with_seed(42);
        assert_eq!(w.seed, Some(42));
        assert_eq!(w.name, "empty");
    }

    #[test]
    fn resolve_seed_matches_run_many_derivation() {
        let w = Workload::new("w", Vec::new());
        assert_eq!(w.resolve_seed(0xC0FFEE, 3), derive_seed(0xC0FFEE, 3));
        let pinned = w.with_seed(7);
        assert_eq!(pinned.resolve_seed(0xC0FFEE, 3), 7);
    }

    #[test]
    fn report_display_is_a_stable_one_liner() {
        let report = WorkloadReport {
            name: "PRESENT x2".into(),
            seed: 0xA77,
            strategy: "ga",
            outcome: Err(MvfError::Merge(mvf_merge::MergeError::NoFunctions)),
            plausibility: None,
        };
        let line = report.to_string();
        assert!(
            line.starts_with("PRESENT x2 [ga, seed 0x0000000000000a77]: error:"),
            "{line}"
        );
        assert!(!line.contains('\n'), "summary must be one line: {line}");
    }

    #[test]
    fn empty_function_list_reports_an_error_not_a_panic() {
        let flow = Flow::builder().workload_threads(1).build();
        let reports = flow.run_many(&[Workload::new("empty", Vec::new())]);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].outcome.is_err());
        assert!(reports[0].result().is_none());
        assert!(reports[0].plausibility.is_none());
    }

    #[test]
    fn attack_sweep_attaches_all_true_verdicts() {
        use mvf_ga::GaConfig;
        let funcs = mvf_sboxes::optimal_sboxes()[..2].to_vec();
        let ga = GaConfig {
            population: 4,
            generations: 1,
            seed: 0xA77,
            ..GaConfig::default()
        };
        let flow = Flow::builder()
            .ga(ga.clone())
            .validate(false)
            .workload_threads(1)
            .attack_sweep(true)
            .attack_shards(2)
            .build();
        let reports = flow.run_many(&[Workload::new("PRESENT x2", funcs.clone())]);
        let verdicts = reports[0].plausibility.as_ref().expect("sweep attached");
        assert_eq!(verdicts.len(), funcs.len());
        assert!(
            verdicts.iter().all(|v| v.identity),
            "every viable function must stay plausible: {verdicts:?}"
        );
        // Interpretation freedom is opt-in; the plain sweep leaves the
        // any-IO fields empty.
        assert!(verdicts.iter().all(|v| v.any_io.is_none()));
        assert!(verdicts.iter().all(|v| v.witness.is_none()));
        // The red-team pass is opt-in: off by default.
        let flow = Flow::builder()
            .ga(ga)
            .validate(false)
            .workload_threads(1)
            .build();
        let reports = flow.run_many(&[Workload::new("PRESENT x2", funcs)]);
        assert!(reports[0].outcome.is_ok());
        assert!(reports[0].plausibility.is_none());
    }

    #[test]
    fn interpretation_freedom_attaches_any_io_verdicts() {
        use mvf_ga::GaConfig;
        let funcs = mvf_sboxes::optimal_sboxes()[..2].to_vec();
        let flow = Flow::builder()
            .ga(GaConfig {
                population: 4,
                generations: 1,
                seed: 0xA78,
                ..GaConfig::default()
            })
            .validate(false)
            .workload_threads(1)
            .attack_sweep(true)
            .attack_shards(2)
            .attack_interpretation_freedom(true)
            .build();
        let reports = flow.run_many(&[Workload::new("PRESENT x2", funcs.clone())]);
        let verdicts = reports[0].plausibility.as_ref().expect("sweep attached");
        assert_eq!(verdicts.len(), funcs.len());
        for v in verdicts {
            assert!(v.identity, "designed circuits keep identity plausibility");
            // Identity plausibility implies any-IO plausibility, and the
            // reported witness must then be the identity interpretation
            // (orbit index 0).
            assert_eq!(v.any_io, Some(true));
            let w = v.witness.as_ref().expect("witness for plausible");
            assert!(w.is_identity(), "witness must be the identity: {w:?}");
            assert_eq!(w.in_perm.as_slice(), &[0, 1, 2, 3]);
            assert_eq!(w.out_perm.as_slice(), &[0, 1, 2, 3]);
        }
    }
}
