//! Evaluation-report structures: Table I rows and Fig. 4 series.

use std::fmt;

use mvf_ga::GenStats;

/// One row of the paper's Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Workload family ("PRESENT" or "DES").
    pub circuit: String,
    /// Number of merged S-boxes.
    pub n_sboxes: usize,
    /// Mean area over random pin assignments (GE).
    pub random_avg: f64,
    /// Best random-assignment area (GE).
    pub random_best: f64,
    /// Best GA area (GE), before technology mapping.
    pub ga: f64,
    /// GA followed by camouflage technology mapping (GE).
    pub ga_tm: f64,
}

impl Table1Row {
    /// Improvement of GA+TM over the best random assignment, in percent
    /// (the paper's final column).
    pub fn improvement_pct(&self) -> f64 {
        if self.random_best <= 0.0 {
            return 0.0;
        }
        (1.0 - self.ga_tm / self.random_best) * 100.0
    }
}

/// The full Table I.
#[derive(Debug, Clone, Default)]
pub struct Table1 {
    /// Rows in presentation order.
    pub rows: Vec<Table1Row>,
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE I: Area comparison for merged S-box circuits (GE)")?;
        writeln!(
            f,
            "{:<8} {:>8} {:>12} {:>12} {:>8} {:>8} {:>14}",
            "Circuit", "#S-boxes", "Random avg", "Random best", "GA", "GA+TM", "Improvement(%)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>8} {:>12.0} {:>12.0} {:>8.0} {:>8.0} {:>14.0}",
                r.circuit,
                r.n_sboxes,
                r.random_avg,
                r.random_best,
                r.ga,
                r.ga_tm,
                r.improvement_pct()
            )?;
        }
        Ok(())
    }
}

/// The data behind Fig. 4: the random-assignment area distribution (4a)
/// and the GA best-so-far trajectory against the random baselines (4b).
#[derive(Debug, Clone)]
pub struct Fig4Data {
    /// Every random-sample area (Fig. 4a histogram input).
    pub random_samples: Vec<f64>,
    /// Mean random area (horizontal line in Fig. 4b).
    pub random_avg: f64,
    /// Best random area (horizontal line in Fig. 4b).
    pub random_best: f64,
    /// Per-generation GA statistics (Fig. 4b curve).
    pub ga_history: Vec<GenStats>,
}

impl Fig4Data {
    /// Histogram of the random samples with the given bin width (GE).
    ///
    /// Returns `(bin_start, count)` pairs covering the sample range.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width <= 0` or no samples are present.
    pub fn histogram(&self, bin_width: f64) -> Vec<(f64, usize)> {
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(!self.random_samples.is_empty(), "no samples");
        let min = self
            .random_samples
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .random_samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let first_bin = (min / bin_width).floor() * bin_width;
        let n_bins = (((max - first_bin) / bin_width).floor() as usize) + 1;
        let mut bins = vec![0usize; n_bins];
        for &s in &self.random_samples {
            let i = ((s - first_bin) / bin_width).floor() as usize;
            bins[i.min(n_bins - 1)] += 1;
        }
        bins.into_iter()
            .enumerate()
            .map(|(i, c)| (first_bin + i as f64 * bin_width, c))
            .collect()
    }
}

impl fmt::Display for Fig4Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 4a: area distribution of random pin assignments")?;
        for (bin, count) in self.histogram(5.0) {
            writeln!(
                f,
                "  [{:>6.0} GE] {:>4} {}",
                bin,
                count,
                "#".repeat(count.min(60))
            )?;
        }
        writeln!(
            f,
            "Fig. 4b: GA vs random (avg. random = {:.1} GE, best random = {:.1} GE)",
            self.random_avg, self.random_best
        )?;
        for (g, s) in self.ga_history.iter().enumerate() {
            writeln!(
                f,
                "  gen {:>3}: best-so-far {:>7.1}  gen-best {:>7.1}  gen-avg {:>7.1}",
                g, s.best_so_far, s.best, s.avg
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_formula() {
        let row = Table1Row {
            circuit: "PRESENT".into(),
            n_sboxes: 8,
            random_avg: 205.0,
            random_best: 164.0,
            ga: 118.0,
            ga_tm: 101.0,
        };
        // (1 - 101/164) * 100 ≈ 38.4 — the paper rounds to 38.
        assert!((row.improvement_pct() - 38.4).abs() < 0.1);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = Table1 {
            rows: vec![Table1Row {
                circuit: "DES".into(),
                n_sboxes: 8,
                random_avg: 923.0,
                random_best: 805.0,
                ga: 473.0,
                ga_tm: 416.0,
            }],
        };
        let s = t.to_string();
        assert!(s.contains("DES"));
        assert!(s.contains("Improvement"));
    }

    #[test]
    fn histogram_covers_all_samples() {
        let d = Fig4Data {
            random_samples: vec![10.0, 12.0, 17.0, 30.0, 30.1],
            random_avg: 19.8,
            random_best: 10.0,
            ga_history: vec![],
        };
        let h = d.histogram(5.0);
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        assert!(h.first().expect("bins").0 <= 10.0);
    }

    #[test]
    fn zero_guard_on_improvement() {
        let row = Table1Row {
            circuit: "X".into(),
            n_sboxes: 1,
            random_avg: 0.0,
            random_best: 0.0,
            ga: 0.0,
            ga_tm: 0.0,
        };
        assert_eq!(row.improvement_pct(), 0.0);
    }
}
