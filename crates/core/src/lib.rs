//! **MVF** — design automation for obfuscated circuits with multiple
//! viable functions.
//!
//! A from-scratch Rust reproduction of Keshavarz, Paar and Holcomb,
//! *"Design Automation for Obfuscated Circuits with Multiple Viable
//! Functions"* (DATE 2017). Given a set of viable functions the adversary
//! already suspects, the flow produces a camouflaged circuit in which
//! **every** viable function remains plausible, at minimum area:
//!
//! 1. **Phase I** ([`mvf_merge`]): merge all viable functions into one
//!    circuit behind select-driven output multiplexers and synthesize it
//!    ([`mvf_aig`]'s `rewrite/refactor/balance` script).
//! 2. **Phase II** ([`mvf_ga`]): optimize each function's input/output pin
//!    assignment with a pluggable [`SearchStrategy`] — the paper's genetic
//!    algorithm ([`mvf_ga::Ga`]), random search or hill climbing — whose
//!    fitness is the mapped gate-equivalent area, evaluated through
//!    reusable per-worker [`EvalContext`]s.
//! 3. **Phase III** ([`mvf_techmap::map_camouflage`]): tree-cover the
//!    synthesized circuit with camouflaged cells so the select inputs are
//!    eliminated while all viable functions stay plausible, then validate
//!    exhaustively ([`mvf_sim`]).
//!
//! # Quickstart
//!
//! Flows are assembled with [`Flow::builder`]; libraries, script, mapper
//! options and the search strategy are all pluggable:
//!
//! ```
//! use mvf::Flow;
//! use mvf_ga::GaConfig;
//! use mvf_sboxes::optimal_sboxes;
//!
//! let functions = optimal_sboxes()[..2].to_vec();
//! let flow = Flow::builder()
//!     .ga(GaConfig { population: 8, generations: 3, ..GaConfig::default() })
//!     .build();
//! let result = flow.run(&functions)?;
//! assert!(result.mapped_area_ge > 0.0);
//! assert!(result.mapped_area_ge <= result.synthesized_area_ge);
//! assert_eq!(result.failed_evaluations, 0);
//! # Ok::<(), mvf::MvfError>(())
//! ```
//!
//! # Batched workloads
//!
//! A fleet of obfuscation jobs runs as one batch with deterministic
//! per-workload seeds:
//!
//! ```
//! use mvf::{Flow, Workload};
//! use mvf_ga::GaConfig;
//! use mvf_sboxes::optimal_sboxes;
//!
//! let flow = Flow::builder()
//!     .ga(GaConfig { population: 4, generations: 1, ..GaConfig::default() })
//!     .validate(false)
//!     .build();
//! let sboxes = optimal_sboxes();
//! let workloads: Vec<Workload> = (0..2)
//!     .map(|i| Workload::new(format!("pair-{i}"), sboxes[2 * i..2 * i + 2].to_vec()))
//!     .collect();
//! let reports = flow.run_many(&workloads);
//! assert!(reports.iter().all(|r| r.outcome.is_ok()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod flow;
mod report;
mod workload;

#[allow(deprecated)]
pub use error::FlowError;
pub use error::MvfError;
pub use eval::{random_assignment, synthesized_area_ge, EvalContext, PinObjective};
pub use flow::{Flow, FlowBuilder, FlowConfig, FlowResult, RandomBaseline};
pub use report::{Fig4Data, Table1, Table1Row};
pub use workload::{PlausibilityVerdict, Workload, WorkloadReport};

// The strategy vocabulary is part of the flow API surface.
pub use mvf_ga::{Ga, HillClimb, Objective, RandomSearch, SearchOutcome, SearchStrategy};

// The obfuscation-scheme vocabulary likewise: which family a flow emits,
// how a locking flow is keyed, and the seam the attack layer consumes.
pub use mvf_obfuscate::{
    lock_library, LockError, LockGate, LockOptions, LockSite, LockedNetlist, ObfuscationSpace,
    SchemeKind,
};

// Re-export the workspace layers under one roof for downstream users.
pub use mvf_aig as aig;
pub use mvf_cells as cells;
pub use mvf_ga as ga;
pub use mvf_logic as logic;
pub use mvf_merge as merge;
pub use mvf_netlist as netlist;
pub use mvf_obfuscate as obfuscate;
pub use mvf_sboxes as sboxes;
pub use mvf_sim as sim;
pub use mvf_techmap as techmap;
