//! **MVF** — design automation for obfuscated circuits with multiple
//! viable functions.
//!
//! A from-scratch Rust reproduction of Keshavarz, Paar and Holcomb,
//! *"Design Automation for Obfuscated Circuits with Multiple Viable
//! Functions"* (DATE 2017). Given a set of viable functions the adversary
//! already suspects, the flow produces a camouflaged circuit in which
//! **every** viable function remains plausible, at minimum area:
//!
//! 1. **Phase I** ([`mvf_merge`]): merge all viable functions into one
//!    circuit behind select-driven output multiplexers and synthesize it
//!    ([`mvf_aig`]'s `rewrite/refactor/balance` script).
//! 2. **Phase II** ([`mvf_ga`]): optimize each function's input/output pin
//!    assignment with a genetic algorithm whose fitness is the mapped
//!    gate-equivalent area ([`mvf_techmap::map_standard`]).
//! 3. **Phase III** ([`mvf_techmap::map_camouflage`]): tree-cover the
//!    synthesized circuit with camouflaged cells so the select inputs are
//!    eliminated while all viable functions stay plausible, then validate
//!    exhaustively ([`mvf_sim`]).
//!
//! # Quickstart
//!
//! ```
//! use mvf::{Flow, FlowConfig};
//! use mvf_sboxes::optimal_sboxes;
//!
//! let functions = optimal_sboxes()[..2].to_vec();
//! let mut config = FlowConfig::default();
//! config.ga.population = 8;
//! config.ga.generations = 3; // keep the doc test fast
//! let result = Flow::new(config).run(&functions)?;
//! assert!(result.mapped_area_ge > 0.0);
//! assert!(result.mapped_area_ge <= result.synthesized_area_ge);
//! # Ok::<(), mvf::FlowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod report;

pub use flow::{
    random_assignment, synthesized_area_ge, Flow, FlowConfig, FlowError, FlowResult, RandomBaseline,
};
pub use report::{Fig4Data, Table1, Table1Row};

// Re-export the workspace layers under one roof for downstream users.
pub use mvf_aig as aig;
pub use mvf_cells as cells;
pub use mvf_ga as ga;
pub use mvf_logic as logic;
pub use mvf_merge as merge;
pub use mvf_netlist as netlist;
pub use mvf_sboxes as sboxes;
pub use mvf_sim as sim;
pub use mvf_techmap as techmap;
