//! Reusable fitness evaluation: the Phase-II objective and its context.
//!
//! One Phase-II fitness call is a full `merge → synthesize → tech-map`
//! pipeline. Run cold, every call reallocates synthesis caches, cut
//! buffers, subject-graph maps and matcher tables; a GA run performs
//! thousands of such calls. [`EvalContext`] owns all of that state and
//! is threaded through the [`Objective`] machinery so each worker thread
//! reuses one context across its whole batch — identical results,
//! far fewer allocations, and a synthesis-level NPN/recipe cache that
//! stays warm across evaluations.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::Rng;

use mvf_aig::{Script, SynthScratch};
use mvf_cells::{CamoLibrary, Library};
use mvf_ga::permutation::{pmx, random_permutation, swap_mutation};
use mvf_ga::Objective;
use mvf_logic::VectorFunction;
use mvf_merge::{build_merged, PinAssignment};
use mvf_netlist::subject_graph::{self, SubjectScratch};
use mvf_netlist::Netlist;
use mvf_sim::{validate_mapped_with, CamoEvalScratch};
use mvf_techmap::{
    map_camouflage_with, map_standard_with, CamoMapOptions, CamoMappedCircuit, CamoMatchScratch,
    MapOptions, MatchScratch,
};

use crate::error::MvfError;

/// Reusable evaluation state for repeated Phase-II fitness calls.
///
/// Holds the synthesis scratch (NPN-canonicalization and recipe caches,
/// cut buffers, truth-table arena), the AIG→subject-graph lowering maps
/// and the mapper's pin-permutation tables. Reuse never changes results:
/// every cached entry equals what recomputation would produce.
///
/// # Example
///
/// ```
/// use mvf::EvalContext;
/// use mvf_aig::Script;
/// use mvf_cells::Library;
/// use mvf_merge::PinAssignment;
/// use mvf_sboxes::optimal_sboxes;
/// use mvf_techmap::MapOptions;
///
/// let functions = optimal_sboxes()[..2].to_vec();
/// let lib = Library::standard();
/// let mut ctx = EvalContext::new();
/// let a = PinAssignment::identity(&functions);
/// let area = ctx.synthesized_area_ge(
///     &functions,
///     &a,
///     &Script::fast(),
///     &lib,
///     &MapOptions::default(),
/// )?;
/// assert!(area > 0.0);
/// # Ok::<(), mvf::MvfError>(())
/// ```
#[derive(Debug, Default)]
pub struct EvalContext {
    synth: SynthScratch,
    subject: SubjectScratch,
    matcher: MatchScratch,
    camo_matcher: CamoMatchScratch,
    camo_eval: CamoEvalScratch,
}

impl EvalContext {
    /// A fresh, empty context.
    pub fn new() -> Self {
        EvalContext::default()
    }

    /// The Phase-II fitness: merge under `assignment`, synthesize with
    /// `script`, map onto `lib` and return the GE area — with every
    /// scratch structure reused from this context.
    ///
    /// # Errors
    ///
    /// Returns an [`MvfError`] if merging or mapping fails.
    pub fn synthesized_area_ge(
        &mut self,
        functions: &[VectorFunction],
        assignment: &PinAssignment,
        script: &Script,
        lib: &Library,
        map: &MapOptions,
    ) -> Result<f64, MvfError> {
        let merged = build_merged(functions, assignment)?;
        let synthesized = script.run_with(&merged.aig, &mut self.synth);
        let subject = subject_graph::from_aig_with(&synthesized, lib, &mut self.subject);
        let mapped = map_standard_with(&subject, lib, map, &mut self.matcher)?;
        Ok(mapped.area_ge(lib, None))
    }

    /// Phase-III camouflage mapping through this context's reusable
    /// [`CamoMatchScratch`]: identical mapping decisions to
    /// [`mvf_techmap::map_camouflage`], with the pin-permutation tables
    /// and candidate buffers kept warm across calls.
    ///
    /// # Errors
    ///
    /// Returns an [`MvfError`] if no cover exists or the subject is
    /// malformed.
    pub fn map_camouflage(
        &mut self,
        subject: &Netlist,
        lib: &Library,
        camo: &CamoLibrary,
        select_inputs: &[usize],
        options: &CamoMapOptions,
    ) -> Result<CamoMappedCircuit, MvfError> {
        Ok(map_camouflage_with(
            subject,
            lib,
            camo,
            select_inputs,
            options,
            &mut self.camo_matcher,
        )?)
    }

    /// Phase-III validation through this context's reusable
    /// [`CamoEvalScratch`]: one word-parallel multi-configuration
    /// evaluation per call, with the widened arena and binding maps kept
    /// warm across calls.
    ///
    /// # Errors
    ///
    /// Returns an [`MvfError`] if the mapped circuit cannot realize every
    /// viable function.
    pub fn validate_mapped(
        &mut self,
        mapped: &CamoMappedCircuit,
        lib: &Library,
        camo: &CamoLibrary,
        viable: &[VectorFunction],
    ) -> Result<(), MvfError> {
        Ok(validate_mapped_with(
            mapped,
            lib,
            camo,
            viable,
            &mut self.camo_eval,
        )?)
    }
}

/// The Phase-II fitness as a standalone call: identical to
/// [`EvalContext::synthesized_area_ge`] but with a cold context per call.
/// Prefer the context form (or the [`crate::Flow`] API, which manages
/// contexts per worker thread) in any loop.
///
/// # Errors
///
/// Returns an [`MvfError`] if merging or mapping fails.
pub fn synthesized_area_ge(
    functions: &[VectorFunction],
    assignment: &PinAssignment,
    script: &Script,
    lib: &Library,
    map: &MapOptions,
) -> Result<f64, MvfError> {
    EvalContext::new().synthesized_area_ge(functions, assignment, script, lib, map)
}

/// Draws a uniformly random pin assignment for the given functions.
pub fn random_assignment(functions: &[VectorFunction], rng: &mut StdRng) -> PinAssignment {
    PinAssignment {
        input_perms: functions
            .iter()
            .map(|f| random_permutation(f.n_inputs(), rng))
            .collect(),
        output_perms: functions
            .iter()
            .map(|f| random_permutation(f.n_outputs(), rng))
            .collect(),
    }
}

/// Mutation: swap two pins in one random permutation of the genotype.
pub(crate) fn mutate_assignment(g: &mut PinAssignment, rng: &mut StdRng) {
    let n = g.input_perms.len();
    if n == 0 {
        // Degenerate genome (empty workload): nothing to mutate; the
        // merge step reports the real error.
        return;
    }
    // Function 0's pins can stay fixed (a global relabeling is free), but
    // keeping all functions mutable matches the paper's genotype.
    let j = rng.gen_range(0..n);
    if rng.gen_bool(0.5) {
        swap_mutation(&mut g.input_perms[j], rng);
    } else {
        swap_mutation(&mut g.output_perms[j], rng);
    }
}

/// Crossover: per-function PMX on input and output permutations.
pub(crate) fn crossover_assignment(
    a: &PinAssignment,
    b: &PinAssignment,
    rng: &mut StdRng,
) -> PinAssignment {
    let input_perms = a
        .input_perms
        .iter()
        .zip(&b.input_perms)
        .map(|(x, y)| {
            if rng.gen_bool(0.5) {
                pmx(x, y, rng)
            } else {
                x.clone()
            }
        })
        .collect();
    let output_perms = a
        .output_perms
        .iter()
        .zip(&b.output_perms)
        .map(|(x, y)| {
            if rng.gen_bool(0.5) {
                pmx(x, y, rng)
            } else {
                x.clone()
            }
        })
        .collect();
    PinAssignment {
        input_perms,
        output_perms,
    }
}

/// The paper's Phase-II search problem as an [`Objective`]: genomes are
/// [`PinAssignment`]s, variation is pin-swap mutation and per-function
/// PMX crossover, and fitness is the synthesized GE area evaluated
/// through a reusable [`EvalContext`].
///
/// Merge/map failures (which cannot occur for well-formed assignments,
/// but the search must stay total) score as [`f64::INFINITY`] and are
/// counted; [`PinObjective::failed_evaluations`] reports the count, which
/// flows into [`crate::FlowResult::failed_evaluations`].
pub struct PinObjective<'a> {
    functions: &'a [VectorFunction],
    script: &'a Script,
    lib: &'a Library,
    map: &'a MapOptions,
    failures: AtomicUsize,
}

impl<'a> PinObjective<'a> {
    /// An objective over the given viable functions and evaluation
    /// settings.
    pub fn new(
        functions: &'a [VectorFunction],
        script: &'a Script,
        lib: &'a Library,
        map: &'a MapOptions,
    ) -> Self {
        PinObjective {
            functions,
            script,
            lib,
            map,
            failures: AtomicUsize::new(0),
        }
    }

    /// Number of fitness evaluations that failed (merge or map error) and
    /// were scored as [`f64::INFINITY`] so far.
    pub fn failed_evaluations(&self) -> usize {
        self.failures.load(Ordering::Relaxed)
    }
}

impl Objective for PinObjective<'_> {
    type Genome = PinAssignment;
    type Ctx = EvalContext;

    fn new_ctx(&self) -> EvalContext {
        EvalContext::new()
    }

    fn init(&self, rng: &mut StdRng) -> PinAssignment {
        random_assignment(self.functions, rng)
    }

    fn mutate(&self, genome: &mut PinAssignment, rng: &mut StdRng) {
        mutate_assignment(genome, rng);
    }

    fn crossover(&self, a: &PinAssignment, b: &PinAssignment, rng: &mut StdRng) -> PinAssignment {
        crossover_assignment(a, b, rng)
    }

    fn evaluate(&self, ctx: &mut EvalContext, genome: &PinAssignment) -> f64 {
        ctx.synthesized_area_ge(self.functions, genome, self.script, self.lib, self.map)
            .unwrap_or_else(|_| {
                self.failures.fetch_add(1, Ordering::Relaxed);
                f64::INFINITY
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_sboxes::optimal_sboxes;
    use rand::SeedableRng;

    #[test]
    fn context_reuse_is_bit_identical_to_cold_calls() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let lib = Library::standard();
        let script = Script::fast();
        let map = MapOptions::default();
        let mut rng = StdRng::seed_from_u64(17);
        let mut ctx = EvalContext::new();
        for _ in 0..4 {
            let a = random_assignment(&funcs, &mut rng);
            let warm = ctx
                .synthesized_area_ge(&funcs, &a, &script, &lib, &map)
                .expect("fitness");
            let cold = synthesized_area_ge(&funcs, &a, &script, &lib, &map).expect("fitness");
            assert_eq!(warm.to_bits(), cold.to_bits());
        }
    }

    #[test]
    fn objective_counts_no_failures_on_valid_assignments() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let lib = Library::standard();
        let script = Script::fast();
        let map = MapOptions::default();
        let obj = PinObjective::new(&funcs, &script, &lib, &map);
        let mut ctx = mvf_ga::Objective::new_ctx(&obj);
        let mut rng = StdRng::seed_from_u64(5);
        let g = mvf_ga::Objective::init(&obj, &mut rng);
        let f = mvf_ga::Objective::evaluate(&obj, &mut ctx, &g);
        assert!(f.is_finite() && f > 0.0);
        assert_eq!(obj.failed_evaluations(), 0);
    }

    #[test]
    fn mutation_and_crossover_keep_assignments_valid() {
        let funcs = optimal_sboxes()[..4].to_vec();
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = random_assignment(&funcs, &mut rng);
        let b = random_assignment(&funcs, &mut rng);
        for _ in 0..50 {
            mutate_assignment(&mut a, &mut rng);
            let c = crossover_assignment(&a, &b, &mut rng);
            // Validity is enforced by build_merged; it must not error.
            build_merged(&funcs, &c).expect("valid child");
        }
        build_merged(&funcs, &a).expect("valid mutant");
    }
}
