//! AIG → subject-netlist decomposition.
//!
//! Tree-covering technology mapping operates on a *subject graph* of
//! primitive gates (Keutzer's DAGON uses NAND2/INV; we use AND2/INV, which
//! is equivalent up to cell choice). This module lowers an optimized
//! [`mvf_aig::Aig`] into such a netlist: one AND2 per AIG node, one INV per
//! distinct complemented edge, TIE cells for constant outputs and BUFs for
//! outputs wired straight to an input.

use std::collections::HashMap;

use mvf_aig::{Aig, Lit};
use mvf_cells::{CellKind, Library};

use crate::{NetId, Netlist};

/// Reusable node→net maps for [`from_aig_with`]: lowering allocates the
/// returned [`Netlist`] but no intermediate state when the scratch is
/// shared across calls.
#[derive(Debug, Default)]
pub struct SubjectScratch {
    pos_net: HashMap<u32, NetId>,
    neg_net: HashMap<u32, NetId>,
}

/// Lowers an AIG into an AND2/INV subject netlist.
///
/// Primary input/output names are taken from the AIG. Inverters are shared:
/// each AIG node gets at most one INV instance.
///
/// # Panics
///
/// Panics if `lib` lacks AND2, INV, BUF or tie cells (the standard library
/// has all of them).
pub fn from_aig(aig: &Aig, lib: &Library) -> Netlist {
    from_aig_with(aig, lib, &mut SubjectScratch::default())
}

/// [`from_aig`] with caller-owned scratch maps, for loops that lower many
/// graphs (the Phase-II fitness evaluation). The result is identical to
/// [`from_aig`].
///
/// # Panics
///
/// Same as [`from_aig`].
pub fn from_aig_with(aig: &Aig, lib: &Library, scratch: &mut SubjectScratch) -> Netlist {
    let and2 = lib.cell_by_kind(CellKind::And(2)).expect("AND2 in library");
    let inv = lib.cell_by_kind(CellKind::Inv).expect("INV in library");
    let buf = lib.cell_by_kind(CellKind::Buf).expect("BUF in library");
    let tie0 = lib.cell_by_kind(CellKind::Tie0).expect("TIE0 in library");
    let tie1 = lib.cell_by_kind(CellKind::Tie1).expect("TIE1 in library");

    let mut nl = Netlist::new("subject");
    // Node id -> net carrying the *positive* polarity of the node.
    let pos_net = &mut scratch.pos_net;
    pos_net.clear();
    // Node id -> net carrying the complemented polarity (INV output).
    let neg_net = &mut scratch.neg_net;
    neg_net.clear();

    for i in 0..aig.n_inputs() {
        let net = nl.add_input(aig.input_name(i).to_string());
        pos_net.insert(aig.input(i).node().0, net);
    }

    // Constants on demand.
    let mut const_net: [Option<NetId>; 2] = [None, None];
    let mut get_const = |nl: &mut Netlist, value: bool| -> NetId {
        if let Some(n) = const_net[value as usize] {
            return n;
        }
        let cell = if value { tie1 } else { tie0 };
        let (_, net) = nl.add_cell(format!("tie{}", value as u8), cell.into(), vec![]);
        const_net[value as usize] = Some(net);
        net
    };

    let mut lit_net = |nl: &mut Netlist,
                       pos_net: &HashMap<u32, NetId>,
                       neg_net: &mut HashMap<u32, NetId>,
                       l: Lit|
     -> NetId {
        if l.is_const() {
            return get_const(nl, l == Lit::TRUE);
        }
        let id = l.node().0;
        let p = pos_net[&id];
        if !l.is_complement() {
            return p;
        }
        if let Some(&n) = neg_net.get(&id) {
            return n;
        }
        let (_, n) = nl.add_cell(format!("inv{id}"), inv.into(), vec![p]);
        neg_net.insert(id, n);
        n
    };

    for id in aig.and_nodes() {
        let (f0, f1) = aig.fanins(id);
        let a = lit_net(&mut nl, pos_net, neg_net, f0);
        let b = lit_net(&mut nl, pos_net, neg_net, f1);
        let (_, y) = nl.add_cell(format!("and{}", id.0), and2.into(), vec![a, b]);
        pos_net.insert(id.0, y);
    }

    for (name, l) in aig.outputs() {
        let mut net = lit_net(&mut nl, pos_net, neg_net, *l);
        // An output wired directly to an input gets a buffer so that the
        // output net is cell-driven (simplifies downstream tree covering).
        if nl.is_input(net) {
            let (_, b) = nl.add_cell(format!("buf_{name}"), buf.into(), vec![net]);
            net = b;
        }
        nl.set_net_name(net, name.to_string());
        nl.add_output(name.to_string(), net);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowers_simple_graph() {
        let mut aig = Aig::new(2);
        let a = aig.input(0);
        let b = aig.input(1);
        let f = aig.xor(a, b);
        aig.add_output("y", f);
        let lib = Library::standard();
        let nl = from_aig(&aig, &lib);
        assert!(nl.check(&lib).is_ok());
        // XOR = 3 ANDs + inverters.
        let hist = nl.cell_histogram(&lib, None);
        let ands = hist.iter().find(|(n, _)| n == "AND2").map(|(_, c)| *c);
        assert_eq!(ands, Some(3));
    }

    #[test]
    fn inverters_are_shared() {
        let mut aig = Aig::new(2);
        let a = aig.input(0);
        let b = aig.input(1);
        // Two gates both using ¬a.
        let x = aig.and(!a, b);
        let y = aig.and(!a, !b);
        aig.add_output("x", x);
        aig.add_output("y", y);
        let lib = Library::standard();
        let nl = from_aig(&aig, &lib);
        let hist = nl.cell_histogram(&lib, None);
        let invs = hist
            .iter()
            .find(|(n, _)| n == "INV")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert_eq!(invs, 2, "¬a shared, ¬b single: exactly 2 inverters");
    }

    #[test]
    fn constant_outputs_get_tie_cells() {
        let mut aig = Aig::new(1);
        aig.add_output("zero", Lit::FALSE);
        aig.add_output("one", Lit::TRUE);
        let lib = Library::standard();
        let nl = from_aig(&aig, &lib);
        assert!(nl.check(&lib).is_ok());
        let hist = nl.cell_histogram(&lib, None);
        assert!(hist.iter().any(|(n, c)| n == "TIE0" && *c == 1));
        assert!(hist.iter().any(|(n, c)| n == "TIE1" && *c == 1));
    }

    #[test]
    fn passthrough_output_gets_buffer() {
        let mut aig = Aig::new(1);
        let a = aig.input(0);
        aig.add_output("y", a);
        let lib = Library::standard();
        let nl = from_aig(&aig, &lib);
        assert!(nl.check(&lib).is_ok());
        let hist = nl.cell_histogram(&lib, None);
        assert!(hist.iter().any(|(n, c)| n == "BUF" && *c == 1));
    }

    #[test]
    fn io_names_survive() {
        let mut aig = Aig::new(2);
        aig.set_input_name(0, "sel0");
        aig.set_input_name(1, "d");
        let s = aig.input(0);
        let d = aig.input(1);
        let f = aig.and(s, d);
        aig.add_output("out", f);
        let lib = Library::standard();
        let nl = from_aig(&aig, &lib);
        assert_eq!(nl.net_name(nl.inputs()[0]), "sel0");
        assert_eq!(nl.outputs()[0].0, "out");
    }
}
