//! Netlist interchange: BLIF and structural Verilog writers, a BLIF
//! reader, and a Graphviz DOT dump.
//!
//! The paper's flow passes netlists between Yosys and ABC as BLIF; these
//! routines provide the same interoperability for this workspace's
//! netlists (e.g. to inspect a mapped circuit in external tools).

use std::collections::HashMap;
use std::fmt::Write as _;

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::TruthTable;

use crate::{CellRef, Netlist};

/// Renders the netlist as BLIF. Camouflaged cells are emitted as `.gate`
/// lines with a `camo-` prefix on the cell name, carrying their *nominal*
/// function (the plausible variants are not expressible in BLIF).
pub fn to_blif(nl: &Netlist, lib: &Library, camo: Option<&CamoLibrary>) -> String {
    let mut s = String::new();
    writeln!(s, ".model {}", nl.name()).expect("write to string");
    let ins: Vec<&str> = nl.inputs().iter().map(|&n| nl.net_name(n)).collect();
    writeln!(s, ".inputs {}", ins.join(" ")).expect("write to string");
    let outs: Vec<&str> = nl.outputs().iter().map(|(n, _)| n.as_str()).collect();
    writeln!(s, ".outputs {}", outs.join(" ")).expect("write to string");
    for (_, c) in nl.cells() {
        let (func, name) = match c.cell {
            CellRef::Std(id) => {
                let cell = lib.cell(id);
                (cell.function().clone(), cell.name().to_string())
            }
            CellRef::Camo(id) => {
                let cell = camo.expect("camo library required").cell(id);
                (cell.nominal().clone(), format!("camo-{}", cell.name()))
            }
        };
        let mut nets: Vec<String> = c
            .inputs
            .iter()
            .map(|&n| nl.net_name(n).to_string())
            .collect();
        nets.push(nl.net_name(c.output).to_string());
        writeln!(s, "# {} {}", name, c.name).expect("write to string");
        writeln!(s, ".names {}", nets.join(" ")).expect("write to string");
        s.push_str(&names_table(&func));
    }
    // Output aliases where the output name differs from its net name.
    for (name, net) in nl.outputs() {
        if nl.net_name(*net) != name {
            writeln!(s, ".names {} {}", nl.net_name(*net), name).expect("write to string");
            writeln!(s, "1 1").expect("write to string");
        }
    }
    writeln!(s, ".end").expect("write to string");
    s
}

fn names_table(f: &TruthTable) -> String {
    let mut s = String::new();
    let n = f.n_vars();
    if n == 0 {
        if f.is_one() {
            s.push_str("1\n");
        }
        return s;
    }
    for m in 0..f.n_minterms() {
        if f.get(m) {
            for v in 0..n {
                s.push(if m & (1 << v) != 0 { '1' } else { '0' });
            }
            s.push_str(" 1\n");
        }
    }
    s
}

/// A minimal BLIF model parsed back by [`from_blif`].
#[derive(Debug, Clone)]
pub struct BlifModel {
    /// Model name.
    pub name: String,
    /// Primary input names.
    pub inputs: Vec<String>,
    /// Primary output names.
    pub outputs: Vec<String>,
    /// `.names` tables as `(input nets, output net, truth table)`.
    pub tables: Vec<(Vec<String>, String, TruthTable)>,
}

/// Parses a combinational single-model BLIF (as emitted by [`to_blif`]).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax problem.
pub fn from_blif(text: &str) -> Result<BlifModel, String> {
    let mut name = String::from("top");
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut tables: Vec<(Vec<String>, String, Vec<(String, bool)>)> = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some(".model") => name = tok.next().unwrap_or("top").to_string(),
            Some(".inputs") => inputs.extend(tok.map(str::to_string)),
            Some(".outputs") => outputs.extend(tok.map(str::to_string)),
            Some(".names") => {
                let mut nets: Vec<String> = tok.map(str::to_string).collect();
                let out = nets
                    .pop()
                    .ok_or_else(|| ".names with no nets".to_string())?;
                let mut rows = Vec::new();
                while let Some(next) = lines.peek() {
                    let t = next.trim();
                    if t.is_empty() || t.starts_with('.') || t.starts_with('#') {
                        break;
                    }
                    let row = lines.next().expect("peeked").trim();
                    let (pat, val) = match row.rsplit_once(' ') {
                        Some((p, v)) => (p.trim().to_string(), v == "1"),
                        None => (String::new(), row == "1"),
                    };
                    rows.push((pat, val));
                }
                tables.push((nets, out, rows));
            }
            Some(".end") => break,
            Some(other) => return Err(format!("unsupported BLIF construct: {other}")),
            None => {}
        }
    }
    let tables = tables
        .into_iter()
        .map(|(nets, out, rows)| {
            let n = nets.len();
            if n > mvf_logic::MAX_VARS {
                return Err(format!("table for {out} too wide ({n} inputs)"));
            }
            let mut tt = TruthTable::zero(n);
            for (pat, val) in rows {
                if !val {
                    continue; // off-set rows are not emitted by our writer
                }
                if pat.is_empty() {
                    tt = TruthTable::one(0);
                    continue;
                }
                if pat.len() != n {
                    return Err(format!("row width {} != {} for {out}", pat.len(), n));
                }
                // Expand '-' wildcards.
                let mut stack = vec![(0usize, 0usize)]; // (index, minterm)
                while let Some((i, m)) = stack.pop() {
                    if i == n {
                        tt.set(m, true);
                        continue;
                    }
                    match pat.as_bytes()[i] {
                        b'0' => stack.push((i + 1, m)),
                        b'1' => stack.push((i + 1, m | (1 << i))),
                        b'-' => {
                            stack.push((i + 1, m));
                            stack.push((i + 1, m | (1 << i)));
                        }
                        c => return Err(format!("bad pattern char {}", c as char)),
                    }
                }
            }
            Ok((nets, out, tt))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BlifModel {
        name,
        inputs,
        outputs,
        tables,
    })
}

/// Reconstructs a [`Netlist`] from a parsed [`BlifModel`], matching
/// each `.names` table against the standard-library cell that computes
/// the same function over the same pin order.
///
/// Two deliberate normalizations, both invisible to evaluation:
///
/// * Single-input identity tables driving a primary output (the alias
///   buffers [`to_blif`] emits when an output's net carries a different
///   name) become plain output bindings, not `BUF` cells.
/// * Camouflaged cells are not reconstructible from BLIF — the format
///   carries only their nominal function — so a camouflaged netlist
///   written by [`to_blif`] comes back as its nominal standard-cell
///   circuit.
///
/// # Errors
///
/// A human-readable description of the first defect: a net used before
/// it is driven, a net driven twice, a table no library cell computes,
/// or an undriven primary output.
pub fn netlist_from_blif(model: &BlifModel, lib: &Library) -> Result<Netlist, String> {
    let mut nl = Netlist::new(&model.name);
    let mut nets: HashMap<&str, crate::NetId> = HashMap::new();
    for input in &model.inputs {
        if nets.insert(input, nl.add_input(input)).is_some() {
            return Err(format!("input '{input}' declared twice"));
        }
    }
    let primary: std::collections::HashSet<&str> =
        model.outputs.iter().map(String::as_str).collect();
    let mut aliases: HashMap<&str, crate::NetId> = HashMap::new();
    let identity = TruthTable::var(0, 1);
    for (ins, out, tt) in &model.tables {
        let resolved = ins
            .iter()
            .map(|n| {
                nets.get(n.as_str())
                    .copied()
                    .ok_or_else(|| format!("net '{n}' used before it is driven"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        // The writer's output-alias buffer: bind, don't instantiate.
        if ins.len() == 1
            && *tt == identity
            && primary.contains(out.as_str())
            && !nets.contains_key(out.as_str())
        {
            aliases.insert(out, resolved[0]);
            continue;
        }
        let cell = lib
            .iter()
            .find(|(_, c)| c.n_inputs() == ins.len() && c.function() == tt)
            .map(|(id, _)| id)
            .ok_or_else(|| {
                format!(
                    "no standard cell computes the {}-input table driving '{out}'",
                    ins.len()
                )
            })?;
        let name = out.strip_suffix("_y").unwrap_or(out);
        let (_, net) = nl.add_cell(name, CellRef::Std(cell), resolved);
        nl.set_net_name(net, out);
        if nets.insert(out, net).is_some() {
            return Err(format!("net '{out}' driven twice"));
        }
    }
    for name in &model.outputs {
        let net = aliases
            .get(name.as_str())
            .or_else(|| nets.get(name.as_str()))
            .copied()
            .ok_or_else(|| format!("output '{name}' is not driven"))?;
        nl.add_output(name, net);
    }
    Ok(nl)
}

/// Renders the netlist as structural Verilog (gate-level instantiations).
pub fn to_verilog(nl: &Netlist, lib: &Library, camo: Option<&CamoLibrary>) -> String {
    let sanitize = |s: &str| s.replace(['[', ']', '.'], "_");
    let mut s = String::new();
    let ins: Vec<String> = nl
        .inputs()
        .iter()
        .map(|&n| sanitize(nl.net_name(n)))
        .collect();
    let outs: Vec<String> = nl.outputs().iter().map(|(n, _)| sanitize(n)).collect();
    writeln!(
        s,
        "module {}({}, {});",
        sanitize(nl.name()),
        ins.join(", "),
        outs.join(", ")
    )
    .expect("write to string");
    for i in &ins {
        writeln!(s, "  input {i};").expect("write to string");
    }
    for o in &outs {
        writeln!(s, "  output {o};").expect("write to string");
    }
    for (_, c) in nl.cells() {
        writeln!(s, "  wire {};", sanitize(nl.net_name(c.output))).expect("write to string");
    }
    for (_, c) in nl.cells() {
        let cell_name = match c.cell {
            CellRef::Std(id) => lib.cell(id).name().to_string(),
            CellRef::Camo(id) => {
                format!(
                    "CAMO_{}",
                    camo.expect("camo library required").cell(id).name()
                )
            }
        };
        let mut pins: Vec<String> = Vec::new();
        for (i, &n) in c.inputs.iter().enumerate() {
            pins.push(format!(
                ".{}({})",
                (b'A' + i as u8) as char,
                sanitize(nl.net_name(n))
            ));
        }
        pins.push(format!(".Y({})", sanitize(nl.net_name(c.output))));
        writeln!(
            s,
            "  {} {} ({});",
            cell_name,
            sanitize(&c.name),
            pins.join(", ")
        )
        .expect("write to string");
    }
    for (name, net) in nl.outputs() {
        if nl.net_name(*net) != name {
            writeln!(
                s,
                "  assign {} = {};",
                sanitize(name),
                sanitize(nl.net_name(*net))
            )
            .expect("write to string");
        }
    }
    writeln!(s, "endmodule").expect("write to string");
    s
}

/// Renders the netlist as a Graphviz digraph for visual inspection.
pub fn to_dot(nl: &Netlist, lib: &Library, camo: Option<&CamoLibrary>) -> String {
    let mut s = String::new();
    writeln!(s, "digraph {} {{", nl.name().replace('-', "_")).expect("write to string");
    writeln!(s, "  rankdir=LR;").expect("write to string");
    for &n in nl.inputs() {
        writeln!(s, "  \"{}\" [shape=triangle];", nl.net_name(n)).expect("write to string");
    }
    let mut net_source: HashMap<u32, String> = HashMap::new();
    for &n in nl.inputs() {
        net_source.insert(n.0, nl.net_name(n).to_string());
    }
    for (_, c) in nl.cells() {
        let label = match c.cell {
            CellRef::Std(id) => lib.cell(id).name().to_string(),
            CellRef::Camo(id) => format!(
                "camo\\n{}",
                camo.expect("camo library required").cell(id).name()
            ),
        };
        writeln!(s, "  \"{}\" [shape=box,label=\"{}\"];", c.name, label).expect("write to string");
        net_source.insert(c.output.0, c.name.clone());
    }
    for (_, c) in nl.cells() {
        for &n in &c.inputs {
            if let Some(src) = net_source.get(&n.0) {
                writeln!(s, "  \"{}\" -> \"{}\";", src, c.name).expect("write to string");
            }
        }
    }
    for (name, net) in nl.outputs() {
        writeln!(s, "  \"out_{name}\" [shape=invtriangle];").expect("write to string");
        if let Some(src) = net_source.get(&net.0) {
            writeln!(s, "  \"{src}\" -> \"out_{name}\";").expect("write to string");
        }
    }
    writeln!(s, "}}").expect("write to string");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_cells::CellKind;

    fn sample() -> (Netlist, Library) {
        let lib = Library::standard();
        let nand = lib.cell_by_kind(CellKind::Nand(2)).unwrap();
        let inv = lib.cell_by_kind(CellKind::Inv).unwrap();
        let mut nl = Netlist::new("samp");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (_, x) = nl.add_cell("u1", nand.into(), vec![a, b]);
        let (_, y) = nl.add_cell("u2", inv.into(), vec![x]);
        nl.add_output("y", y);
        (nl, lib)
    }

    #[test]
    fn blif_roundtrip_preserves_structure() {
        let (nl, lib) = sample();
        let text = to_blif(&nl, &lib, None);
        let model = from_blif(&text).expect("parse back");
        assert_eq!(model.name, "samp");
        assert_eq!(model.inputs, vec!["a", "b"]);
        assert_eq!(model.outputs, vec!["y"]);
        // NAND2, INV, plus the alias buffer binding net u2_y to output y.
        assert_eq!(model.tables.len(), 3);
        let (ins, _, tt) = &model.tables[0];
        assert_eq!(ins.len(), 2);
        assert_eq!(tt, &CellKind::Nand(2).function());
        let (ins, out, tt) = &model.tables[2];
        assert_eq!(ins.len(), 1);
        assert_eq!(out, "y");
        assert_eq!(tt, &CellKind::Buf.function());
    }

    #[test]
    fn blif_wildcards_parse() {
        let text = ".model t\n.inputs a b\n.outputs y\n.names a b y\n-1 1\n1- 1\n.end\n";
        let model = from_blif(text).expect("parse");
        let (_, _, tt) = &model.tables[0];
        assert_eq!(tt, &CellKind::Or(2).function());
    }

    #[test]
    fn blif_rejects_garbage() {
        assert!(from_blif(".model x\n.latch a b\n.end").is_err());
        assert!(from_blif(".model x\n.names a y\n11 1\n.end").is_err());
    }

    #[test]
    fn blif_reconstruction_round_trips() {
        let (nl, lib) = sample();
        let text = to_blif(&nl, &lib, None);
        let model = from_blif(&text).expect("parse back");
        let back = netlist_from_blif(&model, &lib).expect("reconstruct");
        assert_eq!(back.inputs().len(), 2);
        assert_eq!(
            back.cells().count(),
            2,
            "the alias buffer is a binding, not a cell"
        );
        assert_eq!(back.outputs().len(), 1);
        // Re-emission is identical line for line (instance names live
        // only in comments, which carry no structure).
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&to_blif(&back, &lib, None)), strip(&text));
    }

    #[test]
    fn blif_reconstruction_handles_constants() {
        let lib = Library::standard();
        let tie1 = lib.cell_by_kind(CellKind::Tie1).unwrap();
        let tie0 = lib.cell_by_kind(CellKind::Tie0).unwrap();
        let mut nl = Netlist::new("c");
        let (_, one) = nl.add_cell("t1", tie1.into(), vec![]);
        let (_, zero) = nl.add_cell("t0", tie0.into(), vec![]);
        nl.add_output("one", one);
        nl.add_output("zero", zero);
        let text = to_blif(&nl, &lib, None);
        let back = netlist_from_blif(&from_blif(&text).unwrap(), &lib).expect("reconstruct");
        assert_eq!(back.cells().count(), 2);
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&to_blif(&back, &lib, None)), strip(&text));
    }

    #[test]
    fn blif_reconstruction_rejects_defects() {
        let lib = Library::standard();
        // A table no standard cell computes (3-input parity).
        let parity =
            ".model x\n.inputs a b c\n.outputs y\n.names a b c y\n100 1\n010 1\n001 1\n111 1\n.end";
        let err = netlist_from_blif(&from_blif(parity).unwrap(), &lib).unwrap_err();
        assert!(err.contains("no standard cell"), "{err}");
        // A net used before it is driven.
        let undriven = ".model x\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end";
        let err = netlist_from_blif(&from_blif(undriven).unwrap(), &lib).unwrap_err();
        assert!(err.contains("used before it is driven"), "{err}");
        // An output nothing drives.
        let dangling = ".model x\n.inputs a\n.outputs y\n.end";
        let err = netlist_from_blif(&from_blif(dangling).unwrap(), &lib).unwrap_err();
        assert!(err.contains("not driven"), "{err}");
        // A net driven twice.
        let twice = ".model x\n.inputs a b\n.outputs y\n.names a b n\n11 1\n.names a b n\n00 1\n.names n y\n1 1\n.end";
        let err = netlist_from_blif(&from_blif(twice).unwrap(), &lib).unwrap_err();
        assert!(err.contains("driven twice"), "{err}");
    }

    #[test]
    fn verilog_contains_instances_and_ports() {
        let (nl, lib) = sample();
        let v = to_verilog(&nl, &lib, None);
        assert!(v.contains("module samp(a, b, y);"));
        assert!(v.contains("NAND2 u1 (.A(a), .B(b), .Y(u1_y));"));
        assert!(v.contains("INV u2"));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn dot_mentions_every_cell() {
        let (nl, lib) = sample();
        let d = to_dot(&nl, &lib, None);
        assert!(d.contains("\"u1\""));
        assert!(d.contains("\"u2\""));
        assert!(d.contains("->"));
    }

    #[test]
    fn constant_tables_emit() {
        let lib = Library::standard();
        let tie1 = lib.cell_by_kind(CellKind::Tie1).unwrap();
        let mut nl = Netlist::new("c");
        let (_, one) = nl.add_cell("t", tie1.into(), vec![]);
        nl.add_output("one", one);
        let text = to_blif(&nl, &lib, None);
        assert!(text.contains(".names t_y\n1\n"), "{text}");
    }
}
