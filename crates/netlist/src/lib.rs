//! Gate-level netlists over standard and camouflaged cell libraries.
//!
//! A [`Netlist`] is a flat structural netlist: primary inputs, single-output
//! cell instances referencing a [`mvf_cells::Library`] (or camouflaged
//! cells from a [`mvf_cells::CamoLibrary`]), and named primary outputs.
//! This is the exchange format between synthesis ([`mvf_aig`]) and
//! technology mapping, and the form in which final camouflaged circuits
//! are reported, simulated and attacked.
//!
//! The crate also provides:
//!
//! * [`subject_graph`] — decomposition of an optimized AIG into an
//!   AND2/INV subject netlist, the input to tree-covering technology
//!   mapping (Keutzer's DAGON approach used by the paper's Alg. 1);
//! * [`io`] — BLIF and structural-Verilog writers and a BLIF reader, plus
//!   a Graphviz DOT dump for inspection.
//!
//! # Example
//!
//! ```
//! use mvf_cells::{CellKind, Library};
//! use mvf_netlist::Netlist;
//!
//! let lib = Library::standard();
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let nand = lib.cell_by_kind(CellKind::Nand(2)).expect("NAND2");
//! let (_, y) = nl.add_cell("u1", nand.into(), vec![a, b]);
//! nl.add_output("y", y);
//! assert_eq!(nl.check(&lib), Ok(()));
//! assert_eq!(nl.area_ge(&lib, None), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod io;
mod netlist;
pub mod subject_graph;

pub use netlist::{CellId, CellRef, Instance, NetId, Netlist, NetlistError};
