//! Content fingerprints for netlists and cell libraries.
//!
//! The audit service (`mvf-serve`) caches per-netlist SAT encodings and
//! learnt clauses across submissions, keyed by *content*: two
//! structurally identical netlists must hash alike no matter how they
//! were built, and any change to a cell, a connection, a pin order or a
//! camouflaged cell's plausible-function set must change the key.
//!
//! The hasher is FNV-1a over a canonical byte stream (the environment is
//! offline, so no external hash crates): fast, dependency-free and
//! stable across platforms — the fingerprint is part of the service's
//! cache semantics, not an in-process-only value.

use mvf_cells::{CamoLibrary, Library};

use crate::netlist::{CellRef, Netlist};

/// A streaming 64-bit FNV-1a hasher over a canonical byte encoding.
///
/// Collisions are theoretically possible (64-bit digest), but the cache
/// this keys is a performance layer: a collision could only warm-start a
/// solver with another netlist's learnt clauses, never change a verdict,
/// because sweeps re-derive every answer from the submitted netlist.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` as `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` stream differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprints a netlist's structure: inputs, cell instances (library
/// reference, pin connections, output net) and primary outputs.
///
/// Net and instance *names* are excluded deliberately: renaming a wire
/// does not change what the adversary can conclude, so it must not
/// invalidate a warm session. Structure is identified by net indices,
/// which are canonical for a given construction order.
pub fn fingerprint_netlist(nl: &Netlist) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(nl.inputs().len());
    h.write_usize(nl.n_cells());
    for (_, cell) in nl.cells() {
        match cell.cell {
            CellRef::Std(id) => {
                h.write_u64(0);
                h.write_u64(u64::from(id.0));
            }
            CellRef::Camo(id) => {
                h.write_u64(1);
                h.write_u64(u64::from(id.0));
            }
        }
        h.write_usize(cell.inputs.len());
        for &pin in &cell.inputs {
            h.write_u64(u64::from(pin.0));
        }
        h.write_u64(u64::from(cell.output.0));
    }
    h.write_usize(nl.outputs().len());
    for (_, net) in nl.outputs() {
        h.write_u64(u64::from(net.0));
    }
    h.finish()
}

/// Absorbs a library's cell functions into `h`: cell ids in a netlist
/// only mean something relative to the library they index, so a session
/// key must cover both.
pub fn absorb_library(h: &mut Fnv64, lib: &Library) {
    h.write_usize(lib.len());
    for (_, cell) in lib.iter() {
        h.write_str(cell.name());
        h.write_u64(cell.area_ge().to_bits());
        let f = cell.function();
        h.write_usize(f.n_vars());
        for &w in f.words() {
            h.write_u64(w);
        }
    }
}

/// Absorbs a camouflaged library: the plausible-function sets are what
/// the whole plausibility question quantifies over, so any change to
/// them must produce a different session key.
pub fn absorb_camo_library(h: &mut Fnv64, camo: &CamoLibrary) {
    h.write_usize(camo.len());
    for (_, cell) in camo.iter() {
        h.write_str(cell.name());
        h.write_u64(cell.area_ge().to_bits());
        h.write_usize(cell.plausible().len());
        for f in cell.plausible() {
            h.write_usize(f.n_vars());
            for &w in f.words() {
                h.write_u64(w);
            }
        }
    }
}

/// The audit-session cache key: netlist structure plus both libraries'
/// content. Equal keys ⇒ the SAT encoding (and everything derived from
/// it) is interchangeable.
pub fn fingerprint_session(nl: &Netlist, lib: &Library, camo: &CamoLibrary) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(fingerprint_netlist(nl));
    absorb_library(&mut h, lib);
    absorb_camo_library(&mut h, camo);
    h.finish()
}

/// [`fingerprint_session`] additionally committed to an obfuscation
/// scheme tag. Two schemes can share a netlist and even a choice
/// library byte for byte, yet their sessions (solver state, screens,
/// checkpoints) answer *different questions* — the scheme identity must
/// therefore be part of the cache key, not inferred from content.
pub fn fingerprint_session_scheme(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    scheme: &str,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(scheme);
    h.write_u64(fingerprint_session(nl, lib, camo));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_cells::CellKind;

    fn tiny(name: &str, swap: bool) -> Netlist {
        let lib = Library::standard();
        let mut nl = Netlist::new(name);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let nand = lib.cell_by_kind(CellKind::Nand(2)).expect("NAND2");
        let pins = if swap { vec![b, a] } else { vec![a, b] };
        let (_, y) = nl.add_cell("u1", nand.into(), pins);
        nl.add_output("y", y);
        nl
    }

    #[test]
    fn identical_structure_hashes_alike_names_do_not_matter() {
        let x = fingerprint_netlist(&tiny("one", false));
        let y = fingerprint_netlist(&tiny("two", false));
        assert_eq!(x, y, "netlist and instance names are not structure");
    }

    #[test]
    fn pin_order_changes_the_fingerprint() {
        let x = fingerprint_netlist(&tiny("n", false));
        let y = fingerprint_netlist(&tiny("n", true));
        assert_ne!(x, y, "swapped pins are a different circuit");
    }

    #[test]
    fn session_key_covers_the_libraries() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let nl = tiny("n", false);
        let k1 = fingerprint_session(&nl, &lib, &camo);
        let k2 = fingerprint_session(&nl, &lib, &camo);
        assert_eq!(k1, k2, "fingerprinting is pure");
        assert_ne!(
            k1,
            fingerprint_netlist(&nl),
            "session key is not the bare netlist hash"
        );
    }

    #[test]
    fn scheme_tag_separates_session_keys() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let nl = tiny("n", false);
        let base = fingerprint_session(&nl, &lib, &camo);
        let as_camo = fingerprint_session_scheme(&nl, &lib, &camo, "camo");
        let as_lock = fingerprint_session_scheme(&nl, &lib, &camo, "locking");
        assert_ne!(as_camo, as_lock, "schemes must never share a session key");
        assert_ne!(as_camo, base);
        assert_ne!(as_lock, base);
    }

    #[test]
    fn fnv_stream_is_stable() {
        // The digest is part of the on-the-wire cache semantics; pin one
        // reference value so accidental encoding changes fail loudly.
        let mut h = Fnv64::new();
        h.write_str("mvf");
        h.write_u64(17);
        assert_eq!(h.finish(), 0x4D77_CD8B_1E48_5948);
    }
}
