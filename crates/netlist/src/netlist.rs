use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use mvf_cells::{CamoCellId, CamoLibrary, LibCellId, Library};

/// Identifier of a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a cell instance within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Reference to a library cell: either a standard cell or a camouflaged
/// look-alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellRef {
    /// A standard cell from a [`Library`].
    Std(LibCellId),
    /// A camouflaged cell from a [`CamoLibrary`].
    Camo(CamoCellId),
}

impl From<LibCellId> for CellRef {
    fn from(id: LibCellId) -> Self {
        CellRef::Std(id)
    }
}

impl From<CamoCellId> for CellRef {
    fn from(id: CamoCellId) -> Self {
        CellRef::Camo(id)
    }
}

/// One cell instance: a named, single-output gate.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance name (unique within the netlist by convention).
    pub name: String,
    /// The library cell it instantiates.
    pub cell: CellRef,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// The driven output net.
    pub output: NetId,
}

#[derive(Debug, Clone)]
enum Driver {
    /// Reserved for nets created without a driver (none are today, but
    /// the checker guards against them for future constructors).
    #[allow(dead_code)]
    None,
    Input(usize),
    Cell(CellId),
}

#[derive(Debug, Clone)]
struct Net {
    name: String,
    driver: Driver,
}

/// Errors reported by [`Netlist::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net has no driver but is used.
    UndrivenNet(String),
    /// A cell's input count does not match its library cell.
    ArityMismatch {
        /// Instance name.
        cell: String,
        /// Expected pin count.
        expected: usize,
        /// Provided pin count.
        got: usize,
    },
    /// The cell graph contains a combinational cycle.
    CombinationalCycle,
    /// A net is driven more than once.
    MultipleDrivers(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndrivenNet(n) => write!(f, "net {n} is used but never driven"),
            NetlistError::ArityMismatch {
                cell,
                expected,
                got,
            } => {
                write!(f, "cell {cell} expects {expected} inputs, got {got}")
            }
            NetlistError::CombinationalCycle => write!(f, "combinational cycle detected"),
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
        }
    }
}

impl Error for NetlistError {}

/// A flat, single-output-per-cell structural netlist.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Instance>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nets: Vec::new(),
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input and returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.into(),
            driver: Driver::Input(self.inputs.len()),
        });
        self.inputs.push(id);
        id
    }

    /// Adds a cell instance driving a fresh net; returns `(cell, output
    /// net)`.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        cell: CellRef,
        inputs: Vec<NetId>,
    ) -> (CellId, NetId) {
        let name = name.into();
        let out = NetId(self.nets.len() as u32);
        let cid = CellId(self.cells.len() as u32);
        self.nets.push(Net {
            name: format!("{name}_y"),
            driver: Driver::Cell(cid),
        });
        self.cells.push(Instance {
            name,
            cell,
            inputs,
            output: out,
        });
        (cid, out)
    }

    /// Registers a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Primary input nets, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as `(name, net)` pairs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Number of cell instances.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn n_nets(&self) -> usize {
        self.nets.len()
    }

    /// The instance with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: CellId) -> &Instance {
        &self.cells[id.0 as usize]
    }

    /// Iterates over `(id, instance)` pairs in insertion order.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Instance)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.nets[id.0 as usize].name
    }

    /// Renames a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_net_name(&mut self, id: NetId, name: impl Into<String>) {
        self.nets[id.0 as usize].name = name.into();
    }

    /// The cell driving a net, if any.
    pub fn driver(&self, id: NetId) -> Option<CellId> {
        match self.nets[id.0 as usize].driver {
            Driver::Cell(c) => Some(c),
            _ => None,
        }
    }

    /// `true` iff the net is a primary input.
    pub fn is_input(&self, id: NetId) -> bool {
        matches!(self.nets[id.0 as usize].driver, Driver::Input(_))
    }

    /// If the net is a primary input, its input index.
    pub fn input_index(&self, id: NetId) -> Option<usize> {
        match self.nets[id.0 as usize].driver {
            Driver::Input(i) => Some(i),
            _ => None,
        }
    }

    /// Number of fanout references of every net (cell inputs plus primary
    /// outputs), indexed by net id.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nets.len()];
        for c in &self.cells {
            for &n in &c.inputs {
                counts[n.0 as usize] += 1;
            }
        }
        for (_, n) in &self.outputs {
            counts[n.0 as usize] += 1;
        }
        counts
    }

    /// Cell ids in topological order (every cell after its fanin drivers).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle; run
    /// [`Netlist::check`] first for a recoverable error.
    pub fn topo_cells(&self) -> Vec<CellId> {
        self.try_topo_cells().expect("combinational cycle")
    }

    fn try_topo_cells(&self) -> Result<Vec<CellId>, NetlistError> {
        let mut indeg = vec![0usize; self.cells.len()];
        let mut uses: HashMap<CellId, Vec<CellId>> = HashMap::new();
        for (id, c) in self.cells() {
            for &n in &c.inputs {
                if let Some(d) = self.driver(n) {
                    indeg[id.0 as usize] += 1;
                    uses.entry(d).or_default().push(id);
                }
            }
        }
        let mut ready: Vec<CellId> = (0..self.cells.len() as u32)
            .map(CellId)
            .filter(|c| indeg[c.0 as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.cells.len());
        while let Some(c) = ready.pop() {
            order.push(c);
            if let Some(users) = uses.get(&c) {
                for &u in users {
                    indeg[u.0 as usize] -= 1;
                    if indeg[u.0 as usize] == 0 {
                        ready.push(u);
                    }
                }
            }
        }
        if order.len() != self.cells.len() {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Total area in gate equivalents. `camo` is required when the netlist
    /// instantiates camouflaged cells.
    ///
    /// # Panics
    ///
    /// Panics if a camouflaged cell is present and `camo` is `None`.
    pub fn area_ge(&self, lib: &Library, camo: Option<&CamoLibrary>) -> f64 {
        self.cells
            .iter()
            .map(|c| match c.cell {
                CellRef::Std(id) => lib.cell(id).area_ge(),
                CellRef::Camo(id) => camo
                    .expect("camo library required for camouflaged netlist")
                    .cell(id)
                    .area_ge(),
            })
            .sum()
    }

    /// Per-cell-name instance histogram, useful for reports.
    pub fn cell_histogram(
        &self,
        lib: &Library,
        camo: Option<&CamoLibrary>,
    ) -> Vec<(String, usize)> {
        let mut map: HashMap<String, usize> = HashMap::new();
        for c in &self.cells {
            let name = match c.cell {
                CellRef::Std(id) => lib.cell(id).name().to_string(),
                CellRef::Camo(id) => format!(
                    "camo-{}",
                    camo.expect("camo library required").cell(id).name()
                ),
            };
            *map.entry(name).or_default() += 1;
        }
        let mut v: Vec<(String, usize)> = map.into_iter().collect();
        v.sort();
        v
    }

    /// Structural sanity checks: arities match the libraries, every used
    /// net is driven, no combinational cycles.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check(&self, lib: &Library) -> Result<(), NetlistError> {
        self.check_with_camo(lib, None)
    }

    /// [`Netlist::check`] for netlists that may contain camouflaged cells.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_with_camo(
        &self,
        lib: &Library,
        camo: Option<&CamoLibrary>,
    ) -> Result<(), NetlistError> {
        for c in &self.cells {
            let expected = match c.cell {
                CellRef::Std(id) => lib.cell(id).n_inputs(),
                CellRef::Camo(id) => match camo {
                    Some(camo) => camo.cell(id).n_inputs(),
                    None => continue,
                },
            };
            if c.inputs.len() != expected {
                return Err(NetlistError::ArityMismatch {
                    cell: c.name.clone(),
                    expected,
                    got: c.inputs.len(),
                });
            }
        }
        for c in &self.cells {
            for &n in &c.inputs {
                if matches!(self.nets[n.0 as usize].driver, Driver::None) {
                    return Err(NetlistError::UndrivenNet(self.net_name(n).to_string()));
                }
            }
        }
        for (_, n) in &self.outputs {
            if matches!(self.nets[n.0 as usize].driver, Driver::None) {
                return Err(NetlistError::UndrivenNet(self.net_name(*n).to_string()));
            }
        }
        self.try_topo_cells().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_cells::CellKind;

    fn lib() -> Library {
        Library::standard()
    }

    fn xor_netlist(lib: &Library) -> Netlist {
        // y = (a NAND (a NAND b)) NAND (b NAND (a NAND b)) — XOR from NAND2.
        let nand = lib.cell_by_kind(CellKind::Nand(2)).unwrap();
        let mut nl = Netlist::new("xor2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (_, ab) = nl.add_cell("u1", nand.into(), vec![a, b]);
        let (_, l) = nl.add_cell("u2", nand.into(), vec![a, ab]);
        let (_, r) = nl.add_cell("u3", nand.into(), vec![b, ab]);
        let (_, y) = nl.add_cell("u4", nand.into(), vec![l, r]);
        nl.add_output("y", y);
        nl
    }

    #[test]
    fn construction_and_queries() {
        let lib = lib();
        let nl = xor_netlist(&lib);
        assert_eq!(nl.n_cells(), 4);
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 1);
        assert!(nl.is_input(nl.inputs()[0]));
        assert_eq!(nl.input_index(nl.inputs()[1]), Some(1));
        assert!(nl.check(&lib).is_ok());
        assert_eq!(nl.area_ge(&lib, None), 4.0);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let lib = lib();
        let nl = xor_netlist(&lib);
        let order = nl.topo_cells();
        let pos: HashMap<CellId, usize> = order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for (id, c) in nl.cells() {
            for &n in &c.inputs {
                if let Some(d) = nl.driver(n) {
                    assert!(pos[&d] < pos[&id], "driver after user");
                }
            }
        }
    }

    #[test]
    fn fanout_counts_match_structure() {
        let lib = lib();
        let nl = xor_netlist(&lib);
        let counts = nl.fanout_counts();
        let a = nl.inputs()[0];
        assert_eq!(counts[a.0 as usize], 2); // u1 and u2
        let ab = nl.cell(CellId(0)).output;
        assert_eq!(counts[ab.0 as usize], 2); // u2 and u3
        let y = nl.outputs()[0].1;
        assert_eq!(counts[y.0 as usize], 1); // primary output only
    }

    #[test]
    fn check_catches_arity_mismatch() {
        let lib = lib();
        let nand = lib.cell_by_kind(CellKind::Nand(2)).unwrap();
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let (_, y) = nl.add_cell("u1", nand.into(), vec![a]); // 1 input to a NAND2
        nl.add_output("y", y);
        assert!(matches!(
            nl.check(&lib),
            Err(NetlistError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn check_catches_cycles() {
        let lib = lib();
        let inv = lib.cell_by_kind(CellKind::Inv).unwrap();
        let mut nl = Netlist::new("loop");
        // Ring of two inverters feeding each other.
        let a = nl.add_input("a");
        let (c1, y1) = nl.add_cell("u1", inv.into(), vec![a]);
        let (_, y2) = nl.add_cell("u2", inv.into(), vec![y1]);
        // Rewire u1's input to u2's output to create the cycle.
        nl.cells[c1.0 as usize].inputs[0] = y2;
        nl.add_output("y", y1);
        assert_eq!(nl.check(&lib), Err(NetlistError::CombinationalCycle));
    }

    #[test]
    fn histogram_counts_cells() {
        let lib = lib();
        let nl = xor_netlist(&lib);
        assert_eq!(
            nl.cell_histogram(&lib, None),
            vec![("NAND2".to_string(), 4)]
        );
    }

    #[test]
    fn tie_cells_have_no_inputs() {
        let lib = lib();
        let tie = lib.cell_by_kind(CellKind::Tie1).unwrap();
        let mut nl = Netlist::new("const");
        let (_, one) = nl.add_cell("t1", tie.into(), vec![]);
        nl.add_output("one", one);
        assert!(nl.check(&lib).is_ok());
    }
}
