use std::collections::{BTreeSet, HashSet};
use std::fmt;

use mvf_logic::{npn::all_permutations, TruthTable};

use crate::{CellKind, LibCellId, Library};

/// The doping state of one input pin of a camouflaged cell.
///
/// A look-alike cell is programmed at the doping level: each pin's
/// transistors can be left functional or silently stuck so the pin reads a
/// constant. All three states are indistinguishable under imaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinState {
    /// The pin behaves normally.
    Active,
    /// The pin is internally stuck at 0.
    Stuck0,
    /// The pin is internally stuck at 1.
    Stuck1,
}

/// Identifier of a cell within a [`CamoLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CamoCellId(pub u32);

/// A camouflaged look-alike cell.
///
/// The cell is visually identical to its nominal base cell, has the same
/// area, and can implement any function in its **plausible set** — the
/// closure of the nominal function under cofactoring with respect to every
/// subset of inputs and every polarity (paper §II, Fig. 1).
#[derive(Debug, Clone)]
pub struct CamoCell {
    base: LibCellId,
    kind: CellKind,
    name: String,
    n_inputs: usize,
    area_ge: f64,
    nominal: TruthTable,
    /// Distinct plausible functions, sorted for determinism.
    plausible: Vec<TruthTable>,
    /// Plausible set additionally closed under input permutation, for the
    /// O(1) pre-filter used by the matcher.
    perm_closed: HashSet<TruthTable>,
}

impl CamoCell {
    /// Builds a cell with an explicit plausible set, for obfuscation
    /// families whose choice sets are not cofactor closures (e.g. a logic-
    /// locking key gate whose plausible set is `{A, ¬A}`). The set is
    /// deduplicated and sorted so enumeration order is deterministic, and
    /// the permutation closure is derived for the matcher pre-filter.
    ///
    /// # Panics
    ///
    /// Panics if `plausible` is empty or contains a function whose arity
    /// differs from `n_inputs`.
    pub fn from_parts(
        base: LibCellId,
        kind: CellKind,
        name: impl Into<String>,
        n_inputs: usize,
        area_ge: f64,
        nominal: TruthTable,
        plausible: Vec<TruthTable>,
    ) -> Self {
        assert!(!plausible.is_empty(), "plausible set must be non-empty");
        assert!(
            plausible.iter().all(|f| f.n_vars() == n_inputs),
            "plausible function arity mismatch"
        );
        let plausible: Vec<TruthTable> = plausible
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut perm_closed = HashSet::new();
        let perms = all_permutations(n_inputs);
        for f in &plausible {
            for p in &perms {
                perm_closed.insert(f.permute(p).expect("valid permutation"));
            }
        }
        CamoCell {
            base,
            kind,
            name: name.into(),
            n_inputs,
            area_ge,
            nominal,
            plausible,
            perm_closed,
        }
    }

    fn from_lib_cell(base: LibCellId, lib: &Library) -> Self {
        let cell = lib.cell(base);
        let nominal = cell.function().clone();
        let plausible = cofactor_closure(&nominal);
        let mut perm_closed = HashSet::new();
        let perms = all_permutations(nominal.n_vars());
        for f in &plausible {
            for p in &perms {
                perm_closed.insert(f.permute(p).expect("valid permutation"));
            }
        }
        CamoCell {
            base,
            kind: cell.kind(),
            name: cell.name().to_string(),
            n_inputs: cell.n_inputs(),
            area_ge: cell.area_ge(),
            nominal,
            plausible,
            perm_closed,
        }
    }

    /// The id of the look-alike base cell in the standard library.
    pub fn base(&self) -> LibCellId {
        self.base
    }

    /// The base cell's gate family.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The base cell's name (a camouflaged cell is indistinguishable from
    /// it, so it shares the name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input pins.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Area in gate equivalents — identical to the base cell's, which is
    /// the entire point of a look-alike.
    pub fn area_ge(&self) -> f64 {
        self.area_ge
    }

    /// The nominal (undoped) function.
    pub fn nominal(&self) -> &TruthTable {
        &self.nominal
    }

    /// The distinct plausible functions, in deterministic order.
    pub fn plausible(&self) -> &[TruthTable] {
        &self.plausible
    }

    /// The function realized by a doping configuration.
    ///
    /// Stuck pins are cofactored out; the result still has full pin arity
    /// but no longer depends on stuck pins.
    ///
    /// # Panics
    ///
    /// Panics if `config.len() != n_inputs`.
    pub fn config_function(&self, config: &[PinState]) -> TruthTable {
        assert_eq!(config.len(), self.n_inputs, "config arity mismatch");
        let mut f = self.nominal.clone();
        for (pin, &st) in config.iter().enumerate() {
            match st {
                PinState::Active => {}
                PinState::Stuck0 => f = f.cofactor(pin, false),
                PinState::Stuck1 => f = f.cofactor(pin, true),
            }
        }
        f
    }

    /// Finds a doping configuration realizing `f` over the cell pins, if
    /// one exists.
    pub fn config_for(&self, f: &TruthTable) -> Option<Vec<PinState>> {
        if f.n_vars() != self.n_inputs {
            return None;
        }
        let states = [PinState::Active, PinState::Stuck0, PinState::Stuck1];
        let mut config = vec![PinState::Active; self.n_inputs];
        let total = 3usize.pow(self.n_inputs as u32);
        for code in 0..total {
            let mut c = code;
            for slot in config.iter_mut() {
                *slot = states[c % 3];
                c /= 3;
            }
            if &self.config_function(&config) == f {
                return Some(config.clone());
            }
        }
        None
    }

    /// `true` iff `f` (over the cell pins, same arity) is plausible.
    pub fn is_plausible(&self, f: &TruthTable) -> bool {
        self.plausible.contains(f)
    }

    /// Checks whether all `required` functions (over `self.n_inputs`
    /// variables, where variable `v` is subtree leaf `v`) can be made
    /// plausible simultaneously under a single pin assignment.
    ///
    /// Returns the permutation `perm` (leaf `v` connects to pin `perm[v]`)
    /// if one exists. This is the containment test of Alg. 1, line 8:
    /// `plausiblefunctions(g) ⊇ F(ts)` modulo pin ordering.
    pub fn covers(&self, required: &[TruthTable]) -> Option<Vec<usize>> {
        self.covers_with(&all_permutations(self.n_inputs), required)
    }

    /// [`CamoCell::covers`] with a caller-supplied pin-permutation table:
    /// identical decisions, but the table (one allocation per arity) can
    /// be shared across many cells and subtrees — the camouflage mapper's
    /// `CamoMatchScratch` reuse hook.
    ///
    /// `perms` must be the permutations of `0..n_inputs()` in
    /// [`all_permutations`] order for results to match [`CamoCell::covers`].
    ///
    /// # Panics
    ///
    /// Panics if a permutation's length does not match the cell arity.
    pub fn covers_with(&self, perms: &[Vec<usize>], required: &[TruthTable]) -> Option<Vec<usize>> {
        if required.is_empty() {
            return Some((0..self.n_inputs).collect());
        }
        if required[0].n_vars() != self.n_inputs {
            return None;
        }
        // Quick reject: every function must be in the permutation-closed set.
        if !required.iter().all(|f| self.perm_closed.contains(f)) {
            return None;
        }
        // Find one permutation that works for all of them simultaneously.
        'perm: for perm in perms {
            for f in required {
                let g = f.permute(perm).expect("valid permutation");
                if !self.plausible.contains(&g) {
                    continue 'perm;
                }
            }
            return Some(perm.clone());
        }
        None
    }
}

/// Closure of `f` under cofactoring on every input × polarity.
fn cofactor_closure(f: &TruthTable) -> Vec<TruthTable> {
    let mut seen: BTreeSet<TruthTable> = BTreeSet::new();
    let mut stack = vec![f.clone()];
    while let Some(g) = stack.pop() {
        if !seen.insert(g.clone()) {
            continue;
        }
        for v in 0..f.n_vars() {
            for val in [false, true] {
                let c = g.cofactor(v, val);
                if !seen.contains(&c) {
                    stack.push(c);
                }
            }
        }
    }
    seen.into_iter().collect()
}

/// A library of camouflaged look-alike cells, one per logic cell of a base
/// [`Library`] (tie cells are not camouflaged — they are already
/// constants). The camouflaged buffer is included: its plausible set
/// {A, 0, 1} absorbs select-gated wires.
#[derive(Debug, Clone)]
pub struct CamoLibrary {
    cells: Vec<CamoCell>,
}

impl CamoLibrary {
    /// Derives the camouflaged variants of every logic cell in `lib`
    /// (everything except the tie cells).
    pub fn from_library(lib: &Library) -> Self {
        let mut cells = Vec::new();
        for (id, cell) in lib.iter() {
            match cell.kind() {
                CellKind::Tie0 | CellKind::Tie1 => continue,
                _ => cells.push(CamoCell::from_lib_cell(id, lib)),
            }
        }
        CamoLibrary { cells }
    }

    /// Builds a library from an explicit cell list (ids are assigned in
    /// order), for obfuscation families with hand-constructed choice sets.
    pub fn from_cells(cells: Vec<CamoCell>) -> Self {
        CamoLibrary { cells }
    }

    /// Number of camouflaged cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` iff the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: CamoCellId) -> &CamoCell {
        &self.cells[id.0 as usize]
    }

    /// Looks a cell up by (base-cell) name.
    pub fn cell_by_name(&self, name: &str) -> Option<&CamoCell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CamoCellId, &CamoCell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CamoCellId(i as u32), c))
    }

    /// Cells with exactly `n` input pins.
    pub fn cells_with_arity(&self, n: usize) -> impl Iterator<Item = (CamoCellId, &CamoCell)> {
        self.iter().filter(move |(_, c)| c.n_inputs == n)
    }
}

impl fmt::Display for CamoCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "camo-{} ({} plausible fns)",
            self.name,
            self.plausible.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camo(name: &str) -> CamoCell {
        let lib = Library::standard();
        CamoLibrary::from_library(&lib)
            .cell_by_name(name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .clone()
    }

    #[test]
    fn fig1b_nand2_plausible_set() {
        // The paper's Fig. 1b: camo NAND2 ∈ {¬(AB), ¬A, ¬B, 0, 1}.
        let cell = camo("NAND2");
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let expect: BTreeSet<TruthTable> = [
            a.and(&b).not(),
            a.not(),
            b.not(),
            TruthTable::zero(2),
            TruthTable::one(2),
        ]
        .into_iter()
        .collect();
        let got: BTreeSet<TruthTable> = cell.plausible().iter().cloned().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn and2_plausible_set() {
        let cell = camo("AND2");
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        // Both pins stuck at 1 realizes constant 1, so the closure holds
        // five functions, mirroring Fig. 1b's five for NAND2.
        let expect: BTreeSet<TruthTable> = [
            a.and(&b),
            a.clone(),
            b.clone(),
            TruthTable::zero(2),
            TruthTable::one(2),
        ]
        .into_iter()
        .collect();
        let got: BTreeSet<TruthTable> = cell.plausible().iter().cloned().collect();
        assert_eq!(got, expect);
        // AND2 can realize a bare wire to either pin: the mux-absorption
        // property Phase III exploits.
        assert!(cell.is_plausible(&a));
        assert!(cell.is_plausible(&b));
    }

    #[test]
    fn inv_plausible_set() {
        let cell = camo("INV");
        assert_eq!(cell.plausible().len(), 3); // ¬A, 0, 1
        assert!(cell.is_plausible(&TruthTable::var(0, 1).not()));
        assert!(cell.is_plausible(&TruthTable::zero(1)));
        assert!(cell.is_plausible(&TruthTable::one(1)));
    }

    #[test]
    fn config_function_matches_cofactors() {
        let cell = camo("NAND2");
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        assert_eq!(
            cell.config_function(&[PinState::Active, PinState::Stuck1]),
            a.not()
        );
        assert_eq!(
            cell.config_function(&[PinState::Stuck0, PinState::Active]),
            TruthTable::one(2)
        );
        assert_eq!(
            cell.config_function(&[PinState::Stuck1, PinState::Stuck1]),
            TruthTable::zero(2)
        );
        assert_eq!(
            cell.config_function(&[PinState::Active, PinState::Active]),
            a.and(&b).not()
        );
    }

    #[test]
    fn config_for_finds_every_plausible_function() {
        for name in ["NAND2", "NOR3", "AND4", "OR2", "INV"] {
            let cell = camo(name);
            for f in cell.plausible() {
                let cfg = cell
                    .config_for(f)
                    .unwrap_or_else(|| panic!("{name}: no config for {f:?}"));
                assert_eq!(&cell.config_function(&cfg), f);
            }
        }
    }

    #[test]
    fn config_for_rejects_non_plausible() {
        let cell = camo("NAND2");
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        assert!(cell.config_for(&a.xor(&b)).is_none());
        assert!(cell.config_for(&a.and(&b)).is_none()); // AND is not plausible for NAND
    }

    #[test]
    fn covers_mux_requirement_with_and2() {
        // A 2:1 mux under select abstraction requires {leaf0, leaf1}.
        let need = vec![TruthTable::var(0, 2), TruthTable::var(1, 2)];
        let cell = camo("AND2");
        assert!(cell.covers(&need).is_some());
        // NAND2 cannot: its plausible set has only inverted literals.
        assert!(camo("NAND2").covers(&need).is_none());
        // OR2 can as well ({A+B, A, B, 1} ⊇ {A, B}).
        assert!(camo("OR2").covers(&need).is_some());
    }

    #[test]
    fn covers_finds_consistent_permutation() {
        // Require {¬leaf1} only: NAND2 covers it by wiring leaf1 to a pin
        // and sticking the other pin at 1.
        let need = vec![TruthTable::var(1, 2).not()];
        let cell = camo("NAND2");
        let perm = cell.covers(&need).expect("should cover");
        let g = need[0].permute(&perm).unwrap();
        assert!(cell.is_plausible(&g));
    }

    #[test]
    fn covers_rejects_mixed_impossible_sets() {
        // {A·B, A+B} requires both AND and OR plausible in one cell: none
        // of the doping variants provides that.
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let need = vec![a.and(&b), a.or(&b)];
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        for (_, cell) in camo.cells_with_arity(2) {
            assert!(
                cell.covers(&need).is_none(),
                "{} unexpectedly covers",
                cell.name()
            );
        }
    }

    #[test]
    fn library_skips_ties_only() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        assert!(camo.cell_by_name("TIE0").is_none());
        assert!(camo.cell_by_name("TIE1").is_none());
        assert_eq!(camo.len(), 14); // INV + BUF + 12 multi-input gates
    }

    #[test]
    fn buf_plausible_set_absorbs_select_gating() {
        let cell = camo("BUF");
        let a = TruthTable::var(0, 1);
        let got: BTreeSet<TruthTable> = cell.plausible().iter().cloned().collect();
        let expect: BTreeSet<TruthTable> = [a, TruthTable::zero(1), TruthTable::one(1)]
            .into_iter()
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn plausible_sets_are_cofactor_closed() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        for (_, cell) in camo.iter() {
            for f in cell.plausible() {
                for v in 0..cell.n_inputs() {
                    for val in [false, true] {
                        assert!(
                            cell.is_plausible(&f.cofactor(v, val)),
                            "{} not closed",
                            cell.name()
                        );
                    }
                }
            }
        }
    }
}
