use std::fmt;

use mvf_logic::TruthTable;

/// The gate families of the base standard-cell library.
///
/// This is exactly the set the paper's ABC script maps to: "inverters,
/// buffers, and 2-4 input NAND, NOR, AND, OR gates", plus tie cells used to
/// realize constant nets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter (1 input).
    Inv,
    /// Buffer (1 input).
    Buf,
    /// `¬(a·b·…)` with the given fan-in (2–4).
    Nand(u8),
    /// `¬(a+b+…)` with the given fan-in (2–4).
    Nor(u8),
    /// `a·b·…` with the given fan-in (2–4).
    And(u8),
    /// `a+b+…` with the given fan-in (2–4).
    Or(u8),
    /// Constant 0 driver (0 inputs).
    Tie0,
    /// Constant 1 driver (0 inputs).
    Tie1,
}

impl CellKind {
    /// Number of input pins.
    pub fn n_inputs(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand(n) | CellKind::Nor(n) | CellKind::And(n) | CellKind::Or(n) => n as usize,
            CellKind::Tie0 | CellKind::Tie1 => 0,
        }
    }

    /// The nominal logic function over the cell's pins (pin `i` = variable `i`).
    pub fn function(self) -> TruthTable {
        let n = self.n_inputs();
        match self {
            CellKind::Inv => TruthTable::var(0, 1).not(),
            CellKind::Buf => TruthTable::var(0, 1),
            CellKind::And(_) => and_all(n),
            CellKind::Nand(_) => and_all(n).not(),
            CellKind::Or(_) => or_all(n),
            CellKind::Nor(_) => or_all(n).not(),
            CellKind::Tie0 => TruthTable::zero(0),
            CellKind::Tie1 => TruthTable::one(0),
        }
    }

    /// Conventional cell name (`NAND3`, `INV`, …).
    pub fn name(self) -> String {
        match self {
            CellKind::Inv => "INV".to_string(),
            CellKind::Buf => "BUF".to_string(),
            CellKind::Nand(n) => format!("NAND{n}"),
            CellKind::Nor(n) => format!("NOR{n}"),
            CellKind::And(n) => format!("AND{n}"),
            CellKind::Or(n) => format!("OR{n}"),
            CellKind::Tie0 => "TIE0".to_string(),
            CellKind::Tie1 => "TIE1".to_string(),
        }
    }

    /// Area in gate equivalents (NAND2 ≡ 1.0 GE).
    ///
    /// Ratios follow typical commercial standard-cell libraries (e.g. the
    /// UMC/TSMC 90–180 nm libraries commonly used for GE figures in the
    /// lightweight-crypto literature the paper draws its ~30 GE-per-S-box
    /// anchor from).
    pub fn area_ge(self) -> f64 {
        match self {
            CellKind::Inv => 0.67,
            CellKind::Buf => 1.0,
            CellKind::Nand(2) | CellKind::Nor(2) => 1.0,
            CellKind::Nand(3) | CellKind::Nor(3) => 1.33,
            CellKind::Nand(4) | CellKind::Nor(4) => 1.67,
            CellKind::And(2) | CellKind::Or(2) => 1.33,
            CellKind::And(3) | CellKind::Or(3) => 1.67,
            CellKind::And(4) | CellKind::Or(4) => 2.0,
            CellKind::Tie0 | CellKind::Tie1 => 0.33,
            // Fan-ins outside 2–4 are not part of the library.
            CellKind::Nand(n) | CellKind::Nor(n) | CellKind::And(n) | CellKind::Or(n) => {
                panic!("unsupported fan-in {n}")
            }
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

fn and_all(n: usize) -> TruthTable {
    let mut t = TruthTable::one(n);
    for v in 0..n {
        t = t.and(&TruthTable::var(v, n));
    }
    t
}

fn or_all(n: usize) -> TruthTable {
    let mut t = TruthTable::zero(n);
    for v in 0..n {
        t = t.or(&TruthTable::var(v, n));
    }
    t
}

/// Identifier of a cell within a [`Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LibCellId(pub u32);

/// One standard cell: kind, function and area.
#[derive(Debug, Clone)]
pub struct LibCell {
    kind: CellKind,
    name: String,
    function: TruthTable,
    area_ge: f64,
}

impl LibCell {
    /// The cell's gate family.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The cell's name (`NAND2`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nominal function over the cell pins.
    pub fn function(&self) -> &TruthTable {
        &self.function
    }

    /// Number of input pins.
    pub fn n_inputs(&self) -> usize {
        self.kind.n_inputs()
    }

    /// Area in gate equivalents.
    pub fn area_ge(&self) -> f64 {
        self.area_ge
    }
}

/// A standard-cell library: an indexed collection of [`LibCell`]s.
///
/// # Example
///
/// ```
/// use mvf_cells::Library;
///
/// let lib = Library::standard();
/// let nand2 = lib.cell_by_name("NAND2").expect("present");
/// assert_eq!(lib.cell(nand2).area_ge(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Library {
    cells: Vec<LibCell>,
}

impl Library {
    /// The paper's base library: INV, BUF, NAND2–4, NOR2–4, AND2–4, OR2–4,
    /// TIE0, TIE1.
    pub fn standard() -> Self {
        let mut kinds = vec![CellKind::Inv, CellKind::Buf, CellKind::Tie0, CellKind::Tie1];
        for n in 2..=4u8 {
            kinds.push(CellKind::Nand(n));
            kinds.push(CellKind::Nor(n));
            kinds.push(CellKind::And(n));
            kinds.push(CellKind::Or(n));
        }
        Library {
            cells: kinds
                .into_iter()
                .map(|kind| LibCell {
                    kind,
                    name: kind.name(),
                    function: kind.function(),
                    area_ge: kind.area_ge(),
                })
                .collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` iff the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: LibCellId) -> &LibCell {
        &self.cells[id.0 as usize]
    }

    /// Looks a cell up by name.
    pub fn cell_by_name(&self, name: &str) -> Option<LibCellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(|i| LibCellId(i as u32))
    }

    /// Looks a cell up by kind.
    pub fn cell_by_kind(&self, kind: CellKind) -> Option<LibCellId> {
        self.cells
            .iter()
            .position(|c| c.kind == kind)
            .map(|i| LibCellId(i as u32))
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LibCellId, &LibCell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (LibCellId(i as u32), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_functions_are_correct() {
        // NAND3 truth: 0 only at m = 0b111.
        let f = CellKind::Nand(3).function();
        for m in 0..8 {
            assert_eq!(f.get(m), m != 7, "m={m}");
        }
        // NOR2 truth: 1 only at m = 0.
        let f = CellKind::Nor(2).function();
        for m in 0..4 {
            assert_eq!(f.get(m), m == 0);
        }
        assert!(CellKind::Tie1.function().is_one());
        assert!(CellKind::Tie0.function().is_zero());
        assert_eq!(CellKind::Inv.function(), TruthTable::var(0, 1).not());
    }

    #[test]
    fn ge_normalization() {
        assert_eq!(CellKind::Nand(2).area_ge(), 1.0);
        assert!(CellKind::Inv.area_ge() < 1.0);
        assert!(CellKind::And(4).area_ge() > CellKind::And(2).area_ge());
    }

    #[test]
    fn standard_library_contents() {
        let lib = Library::standard();
        assert_eq!(lib.len(), 16);
        for name in [
            "INV", "BUF", "TIE0", "TIE1", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
            "AND2", "AND3", "AND4", "OR2", "OR3", "OR4",
        ] {
            let id = lib
                .cell_by_name(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(lib.cell(id).name(), name);
        }
        assert!(lib.cell_by_name("XOR2").is_none());
    }

    #[test]
    fn lookup_by_kind() {
        let lib = Library::standard();
        let id = lib.cell_by_kind(CellKind::Or(3)).unwrap();
        assert_eq!(lib.cell(id).n_inputs(), 3);
        assert_eq!(lib.cell(id).kind(), CellKind::Or(3));
    }
}
