//! Standard-cell and camouflaged-cell libraries.
//!
//! The paper's setting (§II) uses doping-programmable look-alike cells: by
//! silently sticking any subset of a nominal cell's inputs at 0 or 1, the
//! fabricated cell implements any *cofactor* of its nominal function — while
//! remaining visually identical to the nominal cell under delayering and
//! imaging. The set of functions reachable this way is the cell's
//! **plausible-function set** (Fig. 1b: a camouflaged NAND2 may implement
//! `¬(A·B)`, `¬A`, `¬B`, `0` or `1`).
//!
//! This crate provides:
//!
//! * [`CellKind`] / [`LibCell`] / [`Library`] — the base standard-cell
//!   library the synthesizer maps to (INV, BUF, NAND/NOR/AND/OR with 2–4
//!   inputs, tie cells), with areas in gate equivalents (GE, NAND2 ≡ 1.0).
//! * [`CamoCell`] / [`CamoLibrary`] — camouflaged look-alike variants whose
//!   plausible sets are the cofactor closure of the nominal function, and
//!   the pin-permutation matcher used by the camouflage technology mapper
//!   (Alg. 1 of the paper).
//!
//! # Example
//!
//! ```
//! use mvf_cells::{CamoLibrary, Library};
//!
//! let lib = Library::standard();
//! let camo = CamoLibrary::from_library(&lib);
//! let nand2 = camo.cell_by_name("NAND2").expect("NAND2 exists");
//! // Fig. 1b: exactly five plausible functions.
//! assert_eq!(nand2.plausible().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod camo;
mod library;

pub use camo::{CamoCell, CamoCellId, CamoLibrary, PinState};
pub use library::{CellKind, LibCell, LibCellId, Library};
