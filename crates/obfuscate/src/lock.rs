//! The logic-locking family: XOR/XNOR and MUX key gates behind the
//! [`ObfuscationSpace`](crate::ObfuscationSpace) seam.
//!
//! Logic locking inserts **key gates** on internal wires: an XOR (or
//! XNOR) gate whose second input is a key bit passes the wire through or
//! inverts it; a 2:1 MUX whose select is a key bit forwards either the
//! original wire or a decoy signal. Under the correct key the circuit
//! computes its original function; under a wrong key it computes
//! something else. From the adversary's seat each key gate is a
//! **one-site discrete choice** — `{A, ¬A}` for an XOR/XNOR site, the
//! two data projections for a MUX site — which is exactly the shape the
//! attack stack already quantifies over for camouflage. The key gates
//! are therefore carried as look-alike cells in a dedicated
//! [`CamoLibrary`] ([`lock_library`]), and the whole screen/SAT/NPN/
//! session machinery applies unchanged.
//!
//! The inserter ([`lock_netlist`]) is deterministic in `(netlist,
//! options)`: same seed, same sites, same decoys, same key — so audits,
//! checkpoints and test corpora reproduce bit-identically.

use std::collections::HashMap;
use std::fmt;

use mvf_cells::{CamoCell, CamoCellId, CamoLibrary, CellKind, Library};
use mvf_logic::TruthTable;
use mvf_netlist::{CellId, CellRef, NetId, Netlist};

/// Name of the XOR/XNOR key-gate cell in a lock library.
pub const XKEY_NAME: &str = "XKEY";
/// Name of the MUX key-gate cell in a lock library.
pub const MKEY_NAME: &str = "MKEY";

/// One SplitMix64 step (same constants as the workload seeding), so key
/// material and site selection are pure functions of the seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The flavor of an inserted key gate.
///
/// XOR and XNOR share the choice set `{A, ¬A}`; the flavor fixes which
/// key-bit *value* selects the pass-through function (`0` for XOR, `1`
/// for XNOR), which is how real lockers keep the correct key from being
/// readable off the gate types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockGate {
    /// `w ⊕ k`: key bit 0 passes the wire through.
    Xor,
    /// `¬(w ⊕ k)`: key bit 1 passes the wire through.
    Xnor,
    /// 2:1 MUX over `(pin0, pin1)`: the key bit selects the pin; the
    /// pin carrying the true wire was placed at the correct key bit's
    /// index by the inserter.
    Mux,
}

/// One inserted key gate: the cell instance in the locked netlist and
/// its flavor. Site `i` of [`LockedNetlist::sites`] consumes key bit `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockSite {
    /// The key-gate cell in the locked netlist.
    pub cell: CellId,
    /// Gate flavor (fixes the key-bit semantics).
    pub gate: LockGate,
}

/// Options for the keyed inserter.
#[derive(Debug, Clone, Copy)]
pub struct LockOptions {
    /// Number of XOR/XNOR key gates to insert.
    pub n_xor: usize,
    /// Number of MUX key gates to insert.
    pub n_mux: usize,
    /// Seed for site selection, decoy choice and key material.
    pub seed: u64,
}

impl Default for LockOptions {
    fn default() -> Self {
        LockOptions {
            n_xor: 4,
            n_mux: 2,
            seed: 0x10C4_ED00_0000_0001,
        }
    }
}

/// Why locking a netlist failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The input netlist already contains obfuscated (camouflaged) cells.
    AlreadyObfuscated(String),
    /// The lock library is missing a required key-gate cell.
    MissingKeyCell(&'static str),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::AlreadyObfuscated(cell) => {
                write!(
                    f,
                    "cell {cell} is already obfuscated; lock a standard netlist"
                )
            }
            LockError::MissingKeyCell(name) => {
                write!(f, "lock library has no {name} cell")
            }
        }
    }
}

impl std::error::Error for LockError {}

/// A locked netlist with its correct key and site map.
#[derive(Debug, Clone)]
pub struct LockedNetlist {
    /// The netlist with key gates inserted (key gates are `Camo` cells
    /// indexing the lock library).
    pub netlist: Netlist,
    /// The correct key, one bit per site.
    pub key: Vec<bool>,
    /// The inserted key gates, in insertion (topological) order.
    pub sites: Vec<LockSite>,
    /// How many leading sites bind former select inputs
    /// ([`lock_merged_netlist`]): key bits `0..n_selects` *are* the
    /// select value, so every viable function of a merged circuit stays
    /// one key away. `0` for plain [`lock_netlist`] locking.
    pub n_selects: usize,
}

impl LockedNetlist {
    /// Number of key bits.
    pub fn key_bits(&self) -> usize {
        self.key.len()
    }

    /// The correct key realizing viable function `j` of a merged-circuit
    /// lock: the select-site bits carry `j` (little-endian), every other
    /// bit keeps its correct value.
    ///
    /// # Panics
    ///
    /// Panics if `j` does not fit the select sites.
    pub fn key_for_select(&self, j: usize) -> Vec<bool> {
        assert!(
            self.n_selects == usize::BITS as usize || j >> self.n_selects == 0,
            "select value {j} does not fit {} select sites",
            self.n_selects
        );
        let mut key = self.key.clone();
        for (b, bit) in key.iter_mut().take(self.n_selects).enumerate() {
            *bit = (j >> b) & 1 == 1;
        }
        key
    }

    /// The per-site configuration realized by `key`: what the circuit
    /// computes when that key is loaded. This is the bridge between the
    /// key space and the choice space the attack stack enumerates.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != self.key_bits()`.
    pub fn config_for_key(&self, key: &[bool]) -> HashMap<CellId, TruthTable> {
        assert_eq!(key.len(), self.sites.len(), "key width mismatch");
        let wire = TruthTable::var(0, 1);
        self.sites
            .iter()
            .zip(key)
            .map(|(site, &k)| {
                let f = match site.gate {
                    LockGate::Xor => {
                        if k {
                            wire.not()
                        } else {
                            wire.clone()
                        }
                    }
                    LockGate::Xnor => {
                        if k {
                            wire.clone()
                        } else {
                            wire.not()
                        }
                    }
                    LockGate::Mux => TruthTable::var(usize::from(k), 2),
                };
                (site.cell, f)
            })
            .collect()
    }

    /// The configuration under the correct key (the one that restores
    /// the original function).
    pub fn correct_config(&self) -> HashMap<CellId, TruthTable> {
        self.config_for_key(&self.key)
    }
}

/// Builds the key-gate library: `XKEY` (1 input, choice set `{A, ¬A}`)
/// and `MKEY` (2 inputs, choice set `{pin 0, pin 1}`). Base-cell ids
/// point at the standard cells the key gates masquerade as for area
/// accounting.
pub fn lock_library(lib: &Library) -> CamoLibrary {
    let buf = lib
        .cell_by_kind(CellKind::Buf)
        .expect("standard library has BUF");
    let and2 = lib
        .cell_by_kind(CellKind::And(2))
        .expect("standard library has AND2");
    let wire = TruthTable::var(0, 1);
    let xkey = CamoCell::from_parts(
        buf,
        CellKind::Buf,
        XKEY_NAME,
        1,
        1.5, // an XOR2 footprint in GE, the gate it stands in for
        wire.clone(),
        vec![wire.clone(), wire.not()],
    );
    let mkey = CamoCell::from_parts(
        and2,
        CellKind::And(2),
        MKEY_NAME,
        2,
        1.75, // a MUX2 footprint in GE
        TruthTable::var(0, 2),
        vec![TruthTable::var(0, 2), TruthTable::var(1, 2)],
    );
    CamoLibrary::from_cells(vec![xkey, mkey])
}

fn key_cell(lock: &CamoLibrary, name: &'static str) -> Result<CamoCellId, LockError> {
    lock.iter()
        .find(|(_, c)| c.name() == name)
        .map(|(id, _)| id)
        .ok_or(LockError::MissingKeyCell(name))
}

/// Inserts `opts.n_xor` XOR/XNOR and `opts.n_mux` MUX key gates into a
/// standard-cell netlist, deterministically in `(netlist, opts)`.
///
/// Sites are drawn without replacement from the internal wires (cell
/// outputs) by a seeded Fisher–Yates pass; if the netlist has fewer
/// wires than requested gates, every wire is locked. The netlist is
/// rebuilt in topological order, each locked wire's fanout (later cells
/// and primary outputs) re-pointed at the key gate's output. MUX decoys
/// are drawn from the signals already defined at the insertion point
/// (primary inputs and earlier outputs), which structurally rules out
/// combinational cycles; a MUX site with no available decoy degrades to
/// an XOR/XNOR site.
///
/// # Errors
///
/// [`LockError`] if the input netlist already contains obfuscated cells
/// or the lock library lacks the key-gate cells.
pub fn lock_netlist(
    nl: &Netlist,
    lock: &CamoLibrary,
    opts: &LockOptions,
) -> Result<LockedNetlist, LockError> {
    lock_impl(nl, None, lock, &[], opts)
}

/// Locks a standard-mapped **merged** circuit: every select input is
/// bound through a key gate (a tie-low wire into an `XKEY` site, whose
/// `{0, 1}` choice *is* the select bit), then `opts.n_xor` + `opts.n_mux`
/// ordinary key gates are inserted exactly as [`lock_netlist`] would.
///
/// The result has only the data inputs as primary inputs — the same
/// interface shape camouflage mapping produces — and key bits
/// `0..select_inputs.len()` carry the select value: viable function `j`
/// is realized under [`LockedNetlist::key_for_select`]`(j)`, so a merged
/// circuit's multiple-viable-function property survives locking.
///
/// `select_inputs` are positions into `nl.inputs()` (a merged circuit's
/// [`select_indices`](mvf_netlist::Netlist) as mapped). `lib` supplies
/// the `TIE0` cell the select binders hang off.
///
/// # Errors
///
/// As [`lock_netlist`], plus a missing `TIE0` in the standard library.
///
/// # Panics
///
/// Panics if a select position is out of range of `nl.inputs()`.
pub fn lock_merged_netlist(
    nl: &Netlist,
    lib: &Library,
    lock: &CamoLibrary,
    select_inputs: &[usize],
    opts: &LockOptions,
) -> Result<LockedNetlist, LockError> {
    lock_impl(nl, Some(lib), lock, select_inputs, opts)
}

fn lock_impl(
    nl: &Netlist,
    lib: Option<&Library>,
    lock: &CamoLibrary,
    select_inputs: &[usize],
    opts: &LockOptions,
) -> Result<LockedNetlist, LockError> {
    let xkey = key_cell(lock, XKEY_NAME)?;
    let mkey = key_cell(lock, MKEY_NAME)?;
    for (_, c) in nl.cells() {
        if matches!(c.cell, CellRef::Camo(_)) {
            return Err(LockError::AlreadyObfuscated(c.name.clone()));
        }
    }
    let tie0 = match (select_inputs.is_empty(), lib) {
        (true, _) => None,
        (false, Some(lib)) => Some(
            lib.cell_by_kind(CellKind::Tie0)
                .ok_or(LockError::MissingKeyCell("TIE0"))?,
        ),
        (false, None) => return Err(LockError::MissingKeyCell("TIE0")),
    };
    let mut rng = opts.seed;
    let mut draw = |bound: usize| -> usize {
        rng = splitmix64(rng);
        (rng % bound.max(1) as u64) as usize
    };

    // Seeded Fisher–Yates over the cell indices; the first n_xor picks
    // become XOR/XNOR sites, the next n_mux picks MUX sites.
    let n_cells = nl.n_cells();
    let mut picks: Vec<usize> = (0..n_cells).collect();
    for i in (1..n_cells).rev() {
        picks.swap(i, draw(i + 1));
    }
    let n_xor = opts.n_xor.min(n_cells);
    let n_mux = opts.n_mux.min(n_cells - n_xor);
    let mut flavor_of: HashMap<usize, LockGate> = HashMap::new();
    for &cell in &picks[..n_xor] {
        flavor_of.insert(cell, LockGate::Xor); // flavor finalized at insertion
    }
    for &cell in &picks[n_xor..n_xor + n_mux] {
        flavor_of.insert(cell, LockGate::Mux);
    }

    let select_set: std::collections::HashSet<usize> = select_inputs.iter().copied().collect();
    let mut out = Netlist::new(nl.name());
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    let mut defined: Vec<NetId> = Vec::new(); // decoy pool, new-net ids
    for (p, &pi) in nl.inputs().iter().enumerate() {
        if select_set.contains(&p) {
            continue;
        }
        let new = out.add_input(nl.net_name(pi));
        map.insert(pi, new);
        defined.push(new);
    }
    let mut key = Vec::new();
    let mut sites = Vec::new();
    // Select binders first: key bit `b` is select bit `b`, nominally 0
    // (viable function 0). An XKEY over a tie-low wire realizes exactly
    // {0, 1}, and its Xor key semantics (k=0 passes the 0 through) make
    // the key bit equal the select value with no special casing.
    for (b, &p) in select_inputs.iter().enumerate() {
        let old = nl.inputs()[p];
        let (_, t) = out.add_cell(
            format!("sel_t{b}"),
            CellRef::Std(tie0.expect("checked above")),
            vec![],
        );
        let (c, y) = out.add_cell(format!("sel_k{b}"), CellRef::Camo(xkey), vec![t]);
        map.insert(old, y);
        defined.push(y);
        key.push(false);
        sites.push(LockSite {
            cell: c,
            gate: LockGate::Xor,
        });
    }
    for cid in nl.topo_cells() {
        let inst = nl.cell(cid);
        let inputs: Vec<NetId> = inst.inputs.iter().map(|n| map[n]).collect();
        let (_, w) = out.add_cell(inst.name.clone(), inst.cell, inputs);
        let mut locked = w;
        if let Some(&flavor) = flavor_of.get(&(cid.0 as usize)) {
            let k = draw(2) == 1;
            let site_name = format!("lk{}", sites.len());
            let decoy = (flavor == LockGate::Mux && !defined.is_empty())
                .then(|| defined[draw(defined.len())]);
            let (gate, cell) = match decoy {
                Some(d) => {
                    // Keyed pin swap: the true wire sits at pin `k`, so
                    // the correct key bit selects it.
                    let pins = if k { vec![d, w] } else { vec![w, d] };
                    let (c, y) = out.add_cell(site_name, CellRef::Camo(mkey), pins);
                    locked = y;
                    (LockGate::Mux, c)
                }
                None => {
                    // XOR passes the wire at k=0, XNOR at k=1: pick the
                    // flavor that makes the drawn bit the correct one.
                    let gate = if k { LockGate::Xnor } else { LockGate::Xor };
                    let (c, y) = out.add_cell(site_name, CellRef::Camo(xkey), vec![w]);
                    locked = y;
                    (gate, c)
                }
            };
            key.push(k);
            sites.push(LockSite { cell, gate });
        }
        map.insert(inst.output, locked);
        defined.push(locked);
    }
    for (name, net) in nl.outputs() {
        out.add_output(name.clone(), map[net]);
    }
    Ok(LockedNetlist {
        netlist: out,
        key,
        sites,
        n_selects: select_inputs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_sim::{eval_camo_netlist, eval_netlist};

    fn xor_netlist(lib: &Library) -> Netlist {
        let nand = lib.cell_by_kind(CellKind::Nand(2)).unwrap();
        let mut nl = Netlist::new("xor2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (_, ab) = nl.add_cell("u1", nand.into(), vec![a, b]);
        let (_, l) = nl.add_cell("u2", nand.into(), vec![a, ab]);
        let (_, r) = nl.add_cell("u3", nand.into(), vec![b, ab]);
        let (_, y) = nl.add_cell("u4", nand.into(), vec![l, r]);
        nl.add_output("y", y);
        nl
    }

    #[test]
    fn lock_library_choice_sets() {
        let lib = Library::standard();
        let lock = lock_library(&lib);
        let xkey = lock.cell_by_name(XKEY_NAME).unwrap();
        assert_eq!(xkey.plausible().len(), 2);
        assert!(xkey.is_plausible(&TruthTable::var(0, 1)));
        assert!(xkey.is_plausible(&TruthTable::var(0, 1).not()));
        let mkey = lock.cell_by_name(MKEY_NAME).unwrap();
        assert_eq!(mkey.plausible().len(), 2);
        assert!(mkey.is_plausible(&TruthTable::var(0, 2)));
        assert!(mkey.is_plausible(&TruthTable::var(1, 2)));
    }

    #[test]
    fn inserter_is_deterministic_and_sized() {
        let lib = Library::standard();
        let lock = lock_library(&lib);
        let nl = xor_netlist(&lib);
        let opts = LockOptions {
            n_xor: 2,
            n_mux: 1,
            seed: 42,
        };
        let a = lock_netlist(&nl, &lock, &opts).unwrap();
        let b = lock_netlist(&nl, &lock, &opts).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.key_bits(), 3);
        assert_eq!(a.netlist.n_cells(), nl.n_cells() + 3);
        let other = lock_netlist(&nl, &lock, &LockOptions { seed: 43, ..opts }).unwrap();
        assert!(
            other.key != a.key || {
                use mvf_netlist::fingerprint::fingerprint_netlist;
                fingerprint_netlist(&other.netlist) != fingerprint_netlist(&a.netlist)
            },
            "different seeds should pick different sites or keys"
        );
    }

    #[test]
    fn correct_key_restores_the_function_wrong_keys_may_not() {
        let lib = Library::standard();
        let lock = lock_library(&lib);
        let nl = xor_netlist(&lib);
        let locked = lock_netlist(
            &nl,
            &lock,
            &LockOptions {
                n_xor: 3,
                n_mux: 1,
                seed: 7,
            },
        )
        .unwrap();
        locked
            .netlist
            .check_with_camo(&lib, Some(&lock))
            .expect("locked netlist is well-formed");
        let want = eval_netlist(&nl, &lib);
        let got = eval_camo_netlist(&locked.netlist, &lib, &lock, &locked.correct_config())
            .expect("correct config is plausible");
        assert_eq!(got, want, "correct key must restore the function");
        // Flip each key bit and check at least one flip changes the
        // function (decoy muxes can coincide on some wires).
        let mut any_wrong_differs = false;
        for flip in 0..locked.key_bits() {
            let mut k = locked.key.clone();
            k[flip] = !k[flip];
            let cfg = locked.config_for_key(&k);
            let got = eval_camo_netlist(&locked.netlist, &lib, &lock, &cfg).unwrap();
            if got != want {
                any_wrong_differs = true;
            }
        }
        assert!(any_wrong_differs, "a single-bit key flip never mattered");
    }

    /// A hand-merged two-function circuit: `sel` picks between `a·b` and
    /// `a+b` through a gate-level 2:1 mux, mimicking what the flow's
    /// standard mapping of a merged circuit looks like.
    fn merged_netlist(lib: &Library) -> Netlist {
        let inv = lib.cell_by_kind(CellKind::Inv).unwrap();
        let and2 = lib.cell_by_kind(CellKind::And(2)).unwrap();
        let or2 = lib.cell_by_kind(CellKind::Or(2)).unwrap();
        let mut nl = Netlist::new("merged2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let sel = nl.add_input("sel0");
        let (_, f0) = nl.add_cell("f0", and2.into(), vec![a, b]);
        let (_, f1) = nl.add_cell("f1", or2.into(), vec![a, b]);
        let (_, ns) = nl.add_cell("ns", inv.into(), vec![sel]);
        let (_, t0) = nl.add_cell("t0", and2.into(), vec![f0, ns]);
        let (_, t1) = nl.add_cell("t1", and2.into(), vec![f1, sel]);
        let (_, y) = nl.add_cell("y", or2.into(), vec![t0, t1]);
        nl.add_output("y", y);
        nl
    }

    #[test]
    fn merged_lock_binds_selects_and_keeps_every_function_reachable() {
        let lib = Library::standard();
        let lock = lock_library(&lib);
        let nl = merged_netlist(&lib);
        let opts = LockOptions {
            n_xor: 2,
            n_mux: 1,
            seed: 5,
        };
        let locked = lock_merged_netlist(&nl, &lib, &lock, &[2], &opts).unwrap();
        let again = lock_merged_netlist(&nl, &lib, &lock, &[2], &opts).unwrap();
        assert_eq!(locked.key, again.key);
        assert_eq!(locked.sites, again.sites);
        // The select input is gone from the interface; its value moved
        // into key bit 0.
        assert_eq!(locked.netlist.inputs().len(), 2);
        assert_eq!(locked.n_selects, 1);
        assert_eq!(locked.key_bits(), 1 + 3);
        assert_eq!(locked.sites[0].gate, LockGate::Xor);
        assert!(!locked.key[0], "nominal key selects function 0");
        locked
            .netlist
            .check_with_camo(&lib, Some(&lock))
            .expect("locked merged netlist is well-formed");
        // Every viable function stays reachable under its select key —
        // the multiple-viable-function property survives locking.
        let expect = [CellKind::And(2).function(), CellKind::Or(2).function()];
        for (j, want) in expect.iter().enumerate() {
            let cfg = locked.config_for_key(&locked.key_for_select(j));
            let got = eval_camo_netlist(&locked.netlist, &lib, &lock, &cfg)
                .expect("select keys are plausible");
            assert_eq!(&got, &vec![want.clone()], "function {j} under its key");
        }
    }

    #[test]
    fn locking_an_obfuscated_netlist_is_rejected() {
        let lib = Library::standard();
        let lock = lock_library(&lib);
        let nl = xor_netlist(&lib);
        let once = lock_netlist(&nl, &lock, &LockOptions::default()).unwrap();
        assert!(matches!(
            lock_netlist(&once.netlist, &lock, &LockOptions::default()),
            Err(LockError::AlreadyObfuscated(_))
        ));
    }
}
