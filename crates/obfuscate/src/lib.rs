//! Pluggable obfuscation schemes behind one seam.
//!
//! The paper's adversary model — *is some configuration of the obfuscated
//! netlist consistent with the observed I/O?* — is not specific to
//! per-cell camouflage. Any obfuscation family that reduces to **discrete
//! per-site choice sets** (one independent choice per obfuscated cell,
//! each choice a concrete truth table over the cell's pins) presents the
//! attack stack with exactly the same shape: a configuration odometer for
//! the screen, frozen selector variables for the SAT encoding, a
//! word-parallel vector-evaluation hook, and a fingerprint contribution
//! for session keying.
//!
//! [`ObfuscationSpace`] is that seam. It is a cheap borrowed view — a
//! scheme tag plus the two libraries the netlist indexes — so every
//! existing `(netlist, lib, camo)` call site can wrap itself in a space
//! for free, and the attack layer (`mvf-attack`), the flow (`mvf`) and
//! the audit service (`mvf-serve`) contain **zero scheme-specific code**.
//!
//! Two families ship today:
//!
//! * **Per-cell camouflage** ([`SchemeKind::Camouflage`]) — the paper's
//!   doping-programmable look-alike cells; choice sets are cofactor
//!   closures ([`mvf_cells::CamoLibrary::from_library`]).
//! * **Logic locking** ([`SchemeKind::Locking`]) — XOR/XNOR and MUX key
//!   gates inserted by the deterministic keyed inserter
//!   ([`lock_netlist`]); choice sets are the two realizable functions of
//!   a key gate (`{A, ¬A}` for an XOR/XNOR site, the two data
//!   projections for a MUX site), carried by look-alike cells in a
//!   dedicated lock library ([`lock_library`]).
//!
//! Both flow through screen-then-solve, NPN sweeps, class sharing,
//! sessions and kill/resume because the machinery only ever sees the
//! per-site choice product.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lock;
mod space;

pub use lock::{
    lock_library, lock_merged_netlist, lock_netlist, LockError, LockGate, LockOptions, LockSite,
    LockedNetlist, MKEY_NAME, XKEY_NAME,
};
pub use space::{ObfuscationSpace, SchemeKind};
