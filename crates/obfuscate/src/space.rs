//! The [`ObfuscationSpace`] seam: one borrowed view unifying every
//! obfuscation family whose secret is a product of per-site discrete
//! choices.

use std::collections::HashMap;

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::{TruthTable, TtArena};
use mvf_netlist::fingerprint::fingerprint_session_scheme;
use mvf_netlist::{CellId, CellRef, Netlist};
use mvf_sat::CircuitCnf;
use mvf_sim::{eval_camo_netlist_vectors_with, ValidationError};

/// Which obfuscation family a space (and everything keyed by it)
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Per-cell camouflage: doping-programmable look-alike cells whose
    /// choice sets are cofactor closures (the paper's family).
    Camouflage,
    /// Logic locking: XOR/XNOR and MUX key gates whose choice sets are
    /// the functions the unknown key bit selects between.
    Locking,
}

impl SchemeKind {
    /// The stable wire/fingerprint tag (`"camo"` / `"locking"`). Part of
    /// the serve wire format and the session-key preimage — never reuse
    /// or reorder these strings.
    pub fn tag(self) -> &'static str {
        match self {
            SchemeKind::Camouflage => "camo",
            SchemeKind::Locking => "locking",
        }
    }

    /// Parses [`SchemeKind::tag`].
    pub fn from_tag(tag: &str) -> Option<SchemeKind> {
        match tag {
            "camo" => Some(SchemeKind::Camouflage),
            "locking" => Some(SchemeKind::Locking),
            _ => None,
        }
    }
}

/// A borrowed view of one obfuscated netlist's choice space: the scheme
/// tag plus the libraries its cell references index.
///
/// Every obfuscation family in this workspace represents its per-site
/// choice sets as look-alike cells in a [`CamoLibrary`] — for camouflage
/// that library *is* the camouflaged standard library; for locking it is
/// the dedicated key-gate library ([`crate::lock_library`]). The space
/// therefore carries no state of its own and is free to construct at
/// every call site, which is what keeps the refactored camouflage path
/// bit-identical to the pre-seam code: same libraries, same odometer,
/// same encoding, just routed through one named abstraction.
#[derive(Debug, Clone, Copy)]
pub struct ObfuscationSpace<'a> {
    kind: SchemeKind,
    lib: &'a Library,
    choices: &'a CamoLibrary,
}

impl<'a> ObfuscationSpace<'a> {
    /// The per-cell camouflage space over the standard library and its
    /// camouflaged variants.
    pub fn camouflage(lib: &'a Library, camo: &'a CamoLibrary) -> Self {
        ObfuscationSpace {
            kind: SchemeKind::Camouflage,
            lib,
            choices: camo,
        }
    }

    /// The logic-locking space over the standard library and a key-gate
    /// library (usually [`crate::lock_library`]).
    pub fn locking(lib: &'a Library, lock: &'a CamoLibrary) -> Self {
        ObfuscationSpace {
            kind: SchemeKind::Locking,
            lib,
            choices: lock,
        }
    }

    /// A space with an explicit scheme tag — for call sites that carry
    /// the scheme as data (the audit service's config, decoded wire
    /// payloads).
    pub fn with_kind(kind: SchemeKind, lib: &'a Library, choices: &'a CamoLibrary) -> Self {
        ObfuscationSpace { kind, lib, choices }
    }

    /// The scheme family.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The standard-cell library the netlist's `Std` references index.
    pub fn library(&self) -> &'a Library {
        self.lib
    }

    /// The choice-set library the netlist's `Camo` references index:
    /// camouflaged look-alikes or key gates, depending on the scheme.
    pub fn choices(&self) -> &'a CamoLibrary {
        self.choices
    }

    /// The obfuscated sites of `nl` in topological cell order, each with
    /// its choice count. The product of the counts is the size of the
    /// configuration space the adversary quantifies over.
    pub fn sites(&self, nl: &Netlist) -> Vec<(CellId, usize)> {
        nl.topo_cells()
            .into_iter()
            .filter_map(|cid| match nl.cell(cid).cell {
                CellRef::Camo(id) => Some((cid, self.choices.cell(id).plausible().len())),
                CellRef::Std(_) => None,
            })
            .collect()
    }

    /// Enumerates the full per-site configuration product in topological
    /// cell order — an odometer over each site's sorted choice set, the
    /// **last site varying fastest** — or `None` when the product exceeds
    /// `cap`. This order is pinned: the screen's surviving-config masks,
    /// the brute-force test corpora and the SAT encoding's selector
    /// space all index configurations by it.
    pub fn enumerate_configs(
        &self,
        nl: &Netlist,
        cap: usize,
    ) -> Option<Vec<HashMap<CellId, TruthTable>>> {
        let mut cells: Vec<(CellId, &[TruthTable])> = Vec::new();
        let mut product = 1usize;
        for cid in nl.topo_cells() {
            if let CellRef::Camo(id) = nl.cell(cid).cell {
                let plausible = self.choices.cell(id).plausible();
                product = product.checked_mul(plausible.len()).filter(|&p| p <= cap)?;
                cells.push((cid, plausible));
            }
        }
        let mut configs = Vec::with_capacity(product);
        let mut odometer = vec![0usize; cells.len()];
        loop {
            configs.push(
                cells
                    .iter()
                    .zip(&odometer)
                    .map(|(&(cid, plausible), &d)| (cid, plausible[d].clone()))
                    .collect(),
            );
            // Advance the least-significant digit (the last obfuscated cell).
            let mut pos = cells.len();
            loop {
                if pos == 0 {
                    return Some(configs);
                }
                pos -= 1;
                odometer[pos] += 1;
                if odometer[pos] < cells[pos].1.len() {
                    break;
                }
                odometer[pos] = 0;
            }
        }
    }

    /// Tseitin-encodes the netlist with one frozen exactly-one selector
    /// group per obfuscated site — the SAT half of the configuration
    /// space [`ObfuscationSpace::enumerate_configs`] enumerates.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::check_with_camo`] against
    /// the space's libraries.
    pub fn encode(&self, nl: &Netlist) -> CircuitCnf {
        mvf_sat::encode_netlist(nl, self.lib, self.choices)
    }

    /// Word-parallel multi-configuration vector evaluation — the screen
    /// half of the funnel. `out[j][o][w]` bit `b` is output `o` under
    /// configuration `j` on input `vectors[64 w + b]`.
    ///
    /// # Errors
    ///
    /// [`ValidationError`] if a configuration binds a site to a function
    /// outside its choice set (impossible for configurations produced by
    /// [`ObfuscationSpace::enumerate_configs`]).
    pub fn eval_vectors(
        &self,
        nl: &Netlist,
        configs: &[HashMap<CellId, TruthTable>],
        vectors: &[u64],
    ) -> Result<Vec<Vec<Vec<u64>>>, ValidationError> {
        self.eval_vectors_with(nl, configs, vectors, &mut TtArena::default())
    }

    /// [`ObfuscationSpace::eval_vectors`] with a caller-owned arena.
    ///
    /// # Errors
    ///
    /// See [`ObfuscationSpace::eval_vectors`].
    pub fn eval_vectors_with(
        &self,
        nl: &Netlist,
        configs: &[HashMap<CellId, TruthTable>],
        vectors: &[u64],
        arena: &mut TtArena,
    ) -> Result<Vec<Vec<Vec<u64>>>, ValidationError> {
        eval_camo_netlist_vectors_with(nl, self.lib, self.choices, configs, vectors, arena)
    }

    /// The session cache key: netlist structure, both libraries'
    /// content, **and the scheme tag** — two schemes over the same
    /// netlist never share a session.
    pub fn fingerprint(&self, nl: &Netlist) -> u64 {
        fingerprint_session_scheme(nl, self.lib, self.choices, self.kind.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for kind in [SchemeKind::Camouflage, SchemeKind::Locking] {
            assert_eq!(SchemeKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(SchemeKind::from_tag("salted"), None);
    }

    #[test]
    fn sites_follow_topo_order_and_choice_counts() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let nand = camo
            .iter()
            .find(|(_, c)| c.name() == "NAND2")
            .map(|(id, _)| id)
            .unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (c1, x) = nl.add_cell("u1", CellRef::Camo(nand), vec![a, b]);
        let (c2, y) = nl.add_cell("u2", CellRef::Camo(nand), vec![x, b]);
        nl.add_output("y", y);
        let space = ObfuscationSpace::camouflage(&lib, &camo);
        assert_eq!(space.sites(&nl), vec![(c1, 5), (c2, 5)]);
        let configs = space.enumerate_configs(&nl, 4096).unwrap();
        assert_eq!(configs.len(), 25);
        // Last site varies fastest: the first five configs share u1's
        // first choice and walk u2's sorted choice set.
        let first = &configs[0][&c1];
        assert!(configs[1..5].iter().all(|cfg| &cfg[&c1] == first));
        assert!(space.enumerate_configs(&nl, 24).is_none());
    }

    #[test]
    fn scheme_changes_the_fingerprint() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let nand = camo
            .iter()
            .find(|(_, c)| c.name() == "NAND2")
            .map(|(id, _)| id)
            .unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (_, y) = nl.add_cell("u1", CellRef::Camo(nand), vec![a, b]);
        nl.add_output("y", y);
        let as_camo = ObfuscationSpace::camouflage(&lib, &camo).fingerprint(&nl);
        let as_lock = ObfuscationSpace::locking(&lib, &camo).fingerprint(&nl);
        assert_ne!(as_camo, as_lock, "scheme tag must be committed");
    }
}
