//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures.
//!
//! Budgets are environment-tunable so the default `cargo bench` finishes
//! in minutes while `MVF_PAPER_SCALE=1` reproduces the paper's evaluation
//! budget (9726 fitness evaluations per workload):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MVF_GA_POP` | GA population | 8 |
//! | `MVF_GA_GENS` | GA generations | 5 |
//! | `MVF_PAPER_SCALE` | population 24 / generations ~415 as in the paper | off |
//! | `MVF_THREADS` | fitness-evaluation worker threads (`parallel` feature; results are bit-identical to serial) | all cores |
//! | `MVF_SCREEN_VECTORS` | screening batch size of the `micro` bench's screen-then-solve section (verdicts are bit-identical for every value) | 256 |
//! | `MVF_SAT_INPROCESS` | SAT inprocessing (clause vivification + bounded variable elimination) in the bench sweeps; `0` disables it (verdicts and witnesses are bit-identical either way) | 1 |
//! | `MVF_SAT_WATCH_SLACK` | CSR watch-list compaction slack, in percent of the kept entries (a pure memory-layout knob — behavior is bit-identical for every value) | 50 |
//! | `MVF_BENCH_OUT` | path of the `micro` bench's JSON report | `BENCH_sim.json` at the repo root |
//! | `MVF_SERVE_ADDR` | TCP listen address of the `mvf-serve` audit service; unset = stdio | unset |
//! | `MVF_CHECKPOINT_STEPS` | GA generations between `mvf-serve` checkpoints | 1 |
//! | `MVF_SESSION_CACHE_MB` | `mvf-serve` session-cache byte budget, in MiB | 64 |
//! | `MVF_SCHEME` | obfuscation family for new `mvf-serve` jobs (`camo` \| `locking`); resumed jobs keep their checkpoint's family | `camo` |
//! | `MVF_LOCK_XOR` | XOR/XNOR key gates inserted by `mvf-serve` locking jobs | 4 |
//! | `MVF_LOCK_MUX` | MUX key gates inserted by `mvf-serve` locking jobs | 2 |
//! | `MVF_LOCK_SEED` | key-gate placement seed (locking is deterministic in `(netlist, seed)`) | fixed |
//!
//! Parallel fitness evaluation is compiled in through the `parallel`
//! cargo feature (a default feature of this crate and of the workspace
//! root); the thread count can also be pinned per run via
//! `GaConfig::threads`.

use mvf::{Flow, FlowConfig, Ga, Workload};
use mvf_logic::VectorFunction;

/// A named Table-I workload: family label, size and the merged S-boxes.
pub struct BenchWorkload {
    /// "PRESENT" or "DES".
    pub family: &'static str,
    /// Number of merged S-boxes.
    pub n: usize,
    /// The viable functions.
    pub functions: Vec<VectorFunction>,
}

impl BenchWorkload {
    /// This workload as a flow [`Workload`] (for [`Flow::run_many`]).
    pub fn to_workload(&self) -> Workload {
        Workload::new(
            format!("{} x{}", self.family, self.n),
            self.functions.clone(),
        )
    }
}

/// The seven Table I workloads: PRESENT 2/4/8/16 and DES 2/4/8.
pub fn table1_workloads() -> Vec<BenchWorkload> {
    let opt = mvf_sboxes::optimal_sboxes();
    let des = mvf_sboxes::des_sboxes();
    let mut w = Vec::new();
    for n in [2usize, 4, 8, 16] {
        w.push(BenchWorkload {
            family: "PRESENT",
            n,
            functions: opt[..n].to_vec(),
        });
    }
    for n in [2usize, 4, 8] {
        w.push(BenchWorkload {
            family: "DES",
            n,
            functions: des[..n].to_vec(),
        });
    }
    w
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The benchmark flow configuration, honoring the env knobs.
pub fn bench_config() -> FlowConfig {
    let mut config = FlowConfig::default();
    if std::env::var_os("MVF_PAPER_SCALE").is_some() {
        // The paper evaluates 9726 individuals; with elitism 2 this is
        // population 24 + 442 generations of 22 children.
        config.ga.population = 24;
        config.ga.generations = 442;
    } else {
        config.ga.population = env_usize("MVF_GA_POP", 8);
        config.ga.generations = env_usize("MVF_GA_GENS", 5);
    }
    config
}

/// Builds the flow for benchmarking.
pub fn bench_flow() -> Flow<Ga> {
    Flow::builder()
        .config(bench_config())
        .attack_inprocess(sat_inprocess())
        .build()
}

/// The screening batch size for the screen-then-solve bench section
/// (`MVF_SCREEN_VECTORS`, default [`mvf_attack::DEFAULT_SCREEN_VECTORS`]).
/// Screening never changes a verdict, so every value is safe; larger
/// batches refute more chaff per screen build at higher screening cost.
pub fn screen_vectors() -> usize {
    env_usize("MVF_SCREEN_VECTORS", mvf_attack::DEFAULT_SCREEN_VECTORS)
}

/// Whether bench sweeps run SAT inprocessing (`MVF_SAT_INPROCESS`,
/// default on; `0` disables). Inprocessing never changes a verdict or
/// witness, so every setting is safe.
pub fn sat_inprocess() -> bool {
    env_usize("MVF_SAT_INPROCESS", 1) != 0
}

/// The CSR watch-list compaction slack percentage
/// (`MVF_SAT_WATCH_SLACK`, default 50): how much free headroom each
/// rebuilt watch list keeps, as a fraction of its live entries. A pure
/// memory-layout knob — solver behavior is bit-identical for every
/// value.
pub fn sat_watch_slack() -> u32 {
    env_usize("MVF_SAT_WATCH_SLACK", 50) as u32
}
