//! Regenerates **Table I**: area comparison for merged S-box circuits —
//! random-assignment average/best, GA, GA+TM, and the improvement of
//! GA+TM over the best random assignment.
//!
//! The table is printed before the timing section. Scale the search
//! budget with `MVF_GA_POP` / `MVF_GA_GENS` or `MVF_PAPER_SCALE=1`
//! (see `mvf-bench` docs).

use criterion::{criterion_group, criterion_main, Criterion};
use mvf::{random_assignment, synthesized_area_ge, Table1, Table1Row};
use mvf_bench::{bench_flow, table1_workloads};
use mvf_ga::GeneticAlgorithm;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_table1() -> Table1 {
    let flow = bench_flow();
    let mut table = Table1::default();
    for w in table1_workloads() {
        let budget = GeneticAlgorithm::new(flow.config().ga.clone()).evaluation_budget();
        // Random baseline with the same evaluation budget as the GA.
        let baseline = flow.random_baseline(&w.functions, budget, 0xBA5E + w.n as u64);
        let result = flow.run(&w.functions).expect("flow succeeds");
        table.rows.push(Table1Row {
            circuit: w.family.to_string(),
            n_sboxes: w.n,
            random_avg: baseline.avg_area_ge,
            random_best: baseline.best_area_ge,
            ga: result.synthesized_area_ge,
            ga_tm: result.mapped_area_ge,
        });
        eprintln!(
            "  [{} x{}] random avg {:.0} / best {:.0} | GA {:.0} | GA+TM {:.0} | impr {:.0}%",
            w.family,
            w.n,
            baseline.avg_area_ge,
            baseline.best_area_ge,
            result.synthesized_area_ge,
            result.mapped_area_ge,
            table.rows.last().expect("row").improvement_pct()
        );
    }
    table
}

fn bench(c: &mut Criterion) {
    eprintln!("=== Regenerating Table I (env knobs: MVF_GA_POP/MVF_GA_GENS/MVF_PAPER_SCALE) ===");
    let table = regenerate_table1();
    println!("\n{table}");

    // Component timing: one fitness evaluation per workload family/size.
    let flow = bench_flow();
    let mut group = c.benchmark_group("table1_fitness_eval");
    group.sample_size(10);
    for w in table1_workloads() {
        group.bench_function(format!("{}_{}", w.family, w.n), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let a = random_assignment(&w.functions, &mut rng);
                synthesized_area_ge(
                    &w.functions,
                    &a,
                    &flow.config().script,
                    flow.library(),
                    &flow.config().map,
                )
                .expect("fitness")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
