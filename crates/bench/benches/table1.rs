//! Regenerates **Table I**: area comparison for merged S-box circuits —
//! random-assignment average/best, GA, GA+TM, and the improvement of
//! GA+TM over the best random assignment.
//!
//! The GA arm runs all workloads as one `Flow::run_many` batch. The table
//! is printed before the timing section. Scale the search budget with
//! `MVF_GA_POP` / `MVF_GA_GENS` or `MVF_PAPER_SCALE=1` (see `mvf-bench`
//! docs).

use criterion::{criterion_group, criterion_main, Criterion};
use mvf::{random_assignment, EvalContext, SearchStrategy, Table1, Table1Row, Workload};
use mvf_bench::{bench_flow, table1_workloads};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_table1() -> Table1 {
    let flow = bench_flow();
    let budget = flow.strategy().evaluation_budget();
    let bench_workloads = table1_workloads();
    let workloads: Vec<Workload> = bench_workloads.iter().map(|w| w.to_workload()).collect();
    let reports = flow.run_many(&workloads);
    let mut table = Table1::default();
    for (w, report) in bench_workloads.iter().zip(&reports) {
        let result = report.outcome.as_ref().expect("flow succeeds");
        // Random baseline with the same evaluation budget as the GA.
        let baseline = flow.random_baseline(&w.functions, budget, 0xBA5E + w.n as u64);
        table.rows.push(Table1Row {
            circuit: w.family.to_string(),
            n_sboxes: w.n,
            random_avg: baseline.avg_area_ge,
            random_best: baseline.best_area_ge,
            ga: result.synthesized_area_ge,
            ga_tm: result.mapped_area_ge,
        });
        eprintln!(
            "  [{}] random avg {:.0} / best {:.0} | GA {:.0} | GA+TM {:.0} | impr {:.0}%",
            report.name,
            baseline.avg_area_ge,
            baseline.best_area_ge,
            result.synthesized_area_ge,
            result.mapped_area_ge,
            table.rows.last().expect("row").improvement_pct()
        );
    }
    table
}

fn bench(c: &mut Criterion) {
    eprintln!("=== Regenerating Table I (env knobs: MVF_GA_POP/MVF_GA_GENS/MVF_PAPER_SCALE) ===");
    let table = regenerate_table1();
    println!("\n{table}");

    // Component timing: one fitness evaluation per workload family/size,
    // through a warm evaluation context as in the real search.
    let flow = bench_flow();
    let mut group = c.benchmark_group("table1_fitness_eval");
    group.sample_size(10);
    for w in table1_workloads() {
        group.bench_function(format!("{}_{}", w.family, w.n), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut ctx = EvalContext::new();
            b.iter(|| {
                let a = random_assignment(&w.functions, &mut rng);
                ctx.synthesized_area_ge(
                    &w.functions,
                    &a,
                    &flow.config().script,
                    flow.library(),
                    &flow.config().map,
                )
                .expect("fitness")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
