//! Regenerates **Fig. 4**: the random-pin-assignment area distribution
//! (4a) and the GA trajectory against the random average/best lines (4b),
//! for the 8-merged-PRESENT-S-box workload the paper plots.
//!
//! Series are printed before the timing section.

use criterion::{criterion_group, criterion_main, Criterion};
use mvf::{random_assignment, EvalContext, Fig4Data, SearchStrategy};
use mvf_bench::bench_flow;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn regenerate_fig4() -> Fig4Data {
    let flow = bench_flow();
    let functions = mvf_sboxes::optimal_sboxes()[..8].to_vec();
    let budget = flow.strategy().evaluation_budget();
    let baseline = flow.random_baseline(&functions, budget, 0xF16);
    let result = flow.run(&functions).expect("flow succeeds");
    Fig4Data {
        random_samples: baseline.samples,
        random_avg: baseline.avg_area_ge,
        random_best: baseline.best_area_ge,
        ga_history: result.ga_history,
    }
}

fn bench(c: &mut Criterion) {
    eprintln!("=== Regenerating Fig. 4 (8 merged PRESENT S-boxes) ===");
    let data = regenerate_fig4();
    println!("\n{data}");
    let last = data.ga_history.last().expect("history");
    println!(
        "GA best {:.0} GE vs best random {:.0} GE ({})",
        last.best_so_far,
        data.random_best,
        if last.best_so_far <= data.random_best {
            "GA surpasses best random, as in the paper"
        } else {
            "increase the budget (MVF_GA_GENS) to see the crossover"
        }
    );

    // Component timing: the per-individual cost that dominates both
    // search arms.
    let flow = bench_flow();
    let functions = mvf_sboxes::optimal_sboxes()[..8].to_vec();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("fitness_eval_present8", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ctx = EvalContext::new();
        b.iter(|| {
            let a = random_assignment(&functions, &mut rng);
            ctx.synthesized_area_ge(
                &functions,
                &a,
                &flow.config().script,
                flow.library(),
                &flow.config().map,
            )
            .expect("fitness")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
