//! Perf-tracking micro-benchmark: arena-based vs naive truth-table
//! simulation, serial vs parallel GA fitness evaluation through the full
//! flow, per-call-allocating vs context-reusing fitness evaluation,
//! batched vs re-encoding SAT plausibility sweeps (`sat_sweep`),
//! order-heap vs linear-scan SAT decisions (`sat_decide`), sharded vs
//! serial plausibility sweeps (`sweep_parallel`), signature-pruned
//! interpretation-freedom sweeps (`sweep_any_io`), inprocessed
//! (vivified + variable-eliminated) vs untouched clause databases
//! (`sat_inprocess`), the SAT-free
//! screen-then-solve funnel vs a SAT-only sweep (`sat_screen`), the
//! scheme-generic sweep over a key-gate-locked circuit vs brute-force
//! key enumeration (`sweep_locking`), CSR vs
//! nested cut enumeration (`cuts_csr`), word-parallel vs per-config
//! camouflage validation (`camo_fitness`), and 8-wide chunked vs scalar
//! truth-table word kernels (`tt_kernels`).
//!
//! Results are printed and written as machine-readable JSON to
//! `BENCH_sim.json` at the repository root (override the path with
//! `MVF_BENCH_OUT`), so the perf trajectory of the simulation core can be
//! tracked across PRs:
//!
//! ```sh
//! cargo bench -p mvf-bench --bench micro
//! ```

use std::hint::black_box;
use std::time::Instant;

use mvf::{random_assignment, EvalContext, Flow, FlowResult};
use mvf_aig::cuts::{enumerate_cuts_into, Cut, CutSet};
use mvf_aig::{Aig, Lit};
use mvf_ga::GaConfig;
use mvf_logic::TruthTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-CSR cut enumeration, kept as the baseline: per-node inner
/// vectors, freshly allocated per call (the behavior of the standalone
/// rewrite/refactor entry points before the flat `CutSet`).
fn nested_enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<Cut>> {
    let n_nodes = aig.n_nodes();
    let mut cuts: Vec<Vec<Cut>> = Vec::new();
    cuts.resize_with(n_nodes, Vec::new);
    cuts[0].push(Cut::empty());
    for i in 0..aig.n_inputs() {
        cuts[i + 1].push(Cut::unit(i as u32 + 1));
    }
    let mut merged: Vec<Cut> = Vec::new();
    let mut kept: Vec<Cut> = Vec::new();
    for id in aig.and_nodes() {
        let (f0, f1) = aig.fanins(id);
        let (n0, n1) = (f0.node().0 as usize, f1.node().0 as usize);
        merged.clear();
        for ai in 0..cuts[n0].len() {
            for bi in 0..cuts[n1].len() {
                let (a, b) = (cuts[n0][ai], cuts[n1][bi]);
                if let Some(c) = a.merge(&b, k) {
                    if !merged.contains(&c) {
                        merged.push(c);
                    }
                }
            }
        }
        kept.clear();
        merged.sort_by_key(Cut::len);
        for c in &merged {
            if !kept.iter().any(|k2| k2.dominates(c)) {
                kept.push(*c);
            }
        }
        let widest = kept.last().copied();
        kept.truncate(max_cuts.saturating_sub(1).max(1));
        if let Some(w) = widest {
            if !kept.contains(&w) {
                kept.push(w);
            }
        }
        kept.push(Cut::unit(id.0));
        cuts[id.0 as usize].extend_from_slice(&kept);
    }
    cuts
}

/// The seed implementation of node simulation, kept as the baseline: one
/// heap allocation (or clone) and one complement temporary per fanin.
fn naive_simulate(aig: &Aig) -> Vec<TruthTable> {
    let n = aig.n_inputs();
    let mut tts: Vec<TruthTable> = Vec::with_capacity(aig.n_nodes());
    tts.push(TruthTable::zero(n));
    for i in 0..n {
        tts.push(TruthTable::var(i, n));
    }
    for id in (n as u32 + 1..aig.n_nodes() as u32).map(mvf_aig::NodeId) {
        if !aig.is_and(id) {
            tts.push(TruthTable::zero(n));
            continue;
        }
        let (f0, f1) = aig.fanins(id);
        let t0 = &tts[f0.node().0 as usize];
        let t0 = if f0.is_complement() {
            t0.not()
        } else {
            t0.clone()
        };
        let t1 = &tts[f1.node().0 as usize];
        let t1 = if f1.is_complement() {
            t1.not()
        } else {
            t1.clone()
        };
        tts.push(t0.and(&t1));
    }
    tts
}

/// A deterministic random AIG (LCG-driven) stressing multi-word tables.
fn build_random_aig(n_inputs: usize, n_ands: usize, seed: u64) -> Aig {
    let mut g = Aig::new(n_inputs);
    let mut lits: Vec<Lit> = (0..n_inputs).map(|i| g.input(i)).collect();
    let mut state = seed;
    let mut step = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    while g.n_ands() < n_ands {
        let i = (step() >> 16) as usize % lits.len();
        let j = (step() >> 16) as usize % lits.len();
        let a = lits[i];
        let b = lits[j].xor_sign(step() & 1 == 1);
        let f = g.and(a, b);
        lits.push(f);
    }
    g.add_output("f", *lits.last().expect("non-empty"));
    g
}

/// Mean nanoseconds per call of `f`, measured over an adaptive batch.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    // Warm-up and scale estimate.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1);
    // Aim for ~400 ms of measurement, at least 5 iterations.
    let iters = ((400_000_000 / once) as u64).clamp(5, 100_000);
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

fn ga_flow(threads: usize) -> (FlowResult, f64) {
    let flow = Flow::builder()
        .ga(GaConfig {
            population: 8,
            generations: 2,
            seed: 0xBE7,
            threads,
            ..GaConfig::default()
        })
        .validate(false)
        .build();
    let functions = mvf_sboxes::optimal_sboxes()[..2].to_vec();
    let t = Instant::now();
    let result = flow.run(&functions).expect("flow succeeds");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    (result, ms)
}

fn main() {
    // --- Simulation: arena vs naive on a 16-input AIG. ---------------
    let g = build_random_aig(16, 600, 0xA16_0001);
    let naive_ns = time_ns(|| {
        black_box(naive_simulate(black_box(&g)));
    });
    let arena_ns = time_ns(|| {
        black_box(black_box(&g).simulate_arena());
    });
    let sim_speedup = naive_ns / arena_ns;
    // Correctness cross-check while we are here.
    let arena = g.simulate_arena();
    for (i, t) in naive_simulate(&g).iter().enumerate() {
        assert_eq!(
            &arena.to_table(i),
            t,
            "arena and naive sim disagree at node {i}"
        );
    }
    println!(
        "sim naive  : {:>12.0} ns / full 16-input simulation",
        naive_ns
    );
    println!(
        "sim arena  : {:>12.0} ns / full 16-input simulation",
        arena_ns
    );
    println!("sim speedup: {sim_speedup:>12.2}x");

    // --- GA fitness evaluation: serial vs parallel threads. ----------
    let threads = mvf_ga::resolve_threads(0);
    let (serial_result, serial_ms) = ga_flow(1);
    let (parallel_result, parallel_ms) = ga_flow(0);
    let ga_speedup = serial_ms / parallel_ms;
    let identical = serial_result.ga_history.len() == parallel_result.ga_history.len()
        && serial_result
            .ga_history
            .iter()
            .zip(&parallel_result.ga_history)
            .all(|(a, b)| {
                a.best_so_far.to_bits() == b.best_so_far.to_bits()
                    && a.best.to_bits() == b.best.to_bits()
                    && a.avg.to_bits() == b.avg.to_bits()
            })
        && serial_result.assignment == parallel_result.assignment;
    assert!(identical, "parallel GA must be bit-identical to serial");
    println!("ga serial  : {serial_ms:>12.1} ms (PRESENT-2, 20 evaluations)");
    println!("ga parallel: {parallel_ms:>12.1} ms ({threads} threads)");
    println!("ga speedup : {ga_speedup:>12.2}x (bit-identical: {identical})");

    // --- Fitness evaluation: per-call allocation vs reused context. ---
    let flow = Flow::builder().build();
    let functions = mvf_sboxes::optimal_sboxes()[..2].to_vec();
    let fitness_batch = 8usize;
    let assignments: Vec<_> = {
        let mut rng = StdRng::seed_from_u64(0xF17);
        (0..fitness_batch)
            .map(|_| random_assignment(&functions, &mut rng))
            .collect()
    };
    let eval_all = |ctx: &mut EvalContext| -> f64 {
        let mut acc = 0.0;
        for a in &assignments {
            acc += ctx
                .synthesized_area_ge(
                    &functions,
                    a,
                    &flow.config().script,
                    flow.library(),
                    &flow.config().map,
                )
                .expect("fitness");
        }
        acc
    };
    // Correctness: warm and cold contexts agree bit-for-bit.
    let warm_sum = eval_all(&mut EvalContext::new());
    let cold_sum = {
        let mut acc = 0.0;
        for a in &assignments {
            acc += EvalContext::new()
                .synthesized_area_ge(
                    &functions,
                    a,
                    &flow.config().script,
                    flow.library(),
                    &flow.config().map,
                )
                .expect("fitness");
        }
        acc
    };
    assert_eq!(
        warm_sum.to_bits(),
        cold_sum.to_bits(),
        "context reuse must not change fitness values"
    );
    let percall_ns = time_ns(|| {
        let mut acc = 0.0;
        for a in &assignments {
            acc += EvalContext::new()
                .synthesized_area_ge(
                    &functions,
                    a,
                    &flow.config().script,
                    flow.library(),
                    &flow.config().map,
                )
                .expect("fitness");
        }
        black_box(acc);
    }) / fitness_batch as f64;
    let mut shared_ctx = EvalContext::new();
    eval_all(&mut shared_ctx); // warm the caches before timing
    let reuse_ns = time_ns(|| {
        black_box(eval_all(&mut shared_ctx));
    }) / fitness_batch as f64;
    let fitness_speedup = percall_ns / reuse_ns;
    println!("fitness cold : {percall_ns:>10.0} ns / evaluation (fresh EvalContext per call)");
    println!("fitness warm : {reuse_ns:>10.0} ns / evaluation (shared EvalContext)");
    println!("fitness speedup: {fitness_speedup:>8.2}x");

    // --- SAT: batched plausibility sweep vs per-candidate re-encoding. -
    let lib = mvf_cells::Library::standard();
    let camo = mvf_cells::CamoLibrary::from_library(&lib);
    let sboxes = mvf_sboxes::optimal_sboxes();
    let target = mvf_attack::random_camouflage(&sboxes[0], &lib, &camo).expect("buildable");
    let sweep_candidates = &sboxes[..6];
    // Correctness first: the batched sweep must equal fresh per-candidate
    // encodings.
    let swept = mvf_attack::plausibility_sweep(&target, &lib, &camo, sweep_candidates);
    let percand: Vec<bool> = sweep_candidates
        .iter()
        .map(|f| mvf_attack::is_plausible(&target, &lib, &camo, f))
        .collect();
    assert_eq!(swept, percand, "sweep and per-candidate verdicts disagree");
    let sat_percand_ns = time_ns(|| {
        let verdicts: Vec<bool> = sweep_candidates
            .iter()
            .map(|f| mvf_attack::is_plausible(black_box(&target), &lib, &camo, f))
            .collect();
        black_box(verdicts);
    }) / sweep_candidates.len() as f64;
    let sat_sweep_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep(
            black_box(&target),
            &lib,
            &camo,
            sweep_candidates,
        ));
    }) / sweep_candidates.len() as f64;
    let sat_speedup = sat_percand_ns / sat_sweep_ns;
    println!("sat percand: {sat_percand_ns:>12.0} ns / candidate (fresh encoding per query)");
    println!("sat sweep  : {sat_sweep_ns:>12.0} ns / candidate (one clause arena, assumptions)");
    println!("sat speedup: {sat_speedup:>12.2}x");

    // --- SAT decisions: order-heap vs linear activity scan. ------------
    // An under-constrained random 3-CNF over 20k variables: nearly every
    // step is a decision, so the per-decision variable selection cost
    // dominates the solve.
    let decide_vars = 20_000usize;
    let decide_clauses = 20_000usize;
    let build_decide_solver = |heap: bool| {
        use mvf_sat::{Lit, Solver, Var};
        let mut s = Solver::new();
        s.set_decision_heap(heap);
        s.set_watch_slack(mvf_bench::sat_watch_slack());
        for _ in 0..decide_vars {
            s.new_var();
        }
        let mut state = 0xDEC1DE_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..decide_clauses {
            let c: Vec<Lit> = (0..3)
                .map(|_| {
                    let v = Var((next() % decide_vars as u64) as u32);
                    if next() & 1 == 1 {
                        Lit::neg(v)
                    } else {
                        Lit::pos(v)
                    }
                })
                .collect();
            s.add_clause(&c);
        }
        s
    };
    let mut heap_solver = build_decide_solver(true);
    let mut linear_solver = build_decide_solver(false);
    assert_eq!(
        heap_solver.solve(),
        linear_solver.solve(),
        "heap and linear decide modes must agree"
    );
    let sat_decide_heap_ns = time_ns(|| {
        black_box(heap_solver.solve());
    });
    let sat_decide_linear_ns = time_ns(|| {
        black_box(linear_solver.solve());
    });
    let sat_decide_speedup = sat_decide_linear_ns / sat_decide_heap_ns;
    println!("sat decide linear: {sat_decide_linear_ns:>12.0} ns / solve (O(n) activity scan)");
    println!("sat decide heap  : {sat_decide_heap_ns:>12.0} ns / solve (binary order heap)");
    println!("sat decide speedup: {sat_decide_speedup:>11.2}x ({decide_vars} vars)");

    // --- Sharded plausibility sweep vs serial. -------------------------
    let sweep_shards = mvf_ga::resolve_threads(0).max(2);
    let serial_sweep = mvf_attack::plausibility_sweep(&target, &lib, &camo, sweep_candidates);
    let sharded_sweep = mvf_attack::plausibility_sweep_sharded(
        &target,
        &lib,
        &camo,
        sweep_candidates,
        sweep_shards,
    );
    assert_eq!(
        serial_sweep, sharded_sweep,
        "sharded sweep must be bit-identical to serial"
    );
    let sweep_serial_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_sharded(
            black_box(&target),
            &lib,
            &camo,
            sweep_candidates,
            1,
        ));
    }) / sweep_candidates.len() as f64;
    let sweep_sharded_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_sharded(
            black_box(&target),
            &lib,
            &camo,
            sweep_candidates,
            sweep_shards,
        ));
    }) / sweep_candidates.len() as f64;
    let sweep_parallel_speedup = sweep_serial_ns / sweep_sharded_ns;
    // Recorded in the JSON and asserted by CI; on a single-core runner
    // the *speedup* may legitimately sit at or below 1.0, so correctness
    // (bit-identical verdicts), not speed, is the CI contract.
    let sweep_parallel_identical = serial_sweep == sharded_sweep;
    println!("sweep serial : {sweep_serial_ns:>12.0} ns / candidate (one incremental solver)");
    println!(
        "sweep sharded: {sweep_sharded_ns:>12.0} ns / candidate ({sweep_shards} solver clones)"
    );
    println!("sweep speedup: {sweep_parallel_speedup:>11.2}x (bit-identical verdicts)");

    // --- Any-IO plausibility: pruned orbit sweep, serial vs sharded. ----
    // 3-bit blocks keep the orbit (3!·3! = 36) bench-sized; one candidate
    // is input-symmetric so the signature pruning has classes to
    // collapse, one is a scrambled variant of the true function (a
    // witness exists), one is implausible (full refutation).
    let lut3 = |t: &[u16; 8]| mvf_logic::VectorFunction::from_lookup_table(3, 3, t).unwrap();
    let f3 = lut3(&[1, 0, 3, 2, 5, 7, 6, 4]);
    let target3 = mvf_attack::random_camouflage(&f3, &lib, &camo).expect("buildable");
    let sym3 = {
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        mvf_logic::VectorFunction::new(
            3,
            vec![
                a.and(&b).and(&c),
                a.xor(&b).xor(&c),
                TruthTable::from_fn(3, |m| m.count_ones() >= 2),
            ],
        )
    };
    let scrambled3 = f3
        .permute_inputs(&[1, 2, 0])
        .unwrap()
        .permute_outputs(&[2, 0, 1])
        .unwrap();
    let any_io_candidates = vec![scrambled3, sym3, lut3(&[0, 1, 2, 3, 4, 5, 6, 7])];
    let any_io_serial =
        mvf_attack::plausibility_sweep_any_io(&target3, &lib, &camo, &any_io_candidates);
    let any_io_shards = mvf_ga::resolve_threads(0).max(2);
    let any_io_sharded = mvf_attack::plausibility_sweep_any_io_sharded(
        &target3,
        &lib,
        &camo,
        &any_io_candidates,
        any_io_shards,
    );
    let any_io_identical = any_io_serial
        .iter()
        .zip(&any_io_sharded)
        .all(|(a, b)| a.plausible == b.plausible && a.witness == b.witness);
    assert!(
        any_io_identical,
        "sharded any-IO sweep must match serial verdicts and witnesses"
    );
    let brute = mvf_attack::plausibility_sweep_any_io_with(
        &target3,
        &lib,
        &camo,
        &any_io_candidates,
        &mvf_attack::AnyIoOptions {
            shards: 1,
            prune: false,
            ..mvf_attack::AnyIoOptions::default()
        },
    );
    assert!(
        brute
            .iter()
            .zip(&any_io_serial)
            .all(|(a, b)| a.plausible == b.plausible && a.witness == b.witness),
        "orbit pruning must not change any verdict or witness"
    );
    let any_io_orbit: usize = any_io_serial.iter().map(|v| v.orbit).sum();
    let any_io_unique: usize = any_io_serial.iter().map(|v| v.unique).sum();
    let any_io_serial_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io(
            black_box(&target3),
            &lib,
            &camo,
            &any_io_candidates,
        ));
    }) / any_io_candidates.len() as f64;
    let any_io_sharded_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io_sharded(
            black_box(&target3),
            &lib,
            &camo,
            &any_io_candidates,
            any_io_shards,
        ));
    }) / any_io_candidates.len() as f64;
    let any_io_speedup = any_io_serial_ns / any_io_sharded_ns;
    println!(
        "any-io serial : {any_io_serial_ns:>11.0} ns / candidate ({any_io_unique}/{any_io_orbit} orbit points queried)"
    );
    println!(
        "any-io sharded: {any_io_sharded_ns:>11.0} ns / candidate ({any_io_shards} solver clones)"
    );
    println!("any-io speedup: {any_io_speedup:>11.2}x (bit-identical verdicts + witnesses)");

    // --- NPN-complete adversary: cross-candidate class sharing. --------
    // The full NPN orbit (3!·2³·3!·2³ = 2304 points) over a
    // duplicate-seeded batch: one NPN-implausible function plus two
    // NPN-transformed copies — three members of one interpretation
    // class, each refuting the same orbit-function set. With class
    // sharing the first member pays for the class and the others resolve
    // every representative from the shared verdict cache; verdicts and
    // witnesses never move, serial or sharded.
    let npn_seed = lut3(&[7, 1, 0, 2, 4, 3, 6, 5]);
    let npn_candidates = vec![
        npn_seed.clone(),
        mvf_logic::IoInterpretation {
            in_perm: vec![1, 2, 0],
            in_neg: 0b011,
            out_perm: vec![2, 0, 1],
            out_neg: 0b100,
        }
        .apply(&npn_seed)
        .unwrap(),
        mvf_logic::IoInterpretation {
            in_perm: vec![2, 0, 1],
            in_neg: 0b110,
            out_perm: vec![1, 2, 0],
            out_neg: 0b001,
        }
        .apply(&npn_seed)
        .unwrap(),
    ];
    let npn_solo_opts = mvf_attack::AnyIoOptions {
        shards: 1,
        npn: true,
        ..mvf_attack::AnyIoOptions::default()
    };
    let npn_shared_opts = mvf_attack::AnyIoOptions {
        class_share: true,
        ..npn_solo_opts.clone()
    };
    let npn_solo = mvf_attack::plausibility_sweep_any_io_with(
        &target3,
        &lib,
        &camo,
        &npn_candidates,
        &npn_solo_opts,
    );
    let npn_shared = mvf_attack::plausibility_sweep_any_io_with(
        &target3,
        &lib,
        &camo,
        &npn_candidates,
        &npn_shared_opts,
    );
    let npn_sharded = mvf_attack::plausibility_sweep_any_io_with(
        &target3,
        &lib,
        &camo,
        &npn_candidates,
        &mvf_attack::AnyIoOptions {
            shards: any_io_shards,
            ..npn_shared_opts.clone()
        },
    );
    let npn_identical = npn_solo
        .iter()
        .zip(&npn_shared)
        .zip(&npn_sharded)
        .all(|((a, b), c)| {
            a.plausible == b.plausible
                && a.witness == b.witness
                && b.plausible == c.plausible
                && b.witness == c.witness
        });
    assert!(
        npn_identical,
        "class sharing must not change NPN verdicts or witnesses, serial or sharded"
    );
    let npn_cost = |vs: &[mvf_attack::AnyIoVerdict]| -> usize {
        vs.iter().map(|v| v.queries + v.screened).sum()
    };
    let npn_orbit = npn_solo[0].orbit;
    let npn_classes = npn_shared.iter().map(|v| v.class).max().unwrap_or(0) + 1;
    let (npn_solo_cost, npn_shared_cost) = (npn_cost(&npn_solo), npn_cost(&npn_shared));
    let npn_saved = npn_solo_cost - npn_shared_cost;
    assert!(
        npn_saved > 0,
        "class sharing must save work on the duplicate-seeded batch"
    );
    let npn_solo_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io_with(
            black_box(&target3),
            &lib,
            &camo,
            &npn_candidates,
            &npn_solo_opts,
        ));
    }) / npn_candidates.len() as f64;
    let npn_shared_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io_with(
            black_box(&target3),
            &lib,
            &camo,
            &npn_candidates,
            &npn_shared_opts,
        ));
    }) / npn_candidates.len() as f64;
    let npn_speedup = npn_solo_ns / npn_shared_ns;
    println!(
        "npn solo   : {npn_solo_ns:>12.0} ns / candidate ({npn_orbit}-point orbit, \
         {npn_solo_cost} screen passes + SAT queries)"
    );
    println!(
        "npn shared : {npn_shared_ns:>12.0} ns / candidate ({npn_classes} class, \
         {npn_shared_cost} screen passes + SAT queries, {npn_saved} saved)"
    );
    println!("npn speedup: {npn_speedup:>12.2}x (bit-identical verdicts + witnesses)");

    // --- SAT inprocessing: simplified vs untouched clause database. ----
    // The 3-bit any-IO orbit again, but over a *partially* camouflaged
    // target — every third gate camouflaged, standard gates in between,
    // the mixed shape real camouflage-mapped circuits have. (A fully
    // camouflaged netlist is already tight at encode time: add-time
    // strengthening resolves the standard-cell rows away, leaving
    // simplify nothing to remove.) The sweep runs with and without the
    // vivification + bounded-variable-elimination pass (and the restart-
    // boundary vivification that follows it). Inprocessing costs one
    // up-front simplification and amortizes over the orbit's SAT
    // queries; verdicts, witnesses and query counts never change. The
    // SAT-free screen is disabled here — on the mixed target it settles
    // the whole orbit without a single solver call, which is its own
    // section's story; this section measures the solver.
    let target3_mixed = mvf_attack::partial_camouflage(&f3, &lib, &camo, 3).expect("buildable");
    let inprocess_on_opts = mvf_attack::AnyIoOptions {
        shards: 1,
        inprocess: mvf_bench::sat_inprocess(),
        screen: false,
        ..mvf_attack::AnyIoOptions::default()
    };
    let inprocess_off_opts = mvf_attack::AnyIoOptions {
        shards: 1,
        inprocess: false,
        screen: false,
        ..mvf_attack::AnyIoOptions::default()
    };
    let inprocess_on = mvf_attack::plausibility_sweep_any_io_with(
        &target3_mixed,
        &lib,
        &camo,
        &any_io_candidates,
        &inprocess_on_opts,
    );
    let inprocess_off = mvf_attack::plausibility_sweep_any_io_with(
        &target3_mixed,
        &lib,
        &camo,
        &any_io_candidates,
        &inprocess_off_opts,
    );
    let sat_inprocess_identical = inprocess_on == inprocess_off;
    assert!(
        sat_inprocess_identical,
        "inprocessing must not change any verdict, witness or query count"
    );
    // What the simplification pass actually removed, measured through a
    // job over the same sweep (the job's solver is the sweep's solver).
    let sat_inprocess_stats = {
        let mut job = mvf_attack::AnyIoJob::new(
            &target3_mixed,
            &lib,
            &camo,
            any_io_candidates.clone(),
            &inprocess_on_opts,
        );
        while !job.is_done() {
            job.step(usize::MAX);
        }
        job.sat_stats()
    };
    assert!(
        !mvf_bench::sat_inprocess() || sat_inprocess_stats.clauses_removed > 0,
        "the simplification pass must remove clauses on the bench encoding"
    );
    assert!(
        !mvf_bench::sat_inprocess() || sat_inprocess_stats.literals_removed > 0,
        "the simplification pass must remove literals on the bench encoding"
    );
    let sat_inprocess_queries: usize = inprocess_on.iter().map(|v| v.queries).sum();
    let sat_inprocess_on_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io_with(
            black_box(&target3),
            &lib,
            &camo,
            &any_io_candidates,
            &inprocess_on_opts,
        ));
    }) / sat_inprocess_queries as f64;
    let sat_inprocess_off_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io_with(
            black_box(&target3),
            &lib,
            &camo,
            &any_io_candidates,
            &inprocess_off_opts,
        ));
    }) / sat_inprocess_queries as f64;
    let sat_inprocess_speedup = sat_inprocess_off_ns / sat_inprocess_on_ns;
    println!(
        "inprocess off: {sat_inprocess_off_ns:>11.0} ns / query (untouched encoding, \
         {sat_inprocess_queries} orbit queries)"
    );
    println!(
        "inprocess on : {sat_inprocess_on_ns:>11.0} ns / query ({} clauses, {} literals \
         removed; {} vars eliminated)",
        sat_inprocess_stats.clauses_removed,
        sat_inprocess_stats.literals_removed,
        sat_inprocess_stats.n_eliminated,
    );
    println!(
        "inprocess speedup: {sat_inprocess_speedup:>7.2}x (bit-identical verdicts + witnesses)"
    );

    // --- Screen-then-solve: SAT-free refutation vs SAT-only sweep. -----
    // A hand-built 3-camo-cell circuit keeps the doping-configuration
    // product (5 · 3 · 5 = 75) enumerable, so the screen engages; with
    // the default batch the 3-input screen is complete (all minterms
    // covered) and settles every orbit representative without a single
    // SAT query. Verdicts and witnesses must match the SAT-only sweep
    // bit for bit.
    let screen_vectors = mvf_bench::screen_vectors();
    let screen_target = {
        use mvf_netlist::{CellRef, Netlist};
        let camo_id = |name: &str| {
            camo.iter()
                .find(|(_, cc)| cc.name() == name)
                .expect("camouflaged cell exists")
                .0
        };
        let mut nl = Netlist::new("screen_demo".to_string());
        let a = nl.add_input("a".to_string());
        let b = nl.add_input("b".to_string());
        let c = nl.add_input("c".to_string());
        let (_, y0) = nl.add_cell(
            "u0".to_string(),
            CellRef::Camo(camo_id("NAND2")),
            vec![a, b],
        );
        let (_, y1) = nl.add_cell("u1".to_string(), CellRef::Camo(camo_id("INV")), vec![c]);
        let (_, y2) = nl.add_cell(
            "u2".to_string(),
            CellRef::Camo(camo_id("AND2")),
            vec![y0, y1],
        );
        nl.add_output("y0".to_string(), y0);
        nl.add_output("y1".to_string(), y1);
        nl.add_output("y2".to_string(), y2);
        nl
    };
    // The circuit's true function under the look-alike reading, plus a
    // pin-scrambled copy (witness mid-orbit) and the implausible chaff
    // from the any-IO corpus.
    let screen_true = {
        let table: Vec<u16> = (0..8u16)
            .map(|m| {
                let (a, b, c) = (m & 1, (m >> 1) & 1, (m >> 2) & 1);
                let y0 = 1 - (a & b);
                let y1 = 1 - c;
                y0 | (y1 << 1) | ((y0 & y1) << 2)
            })
            .collect();
        mvf_logic::VectorFunction::from_lookup_table(3, 3, &table).unwrap()
    };
    let screen_candidates = vec![
        screen_true.clone(),
        screen_true
            .permute_inputs(&[2, 0, 1])
            .unwrap()
            .permute_outputs(&[1, 2, 0])
            .unwrap(),
        any_io_candidates[1].clone(),
        any_io_candidates[2].clone(),
    ];
    let screen_on_opts = mvf_attack::AnyIoOptions {
        screen_vectors,
        ..mvf_attack::AnyIoOptions::default()
    };
    let screen_off_opts = mvf_attack::AnyIoOptions {
        screen: false,
        ..mvf_attack::AnyIoOptions::default()
    };
    let screen_on = mvf_attack::plausibility_sweep_any_io_with(
        &screen_target,
        &lib,
        &camo,
        &screen_candidates,
        &screen_on_opts,
    );
    let screen_off = mvf_attack::plausibility_sweep_any_io_with(
        &screen_target,
        &lib,
        &camo,
        &screen_candidates,
        &screen_off_opts,
    );
    let sat_screen_identical = screen_on
        .iter()
        .zip(&screen_off)
        .all(|(a, b)| a.plausible == b.plausible && a.witness == b.witness);
    assert!(
        sat_screen_identical,
        "screening must not change any verdict or witness"
    );
    let sat_screen_vectors = mvf_attack::CamoScreen::build(
        &screen_target,
        &lib,
        &camo,
        &screen_candidates,
        screen_vectors,
    )
    .expect("3-camo-cell product is enumerable")
    .n_vectors();
    let sat_screened: usize = screen_on.iter().map(|v| v.screened).sum();
    let sat_screen_queries: usize = screen_on.iter().map(|v| v.queries).sum();
    let sat_screen_queries_off: usize = screen_off.iter().map(|v| v.queries).sum();
    let sat_screen_saved = sat_screen_queries_off - sat_screen_queries;
    assert!(
        sat_screen_saved > 0,
        "the screen must save SAT queries on the bench corpus"
    );
    let sat_screen_on_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io_with(
            black_box(&screen_target),
            &lib,
            &camo,
            &screen_candidates,
            &screen_on_opts,
        ));
    }) / screen_candidates.len() as f64;
    let sat_screen_off_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io_with(
            black_box(&screen_target),
            &lib,
            &camo,
            &screen_candidates,
            &screen_off_opts,
        ));
    }) / screen_candidates.len() as f64;
    let sat_screen_speedup = sat_screen_off_ns / sat_screen_on_ns;
    println!(
        "screen off : {sat_screen_off_ns:>12.0} ns / candidate ({sat_screen_queries_off} SAT queries)"
    );
    println!(
        "screen on  : {sat_screen_on_ns:>12.0} ns / candidate \
         ({sat_screen_vectors} vectors, {sat_screened} screened, {sat_screen_queries} queries)"
    );
    println!("screen speedup: {sat_screen_speedup:>10.2}x (bit-identical verdicts + witnesses)");

    // --- Logic locking: the scheme-generic sweep vs key enumeration. ---
    // The screen-demo circuit again, but as plain standard cells run
    // through the XOR/XNOR + MUX key-gate inserter — the second
    // obfuscation family. The same any-IO sweep flows unchanged through
    // the `ObfuscationSpace` seam; what CI pins is correctness, never
    // wall-clock: serial, sharded and screen-off sweeps agree verdict-
    // and witness-exactly, the identity sweep matches a brute-force
    // enumeration of the full key space, and every any-IO witness is
    // realized by some key value.
    let lock = mvf::lock_library(&lib);
    let lock_space = mvf::ObfuscationSpace::locking(&lib, &lock);
    let lock_plain = {
        use mvf_netlist::{CellRef, Netlist};
        let std_cell = |name: &str| lib.cell_by_name(name).expect("standard cell exists");
        let mut nl = Netlist::new("lock_demo".to_string());
        let a = nl.add_input("a".to_string());
        let b = nl.add_input("b".to_string());
        let c = nl.add_input("c".to_string());
        let (_, y0) = nl.add_cell(
            "u0".to_string(),
            CellRef::Std(std_cell("NAND2")),
            vec![a, b],
        );
        let (_, y1) = nl.add_cell("u1".to_string(), CellRef::Std(std_cell("INV")), vec![c]);
        let (_, y2) = nl.add_cell(
            "u2".to_string(),
            CellRef::Std(std_cell("AND2")),
            vec![y0, y1],
        );
        nl.add_output("y0".to_string(), y0);
        nl.add_output("y1".to_string(), y1);
        nl.add_output("y2".to_string(), y2);
        nl
    };
    let locked = mvf::obfuscate::lock_netlist(
        &lock_plain,
        &lock,
        &mvf::LockOptions {
            n_xor: 2,
            n_mux: 1,
            ..mvf::LockOptions::default()
        },
    )
    .expect("locking the demo circuit succeeds");
    let lock_target = &locked.netlist;
    let lock_key_bits = locked.key_bits();
    let lock_keys = 1usize << lock_key_bits;
    let lock_per_key: Vec<_> = (0..lock_keys)
        .map(|k| {
            let key: Vec<bool> = (0..lock_key_bits).map(|b| (k >> b) & 1 == 1).collect();
            mvf::sim::eval_camo_netlist(lock_target, &lib, &lock, &locked.config_for_key(&key))
                .expect("every key value is a valid configuration")
        })
        .collect();
    // The same four candidates as the screen section: the circuit's true
    // function (the all-transparent key), a pin-scrambled copy (witness
    // mid-orbit), and two functions no key reaches.
    let lock_candidates = screen_candidates.clone();
    let lock_serial = mvf_attack::plausibility_sweep_any_io_in(
        &lock_space,
        lock_target,
        &lock_candidates,
        &mvf_attack::AnyIoOptions::default(),
    );
    let lock_sharded = mvf_attack::plausibility_sweep_any_io_in(
        &lock_space,
        lock_target,
        &lock_candidates,
        &mvf_attack::AnyIoOptions {
            shards: any_io_shards,
            ..mvf_attack::AnyIoOptions::default()
        },
    );
    let lock_unscreened = mvf_attack::plausibility_sweep_any_io_in(
        &lock_space,
        lock_target,
        &lock_candidates,
        &mvf_attack::AnyIoOptions {
            screen: false,
            ..mvf_attack::AnyIoOptions::default()
        },
    );
    let lock_identity = mvf_attack::plausibility_sweep_in(
        &lock_space,
        lock_target,
        &lock_candidates,
        &mvf_attack::SweepOptions::default(),
    );
    let lock_brute_ok = lock_identity
        .iter()
        .zip(&lock_candidates)
        .all(|(v, cand)| v.plausible == lock_per_key.iter().any(|outs| outs == cand.outputs()));
    let lock_witness_ok =
        lock_serial
            .iter()
            .zip(&lock_candidates)
            .all(|(v, cand)| match &v.witness {
                Some(w) => {
                    let transformed = w.apply(cand).expect("witness shapes match");
                    lock_per_key
                        .iter()
                        .any(|outs| outs == transformed.outputs())
                }
                None => !v.plausible,
            });
    let lock_identical = lock_serial == lock_sharded
        && lock_serial
            .iter()
            .zip(&lock_unscreened)
            .all(|(a, b)| a.plausible == b.plausible && a.witness == b.witness)
        && lock_brute_ok
        && lock_witness_ok;
    assert!(
        lock_identical,
        "locking sweeps must be shard- and screen-invariant and match key enumeration"
    );
    assert!(
        lock_serial[0].plausible && lock_serial[1].plausible,
        "the true function and its scrambled copy must stay plausible under locking"
    );
    assert!(
        !lock_serial[2].plausible && !lock_serial[3].plausible,
        "the chaff candidates must be refuted under locking"
    );
    let lock_serial_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io_in(
            black_box(&lock_space),
            lock_target,
            &lock_candidates,
            &mvf_attack::AnyIoOptions::default(),
        ));
    }) / lock_candidates.len() as f64;
    let lock_sharded_ns = time_ns(|| {
        black_box(mvf_attack::plausibility_sweep_any_io_in(
            black_box(&lock_space),
            lock_target,
            &lock_candidates,
            &mvf_attack::AnyIoOptions {
                shards: any_io_shards,
                ..mvf_attack::AnyIoOptions::default()
            },
        ));
    }) / lock_candidates.len() as f64;
    let lock_speedup = lock_serial_ns / lock_sharded_ns;
    println!(
        "lock serial : {lock_serial_ns:>11.0} ns / candidate ({lock_key_bits}-bit key, \
         {lock_keys} key values enumerated for the oracle)"
    );
    println!(
        "lock sharded: {lock_sharded_ns:>11.0} ns / candidate ({any_io_shards} solver clones)"
    );
    println!("lock speedup: {lock_speedup:>11.2}x (bit-identical verdicts + witnesses)");

    // --- Cut enumeration: nested Vec<Vec<Cut>> vs flat CSR CutSet. -----
    let cut_graph = build_random_aig(12, 600, 0xC5_0002);
    let (k, max_cuts) = (4usize, 8usize); // the rewriting pass's budget
    let mut cut_set = CutSet::new();
    enumerate_cuts_into(&cut_graph, k, max_cuts, &mut cut_set);
    let nested = nested_enumerate_cuts(&cut_graph, k, max_cuts);
    assert_eq!(cut_set.n_nodes(), nested.len());
    for (id, node_cuts) in nested.iter().enumerate() {
        assert_eq!(
            cut_set.cuts_of(id as u32),
            node_cuts.as_slice(),
            "CSR and nested cut lists disagree at node {id}"
        );
    }
    let cuts_nested_ns = time_ns(|| {
        black_box(nested_enumerate_cuts(black_box(&cut_graph), k, max_cuts));
    });
    let cuts_csr_ns = time_ns(|| {
        enumerate_cuts_into(black_box(&cut_graph), k, max_cuts, &mut cut_set);
        black_box(&cut_set);
    });
    let cuts_speedup = cuts_nested_ns / cuts_csr_ns;
    println!("cuts nested: {cuts_nested_ns:>12.0} ns / enumeration (per-node Vecs, fresh)");
    println!("cuts csr   : {cuts_csr_ns:>12.0} ns / enumeration (flat CutSet, reused)");
    println!("cuts speedup: {cuts_speedup:>11.2}x");

    // --- Camo validation: per-config eval vs word-parallel multi-eval. -
    let camo_funcs = sboxes[..4].to_vec();
    let merged = mvf_merge::build_merged(
        &camo_funcs,
        &mvf_merge::PinAssignment::identity(&camo_funcs),
    )
    .expect("mergeable");
    let synthesized = mvf_aig::Script::fast().run(&merged.aig);
    let subject = mvf_netlist::subject_graph::from_aig(&synthesized, &lib);
    let mapped = mvf_techmap::map_camouflage(
        &subject,
        &lib,
        &camo,
        &merged.select_indices,
        &mvf_techmap::CamoMapOptions::default(),
    )
    .expect("mappable");
    let configs: Vec<std::collections::HashMap<_, _>> = (0..camo_funcs.len())
        .map(|j| {
            mapped
                .witness
                .cells
                .iter()
                .map(|w| (w.cell, w.function_for(j).clone()))
                .collect()
        })
        .collect();
    // Correctness: the word-parallel pass equals per-config evaluation.
    let multi = mvf_sim::eval_camo_netlist_multi(&mapped.netlist, &lib, &camo, &configs)
        .expect("evaluable");
    for (j, config) in configs.iter().enumerate() {
        let single =
            mvf_sim::eval_camo_netlist(&mapped.netlist, &lib, &camo, config).expect("evaluable");
        assert_eq!(multi[j], single, "config {j}");
    }
    let camo_percfg_ns = time_ns(|| {
        for config in &configs {
            black_box(
                mvf_sim::eval_camo_netlist(black_box(&mapped.netlist), &lib, &camo, config)
                    .expect("evaluable"),
            );
        }
    }) / configs.len() as f64;
    let mut camo_scratch = mvf_logic::TtArena::default();
    let camo_multi_ns = time_ns(|| {
        black_box(
            mvf_sim::eval_camo_netlist_multi_with(
                black_box(&mapped.netlist),
                &lib,
                &camo,
                &configs,
                &mut camo_scratch,
            )
            .expect("evaluable"),
        );
    }) / configs.len() as f64;
    let camo_speedup = camo_percfg_ns / camo_multi_ns;
    // The Phase-III mapper itself: cold vs EvalContext-warmed scratch.
    let mut camo_ctx = EvalContext::new();
    let warm_mapped = camo_ctx
        .map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &mvf_techmap::CamoMapOptions::default(),
        )
        .expect("mappable");
    assert_eq!(
        warm_mapped.netlist.area_ge(&lib, Some(&camo)),
        mapped.netlist.area_ge(&lib, Some(&camo)),
        "scratch reuse must not change mapping decisions"
    );
    let camo_map_cold_ns = time_ns(|| {
        black_box(
            mvf_techmap::map_camouflage(
                black_box(&subject),
                &lib,
                &camo,
                &merged.select_indices,
                &mvf_techmap::CamoMapOptions::default(),
            )
            .expect("mappable"),
        );
    });
    let camo_map_warm_ns = time_ns(|| {
        black_box(
            camo_ctx
                .map_camouflage(
                    black_box(&subject),
                    &lib,
                    &camo,
                    &merged.select_indices,
                    &mvf_techmap::CamoMapOptions::default(),
                )
                .expect("mappable"),
        );
    });
    println!("camo percfg: {camo_percfg_ns:>12.0} ns / config (one eval per doping config)");
    println!("camo multi : {camo_multi_ns:>12.0} ns / config (word-parallel shared products)");
    println!("camo speedup: {camo_speedup:>11.2}x");
    println!("camo map   : {camo_map_cold_ns:>12.0} ns cold, {camo_map_warm_ns:>12.0} ns warm");

    // --- Truth-table kernels: 8-wide chunked vs scalar word loops. -----
    // 14-variable tables (256 words per slot) — the regime the
    // word-parallel validator reaches once config variables widen the
    // space — ANDed down a dependency chain.
    let tt_vars = 14usize;
    let tt_slots = 64usize;
    let words_per_slot = 1usize << (tt_vars - 6);
    let mut kernel_arena = mvf_logic::TtArena::new(tt_vars, tt_slots);
    kernel_arena.write_var(0, 0);
    kernel_arena.write_var(1, tt_vars - 1);
    // Scalar baseline: the same chain over plain per-word loops.
    let mut scalar: Vec<Vec<u64>> = vec![vec![0u64; words_per_slot]; tt_slots];
    scalar[0].copy_from_slice(kernel_arena.slot(0));
    scalar[1].copy_from_slice(kernel_arena.slot(1));
    let run_scalar = |slots: &mut Vec<Vec<u64>>| {
        for i in 2..tt_slots {
            let ma = if i % 3 == 0 { u64::MAX } else { 0 };
            for k in 0..words_per_slot {
                let x = (slots[i - 1][k] ^ ma) & slots[i - 2][k];
                slots[i][k] = x;
            }
        }
    };
    let run_chunked = |arena: &mut mvf_logic::TtArena| {
        for i in 2..tt_slots {
            arena.and2(i, i - 1, i % 3 == 0, i - 2, false);
        }
    };
    run_scalar(&mut scalar);
    run_chunked(&mut kernel_arena);
    for i in 0..tt_slots {
        assert_eq!(
            kernel_arena.slot(i),
            scalar[i].as_slice(),
            "chunked and scalar kernels disagree at slot {i}"
        );
    }
    let tt_scalar_ns = time_ns(|| {
        run_scalar(&mut scalar);
        black_box(&scalar);
    });
    let tt_chunked_ns = time_ns(|| {
        run_chunked(&mut kernel_arena);
        black_box(&kernel_arena);
    });
    let tt_speedup = tt_scalar_ns / tt_chunked_ns;
    println!("tt scalar  : {tt_scalar_ns:>12.0} ns / {tt_slots}-slot chain (per-word loop)");
    println!("tt chunked : {tt_chunked_ns:>12.0} ns / {tt_slots}-slot chain (8-wide kernels)");
    println!("tt speedup : {tt_speedup:>12.2}x ({tt_vars}-var tables, {words_per_slot} words)");

    // --- Machine-readable record. ------------------------------------
    let out_path = std::env::var("MVF_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        concat!(
            "{{\n",
            "  \"sim\": {{\n",
            "    \"n_inputs\": 16,\n",
            "    \"n_ands\": {},\n",
            "    \"naive_ns\": {:.0},\n",
            "    \"arena_ns\": {:.0},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"ga\": {{\n",
            "    \"workload\": \"PRESENT-2\",\n",
            "    \"population\": 8,\n",
            "    \"generations\": 2,\n",
            "    \"serial_ms\": {:.1},\n",
            "    \"parallel_ms\": {:.1},\n",
            "    \"threads\": {},\n",
            "    \"speedup\": {:.2},\n",
            "    \"bit_identical\": {}\n",
            "  }},\n",
            "  \"fitness\": {{\n",
            "    \"workload\": \"PRESENT-2\",\n",
            "    \"evaluations\": {},\n",
            "    \"cold_ns\": {:.0},\n",
            "    \"warm_ns\": {:.0},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"sat_sweep\": {{\n",
            "    \"workload\": \"PRESENT random-camouflage\",\n",
            "    \"candidates\": {},\n",
            "    \"percand_ns\": {:.0},\n",
            "    \"sweep_ns\": {:.0},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"sat_decide\": {{\n",
            "    \"n_vars\": {},\n",
            "    \"n_clauses\": {},\n",
            "    \"linear_ns\": {:.0},\n",
            "    \"heap_ns\": {:.0},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"sweep_parallel\": {{\n",
            "    \"workload\": \"PRESENT random-camouflage\",\n",
            "    \"candidates\": {},\n",
            "    \"shards\": {},\n",
            "    \"serial_ns\": {:.0},\n",
            "    \"sharded_ns\": {:.0},\n",
            "    \"speedup\": {:.2},\n",
            "    \"bit_identical\": {}\n",
            "  }},\n",
            "  \"sweep_any_io\": {{\n",
            "    \"workload\": \"3-bit random-camouflage, interpretation freedom\",\n",
            "    \"candidates\": {},\n",
            "    \"shards\": {},\n",
            "    \"orbit\": {},\n",
            "    \"unique\": {},\n",
            "    \"serial_ns\": {:.0},\n",
            "    \"sharded_ns\": {:.0},\n",
            "    \"speedup\": {:.2},\n",
            "    \"bit_identical\": {}\n",
            "  }},\n",
            "  \"sweep_npn\": {{\n",
            "    \"workload\": \"3-bit random-camouflage, NPN-complete adversary\",\n",
            "    \"candidates\": {},\n",
            "    \"classes\": {},\n",
            "    \"orbit\": {},\n",
            "    \"solo_cost\": {},\n",
            "    \"shared_cost\": {},\n",
            "    \"class_queries_saved\": {},\n",
            "    \"solo_ns\": {:.0},\n",
            "    \"shared_ns\": {:.0},\n",
            "    \"speedup\": {:.2},\n",
            "    \"bit_identical\": {}\n",
            "  }},\n",
            "  \"sat_inprocess\": {{\n",
            "    \"workload\": \"3-bit mixed camouflage (every 3rd gate), interpretation freedom\",\n",
            "    \"candidates\": {},\n",
            "    \"clauses_removed\": {},\n",
            "    \"literals_removed\": {},\n",
            "    \"n_vivified\": {},\n",
            "    \"n_eliminated\": {},\n",
            "    \"queries\": {},\n",
            "    \"off_query_ns\": {:.0},\n",
            "    \"on_query_ns\": {:.0},\n",
            "    \"speedup\": {:.2},\n",
            "    \"bit_identical\": {}\n",
            "  }},\n",
            "  \"sat_screen\": {{\n",
            "    \"workload\": \"3-camo-cell screen demo, interpretation freedom\",\n",
            "    \"candidates\": {},\n",
            "    \"vectors\": {},\n",
            "    \"screened\": {},\n",
            "    \"queries\": {},\n",
            "    \"queries_saved\": {},\n",
            "    \"off_ns\": {:.0},\n",
            "    \"on_ns\": {:.0},\n",
            "    \"speedup\": {:.2},\n",
            "    \"bit_identical\": {}\n",
            "  }},\n",
            "  \"sweep_locking\": {{\n",
            "    \"workload\": \"3-bit locked screen demo, interpretation freedom\",\n",
            "    \"candidates\": {},\n",
            "    \"key_bits\": {},\n",
            "    \"keys\": {},\n",
            "    \"shards\": {},\n",
            "    \"serial_ns\": {:.0},\n",
            "    \"sharded_ns\": {:.0},\n",
            "    \"speedup\": {:.2},\n",
            "    \"bit_identical\": {}\n",
            "  }},\n",
            "  \"cuts_csr\": {{\n",
            "    \"n_inputs\": 12,\n",
            "    \"n_ands\": {},\n",
            "    \"k\": {},\n",
            "    \"max_cuts\": {},\n",
            "    \"nested_ns\": {:.0},\n",
            "    \"csr_ns\": {:.0},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"camo_fitness\": {{\n",
            "    \"workload\": \"PRESENT-4\",\n",
            "    \"configs\": {},\n",
            "    \"percfg_ns\": {:.0},\n",
            "    \"multi_ns\": {:.0},\n",
            "    \"speedup\": {:.2},\n",
            "    \"map_cold_ns\": {:.0},\n",
            "    \"map_warm_ns\": {:.0}\n",
            "  }},\n",
            "  \"tt_kernels\": {{\n",
            "    \"n_vars\": {},\n",
            "    \"slots\": {},\n",
            "    \"words_per_slot\": {},\n",
            "    \"scalar_ns\": {:.0},\n",
            "    \"chunked_ns\": {:.0},\n",
            "    \"speedup\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        g.n_ands(),
        naive_ns,
        arena_ns,
        sim_speedup,
        serial_ms,
        parallel_ms,
        threads,
        ga_speedup,
        identical,
        fitness_batch,
        percall_ns,
        reuse_ns,
        fitness_speedup,
        sweep_candidates.len(),
        sat_percand_ns,
        sat_sweep_ns,
        sat_speedup,
        decide_vars,
        decide_clauses,
        sat_decide_linear_ns,
        sat_decide_heap_ns,
        sat_decide_speedup,
        sweep_candidates.len(),
        sweep_shards,
        sweep_serial_ns,
        sweep_sharded_ns,
        sweep_parallel_speedup,
        sweep_parallel_identical,
        any_io_candidates.len(),
        any_io_shards,
        any_io_orbit,
        any_io_unique,
        any_io_serial_ns,
        any_io_sharded_ns,
        any_io_speedup,
        any_io_identical,
        npn_candidates.len(),
        npn_classes,
        npn_orbit,
        npn_solo_cost,
        npn_shared_cost,
        npn_saved,
        npn_solo_ns,
        npn_shared_ns,
        npn_speedup,
        npn_identical,
        any_io_candidates.len(),
        sat_inprocess_stats.clauses_removed,
        sat_inprocess_stats.literals_removed,
        sat_inprocess_stats.n_vivified,
        sat_inprocess_stats.n_eliminated,
        sat_inprocess_queries,
        sat_inprocess_off_ns,
        sat_inprocess_on_ns,
        sat_inprocess_speedup,
        sat_inprocess_identical,
        screen_candidates.len(),
        sat_screen_vectors,
        sat_screened,
        sat_screen_queries,
        sat_screen_saved,
        sat_screen_off_ns,
        sat_screen_on_ns,
        sat_screen_speedup,
        sat_screen_identical,
        lock_candidates.len(),
        lock_key_bits,
        lock_keys,
        any_io_shards,
        lock_serial_ns,
        lock_sharded_ns,
        lock_speedup,
        lock_identical,
        cut_graph.n_ands(),
        k,
        max_cuts,
        cuts_nested_ns,
        cuts_csr_ns,
        cuts_speedup,
        configs.len(),
        camo_percfg_ns,
        camo_multi_ns,
        camo_speedup,
        camo_map_cold_ns,
        camo_map_warm_ns,
        tt_vars,
        tt_slots,
        words_per_slot,
        tt_scalar_ns,
        tt_chunked_ns,
        tt_speedup,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    println!("wrote {out_path}");
}
