//! Component microbenchmarks: synthesis passes, technology mapping, NPN
//! canonicalization, merged-circuit construction, exhaustive validation
//! and the SAT-based plausibility attack.

use criterion::{criterion_group, criterion_main, Criterion};
use mvf_aig::Script;
use mvf_cells::{CamoLibrary, Library};
use mvf_logic::npn::npn_canonical;
use mvf_logic::TruthTable;
use mvf_merge::{build_merged, PinAssignment};
use mvf_netlist::subject_graph;
use mvf_techmap::{map_camouflage, map_standard, CamoMapOptions, MapOptions};

fn bench(c: &mut Criterion) {
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let functions = mvf_sboxes::optimal_sboxes()[..4].to_vec();
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let synthesized = Script::fast().run(&merged.aig);
    let subject = subject_graph::from_aig(&synthesized, &lib);

    c.bench_function("merge_present4", |b| {
        b.iter(|| build_merged(&functions, &PinAssignment::identity(&functions)).unwrap())
    });

    c.bench_function("synthesis_fast_present4", |b| {
        b.iter(|| Script::fast().run(&merged.aig))
    });

    c.bench_function("synthesis_standard_present4", |b| {
        b.iter(|| Script::standard().run(&merged.aig))
    });

    c.bench_function("map_standard_present4", |b| {
        b.iter(|| map_standard(&subject, &lib, &MapOptions::default()).unwrap())
    });

    c.bench_function("map_camouflage_present4", |b| {
        b.iter(|| {
            map_camouflage(
                &subject,
                &lib,
                &camo,
                &merged.select_indices,
                &CamoMapOptions::default(),
            )
            .unwrap()
        })
    });

    let mapped = map_camouflage(
        &subject,
        &lib,
        &camo,
        &merged.select_indices,
        &CamoMapOptions::default(),
    )
    .unwrap();

    c.bench_function("validate_mapped_present4", |b| {
        b.iter(|| mvf_sim::validate_mapped(&mapped, &lib, &camo, &merged.functions).unwrap())
    });

    let mut group = c.benchmark_group("attack");
    group.sample_size(10);
    group.bench_function("sat_plausibility_present4", |b| {
        b.iter(|| {
            assert!(mvf_attack::is_plausible(
                &mapped.netlist,
                &lib,
                &camo,
                &merged.functions[0]
            ))
        })
    });
    group.finish();

    c.bench_function("npn_canonical_4var", |b| {
        let tts: Vec<TruthTable> = (0..32u64)
            .map(|i| TruthTable::from_word(4, i.wrapping_mul(0x9E3779B97F4A7C15)).unwrap())
            .collect();
        b.iter(|| {
            for t in &tts {
                criterion::black_box(npn_canonical(t));
            }
        })
    });

    c.bench_function("isop_6var", |b| {
        let tts: Vec<TruthTable> = (0..16u64)
            .map(|i| TruthTable::from_word(6, i.wrapping_mul(0xD1B54A32D192ED03)).unwrap())
            .collect();
        b.iter(|| {
            for t in &tts {
                criterion::black_box(mvf_logic::isop(t, t));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
