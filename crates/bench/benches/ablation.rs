//! Ablations for the design choices called out in DESIGN.md:
//!
//! * camouflage-mapper subtree depth bound (the paper's "depth < 3");
//! * allowing standard cells for select-independent cones;
//! * search strategies: full GA vs mutation-only vs crossover-only vs
//!   random search vs hill climbing, at one evaluation budget.
//!
//! Results are printed as small tables before the timing section.

use criterion::{criterion_group, criterion_main, Criterion};
use mvf::FlowConfig;
use mvf_aig::Script;
use mvf_cells::{CamoLibrary, Library};
use mvf_ga::{GaConfig, GeneticAlgorithm};
use mvf_merge::{build_merged, PinAssignment};
use mvf_netlist::subject_graph;
use mvf_techmap::{map_camouflage, CamoMapOptions};

fn depth_ablation() {
    println!("\n--- Ablation: camo-mapper subtree depth bound (PRESENT x4) ---");
    println!("{:<8} {:>12} {:>10}", "depth", "area (GE)", "cells");
    let functions = mvf_sboxes::optimal_sboxes()[..4].to_vec();
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let synthesized = Script::fast().run(&merged.aig);
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let subject = subject_graph::from_aig(&synthesized, &lib);
    for depth in [2usize, 3, 4, 5, 6] {
        let opts = CamoMapOptions {
            max_depth: depth,
            ..CamoMapOptions::default()
        };
        match map_camouflage(&subject, &lib, &camo, &merged.select_indices, &opts) {
            Ok(m) => println!(
                "{:<8} {:>12.1} {:>10}",
                depth,
                m.netlist.area_ge(&lib, Some(&camo)),
                m.netlist.n_cells()
            ),
            Err(e) => println!("{depth:<8} unmappable: {e}"),
        }
    }
}

fn standard_cells_ablation() {
    println!("\n--- Ablation: standard cells for select-independent cones (PRESENT x4) ---");
    let functions = mvf_sboxes::optimal_sboxes()[..4].to_vec();
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let synthesized = Script::fast().run(&merged.aig);
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let subject = subject_graph::from_aig(&synthesized, &lib);
    for allow in [true, false] {
        let opts = CamoMapOptions {
            allow_standard_cells: allow,
            ..CamoMapOptions::default()
        };
        let m =
            map_camouflage(&subject, &lib, &camo, &merged.select_indices, &opts).expect("mappable");
        let n_camo = m.witness.cells.len();
        println!(
            "allow_standard_cells={:<5} area {:>8.1} GE, {} cells ({} camouflaged)",
            allow,
            m.netlist.area_ge(&lib, Some(&camo)),
            m.netlist.n_cells(),
            n_camo
        );
    }
}

fn ga_operator_ablation() {
    println!("\n--- Ablation: GA operators (PRESENT x4, tiny budget) ---");
    let functions = mvf_sboxes::optimal_sboxes()[..4].to_vec();
    let flow_cfg = FlowConfig::default();
    let lib = Library::standard();
    let fitness = |a: &PinAssignment| {
        mvf::synthesized_area_ge(&functions, a, &flow_cfg.script, &lib, &flow_cfg.map)
            .unwrap_or(f64::INFINITY)
    };
    let base = GaConfig {
        population: 8,
        generations: 4,
        seed: 77,
        ..GaConfig::default()
    };
    for (label, crossover_rate, mutation_rate) in [
        ("full GA", 0.7, 0.4),
        ("mutation-only", 0.0, 1.0),
        ("crossover-only", 1.0, 0.0),
    ] {
        let cfg = GaConfig {
            crossover_rate,
            mutation_rate,
            ..base.clone()
        };
        let engine = GeneticAlgorithm::new(cfg);
        let res = engine.run(
            |rng| mvf::random_assignment(&functions, rng),
            |g, rng| {
                let j = rand::Rng::gen_range(rng, 0..g.input_perms.len());
                mvf_ga::permutation::swap_mutation(&mut g.input_perms[j], rng);
            },
            |a, b, rng| {
                let mut child = a.clone();
                for (cp, bp) in child.input_perms.iter_mut().zip(&b.input_perms) {
                    *cp = mvf_ga::permutation::pmx(cp, bp, rng);
                }
                child
            },
            fitness,
        );
        println!(
            "{label:<15} best {:>7.1} GE in {} evals",
            res.best_fitness, res.evaluations
        );
    }
    let budget = GeneticAlgorithm::new(base).evaluation_budget();
    let rs = mvf_ga::random_search(
        budget,
        99,
        |rng| mvf::random_assignment(&functions, rng),
        fitness,
    );
    println!(
        "{:<15} best {:>7.1} GE in {} evals",
        "random search", rs.best_fitness, budget
    );
    // The hill-climbing strategy at the same budget, through the
    // objective/strategy API (2 restarts × (1 + 3 steps × 5) = 32).
    use mvf_ga::SearchStrategy;
    let objective = mvf::PinObjective::new(&functions, &flow_cfg.script, &lib, &flow_cfg.map);
    let hc = mvf_ga::HillClimb {
        restarts: 2,
        steps: 3,
        batch: 5,
        seed: 99,
        threads: 0,
    };
    assert_eq!(hc.evaluation_budget(), budget, "equal-budget comparison");
    let out = hc.search(&objective);
    println!(
        "{:<15} best {:>7.1} GE in {} evals",
        "hill climb", out.best_fitness, out.evaluations
    );
}

fn bench(c: &mut Criterion) {
    depth_ablation();
    standard_cells_ablation();
    ga_operator_ablation();

    // Time the camouflage mapper itself at the default depth.
    let functions = mvf_sboxes::optimal_sboxes()[..4].to_vec();
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let synthesized = Script::fast().run(&merged.aig);
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let subject = subject_graph::from_aig(&synthesized, &lib);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("camo_map_present4", |b| {
        b.iter(|| {
            map_camouflage(
                &subject,
                &lib,
                &camo,
                &merged.select_indices,
                &CamoMapOptions::default(),
            )
            .expect("mappable")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
