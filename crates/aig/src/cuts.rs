//! k-feasible cut enumeration and cut-function computation.
//!
//! A *cut* of node `n` is a set of nodes (leaves) such that every path from
//! `n` to a primary input passes through a leaf. Cuts with at most `k`
//! leaves are the candidate cones considered by the rewriting and
//! refactoring passes.

use std::collections::HashMap;

use mvf_logic::TruthTable;

use crate::{Aig, NodeId};

/// A cut: sorted leaf node ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: Vec<u32>,
}

impl Cut {
    /// The leaf node ids, ascending.
    pub fn leaves(&self) -> &[u32] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// `true` iff the cut has no leaves (constant cone).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        let mut leaves = Vec::with_capacity(k + 1);
        let (mut i, mut j) = (0, 0);
        while i < self.leaves.len() || j < other.leaves.len() {
            let next = match (self.leaves.get(i), other.leaves.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                    a
                }
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) => {
                    j += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!(),
            };
            if leaves.len() == k {
                return None;
            }
            leaves.push(next);
        }
        Some(Cut { leaves })
    }

    /// `true` iff `self`'s leaves are a subset of `other`'s.
    fn dominates(&self, other: &Cut) -> bool {
        self.leaves.iter().all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Enumerates up to `max_cuts` k-feasible cuts per node.
///
/// The result is indexed by node id. Every node's cut list contains the
/// trivial cut `{node}` last, so it can be used as a fallback.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<Cut>> {
    assert!(k > 0, "cut size must be positive");
    let n_nodes = aig.n_nodes();
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); n_nodes];
    // Constant node: single empty cut.
    cuts[0] = vec![Cut { leaves: vec![] }];
    for i in 0..aig.n_inputs() {
        cuts[i + 1] = vec![Cut { leaves: vec![i as u32 + 1] }];
    }
    for id in aig.and_nodes() {
        let (f0, f1) = aig.fanins(id);
        let c0 = cuts[f0.node().0 as usize].clone();
        let c1 = cuts[f1.node().0 as usize].clone();
        let mut merged: Vec<Cut> = Vec::new();
        for a in &c0 {
            for b in &c1 {
                if let Some(c) = a.merge(b, k) {
                    if !merged.contains(&c) {
                        merged.push(c);
                    }
                }
            }
        }
        // Drop dominated cuts (a cut whose leaves are a superset of
        // another's carries no extra information).
        let mut kept: Vec<Cut> = Vec::new();
        merged.sort_by_key(Cut::len);
        for c in merged {
            if !kept.iter().any(|k2| k2.dominates(&c)) {
                kept.push(c);
            }
        }
        // Keep the widest cut even when truncating: the refactoring pass
        // wants the largest collapsible cone.
        let widest = kept.last().cloned();
        kept.truncate(max_cuts.saturating_sub(1).max(1));
        if let Some(w) = widest {
            if !kept.contains(&w) {
                kept.push(w);
            }
        }
        kept.push(Cut { leaves: vec![id.0] });
        cuts[id.0 as usize] = kept;
    }
    cuts
}

/// Computes the function of `root` over the cut's leaves: variable `i`
/// corresponds to `leaves[i]`.
///
/// # Panics
///
/// Panics if the leaf set is not a valid cut of `root` (the traversal
/// would reach a primary input or the constant node not in the leaves) or
/// has more than [`mvf_logic::MAX_VARS`] leaves.
pub fn cut_function(aig: &Aig, root: NodeId, leaves: &[u32]) -> TruthTable {
    let k = leaves.len();
    let mut memo: HashMap<u32, TruthTable> = HashMap::new();
    for (i, &l) in leaves.iter().enumerate() {
        memo.insert(l, TruthTable::var(i, k));
    }
    if !memo.contains_key(&0) {
        memo.insert(0, TruthTable::zero(k));
    }
    // Iterative post-order evaluation.
    let mut stack = vec![root.0];
    while let Some(&id) = stack.last() {
        if memo.contains_key(&id) {
            stack.pop();
            continue;
        }
        assert!(
            aig.is_and(NodeId(id)),
            "leaf set is not a cut: reached non-AND node {id}"
        );
        let (f0, f1) = aig.fanins(NodeId(id));
        let n0 = f0.node().0;
        let n1 = f1.node().0;
        let m0 = memo.get(&n0).cloned();
        let m1 = memo.get(&n1).cloned();
        match (m0, m1) {
            (Some(t0), Some(t1)) => {
                stack.pop();
                let t0 = if f0.is_complement() { t0.not() } else { t0 };
                let t1 = if f1.is_complement() { t1.not() } else { t1 };
                memo.insert(id, t0.and(&t1));
            }
            (m0, m1) => {
                if m0.is_none() {
                    stack.push(n0);
                }
                if m1.is_none() {
                    stack.push(n1);
                }
            }
        }
    }
    memo.remove(&root.0).expect("root evaluated")
}

/// Number of AND nodes in the cone of `root` above the cut leaves.
///
/// This is the upper bound on nodes freed if the cone is replaced.
pub fn cone_size(aig: &Aig, root: NodeId, leaves: &[u32]) -> usize {
    let mut seen: Vec<u32> = Vec::new();
    let mut stack = vec![root.0];
    let mut count = 0usize;
    while let Some(id) = stack.pop() {
        if leaves.contains(&id) || seen.contains(&id) {
            continue;
        }
        seen.push(id);
        if aig.is_and(NodeId(id)) {
            count += 1;
            let (f0, f1) = aig.fanins(NodeId(id));
            stack.push(f0.node().0);
            stack.push(f1.node().0);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> (Aig, NodeId) {
        // f = (a·b)·(b·c): reconvergent on b.
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let ab = g.and(a, b);
        let bc = g.and(b, c);
        let f = g.and(ab, bc);
        g.add_output("f", f);
        (g, f.node())
    }

    #[test]
    fn trivial_cuts_present() {
        let (g, root) = sample_aig();
        let cuts = enumerate_cuts(&g, 4, 8);
        let root_cuts = &cuts[root.0 as usize];
        assert!(root_cuts.iter().any(|c| c.leaves() == [root.0]));
    }

    #[test]
    fn finds_the_three_leaf_cut() {
        let (g, root) = sample_aig();
        let cuts = enumerate_cuts(&g, 4, 8);
        let root_cuts = &cuts[root.0 as usize];
        // The cut {a, b, c} = node ids {1, 2, 3} must be found.
        assert!(
            root_cuts.iter().any(|c| c.leaves() == [1, 2, 3]),
            "cuts: {root_cuts:?}"
        );
    }

    #[test]
    fn cut_function_on_reconvergence() {
        let (g, root) = sample_aig();
        let f = cut_function(&g, root, &[1, 2, 3]);
        // f = a·b·c over (a, b, c) = vars (0, 1, 2).
        for m in 0..8usize {
            assert_eq!(f.get(m), m == 7);
        }
    }

    #[test]
    fn cut_function_with_complemented_edges() {
        let mut g = Aig::new(2);
        let a = g.input(0);
        let b = g.input(1);
        let f = g.or(a, !b);
        let t = cut_function(&g, f.node(), &[1, 2]);
        // or returns complemented AND internally: check underlying node
        // function is ¬a · b, i.e. f-literal complement handled by caller.
        for m in 0..4usize {
            let (av, bv) = (m & 1 == 1, m & 2 == 2);
            assert_eq!(t.get(m), !(av || !bv));
        }
    }

    #[test]
    fn k_limits_cut_width() {
        // 6-input AND tree: with k = 4 no cut may exceed 4 leaves.
        let mut g = Aig::new(6);
        let lits: Vec<_> = (0..6).map(|i| g.input(i)).collect();
        let f = g.and_many(&lits);
        g.add_output("f", f);
        let cuts = enumerate_cuts(&g, 4, 16);
        for (id, node_cuts) in cuts.iter().enumerate() {
            for c in node_cuts {
                assert!(c.len() <= 4, "node {id} cut {c:?}");
            }
        }
    }

    #[test]
    fn cone_size_counts_inner_ands() {
        let (g, root) = sample_aig();
        assert_eq!(cone_size(&g, root, &[1, 2, 3]), 3);
        // Cone over its own fanins counts only the root.
        let (f0, f1) = g.fanins(root);
        assert_eq!(cone_size(&g, root, &[f0.node().0, f1.node().0]), 1);
    }

    #[test]
    fn dominated_cuts_are_pruned() {
        let (g, root) = sample_aig();
        let cuts = enumerate_cuts(&g, 4, 16);
        let root_cuts = &cuts[root.0 as usize];
        for (i, a) in root_cuts.iter().enumerate() {
            for (j, b) in root_cuts.iter().enumerate() {
                if i != j && a.leaves() != [root.0] {
                    assert!(
                        !a.dominates(b) || a == b,
                        "dominated cut kept: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }
}
