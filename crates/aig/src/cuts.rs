//! k-feasible cut enumeration and cut-function computation.
//!
//! A *cut* of node `n` is a set of nodes (leaves) such that every path from
//! `n` to a primary input passes through a leaf. Cuts with at most `k`
//! leaves are the candidate cones considered by the rewriting and
//! refactoring passes.
//!
//! Cuts are stored inline ([`Cut`] is `Copy`: a fixed `[u32; 16]` leaf
//! array plus a 64-bit membership signature) so enumeration performs no
//! per-cut heap allocation, and duplicate / dominated cuts are rejected
//! through the signature before any element-wise comparison. Cut functions
//! are evaluated in a flat [`TtArena`] instead of a map of per-node
//! tables.

use mvf_logic::{TruthTable, TtArena};

use crate::{Aig, NodeId};

/// Maximum number of leaves a [`Cut`] can hold.
pub const MAX_CUT_LEAVES: usize = 16;

/// A cut: sorted leaf node ids, stored inline.
///
/// The `sig` field is a 64-bit Bloom-style membership signature (bit
/// `id % 64` set for every leaf): equal cuts have equal signatures and a
/// subset's signature bits are a subset, so signature tests cheaply
/// pre-filter the exact comparisons. Unused leaf slots are kept at zero,
/// which makes the derived equality and hashing exact.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cut {
    sig: u64,
    len: u8,
    leaves: [u32; MAX_CUT_LEAVES],
}

impl Cut {
    /// The empty cut (constant cone).
    pub fn empty() -> Cut {
        Cut {
            sig: 0,
            len: 0,
            leaves: [0; MAX_CUT_LEAVES],
        }
    }

    /// The trivial cut `{leaf}`.
    pub fn unit(leaf: u32) -> Cut {
        let mut leaves = [0; MAX_CUT_LEAVES];
        leaves[0] = leaf;
        Cut {
            sig: signature_bit(leaf),
            len: 1,
            leaves,
        }
    }

    /// The leaf node ids, ascending.
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` iff the cut has no leaves (constant cone).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` iff `id` is one of the leaves.
    pub fn contains(&self, id: u32) -> bool {
        self.sig & signature_bit(id) != 0 && self.leaves().contains(&id)
    }

    /// Sorted-merge of two cuts, or `None` if the union exceeds `k`
    /// leaves.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        let sig = self.sig | other.sig;
        // The signature underestimates the union size, so a popcount
        // above k proves infeasibility without touching the arrays.
        if sig.count_ones() as usize > k {
            return None;
        }
        let (a, b) = (self.leaves(), other.leaves());
        let mut leaves = [0u32; MAX_CUT_LEAVES];
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            if n == k {
                return None;
            }
            leaves[n] = next;
            n += 1;
        }
        Some(Cut {
            sig,
            len: n as u8,
            leaves,
        })
    }

    /// `true` iff `self`'s leaves are a subset of `other`'s.
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.sig & !other.sig != 0 || self.len > other.len {
            return false;
        }
        // Both leaf lists are sorted: one linear sweep.
        let (a, b) = (self.leaves(), other.leaves());
        let mut j = 0usize;
        'outer: for &x in a {
            while j < b.len() {
                match b[j].cmp(&x) {
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

impl std::fmt::Debug for Cut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cut{:?}", self.leaves())
    }
}

fn signature_bit(id: u32) -> u64 {
    1u64 << (id & 63)
}

/// Reusable scratch for cut-function evaluation: the cone list, the
/// traversal stack and the truth-table [`TtArena`] keep their allocations
/// across [`cut_function_with`] calls.
///
/// Synthesis passes evaluate thousands of small cones per run; a fitness
/// loop that synthesizes one circuit per evaluation shares a single
/// `CutScratch` across every evaluation (see `mvf::EvalContext`).
#[derive(Debug, Default)]
pub struct CutScratch {
    arena: TtArena,
    cone: Vec<u32>,
    stack: Vec<u32>,
}

/// Flat CSR (compressed sparse row) storage of per-node cut lists: one
/// backing [`Cut`] array plus per-node offset ranges.
///
/// Enumeration appends every node's cuts to a single `cuts` vector and
/// records the node's `[start, end)` range in `ranges`, so the whole cut
/// store is two allocations regardless of node count — there are no
/// per-node inner vectors. Capacity is retained across
/// [`enumerate_cuts_into`] calls, so repeated enumeration (a synthesis
/// script, a fitness loop) performs no steady-state allocation.
///
/// # Example
///
/// ```
/// use mvf_aig::cuts::{enumerate_cuts, CutSet};
/// use mvf_aig::Aig;
///
/// let mut g = Aig::new(2);
/// let (a, b) = (g.input(0), g.input(1));
/// let f = g.and(a, b);
/// g.add_output("f", f);
/// let cuts: CutSet = enumerate_cuts(&g, 4, 8);
/// // The AND node's list ends with its trivial cut {node}.
/// let node_cuts = cuts.cuts_of(f.node().0);
/// assert_eq!(node_cuts.last().unwrap().leaves(), [f.node().0]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct CutSet {
    /// All cuts, grouped by node in ascending node-id order.
    cuts: Vec<Cut>,
    /// `ranges[id]..ranges[id + 1]` indexes node `id`'s cuts in `cuts`;
    /// length `n_nodes + 1`.
    ranges: Vec<u32>,
    /// Enumeration scratch (merge products and the dominance-filtered
    /// list), retained across calls.
    merged: Vec<Cut>,
    kept: Vec<Cut>,
}

impl CutSet {
    /// An empty cut store.
    pub fn new() -> CutSet {
        CutSet::default()
    }

    /// Number of nodes the store covers.
    pub fn n_nodes(&self) -> usize {
        self.ranges.len().saturating_sub(1)
    }

    /// Total number of stored cuts across all nodes.
    pub fn n_cuts(&self) -> usize {
        self.cuts.len()
    }

    /// The cut list of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the enumerated graph.
    pub fn cuts_of(&self, id: u32) -> &[Cut] {
        let (a, b) = (
            self.ranges[id as usize] as usize,
            self.ranges[id as usize + 1] as usize,
        );
        &self.cuts[a..b]
    }
}

/// Enumerates up to `max_cuts` k-feasible cuts per node into a fresh
/// [`CutSet`].
///
/// Every node's cut list contains the trivial cut `{node}` last, so it
/// can be used as a fallback.
///
/// # Panics
///
/// Panics if `k == 0` or `k > MAX_CUT_LEAVES`.
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> CutSet {
    let mut cuts = CutSet::new();
    enumerate_cuts_into(aig, k, max_cuts, &mut cuts);
    cuts
}

/// [`enumerate_cuts`] into a caller-owned [`CutSet`]: the flat cut array
/// and range table keep their capacity across calls, so repeated
/// enumeration performs no steady-state allocation.
///
/// # Panics
///
/// Panics if `k == 0` or `k > MAX_CUT_LEAVES`.
pub fn enumerate_cuts_into(aig: &Aig, k: usize, max_cuts: usize, out: &mut CutSet) {
    assert!(k > 0, "cut size must be positive");
    assert!(k <= MAX_CUT_LEAVES, "cut size {k} exceeds {MAX_CUT_LEAVES}");
    let CutSet {
        cuts,
        ranges,
        merged,
        kept,
    } = out;
    cuts.clear();
    ranges.clear();
    ranges.push(0);
    // Constant node: single empty cut.
    cuts.push(Cut::empty());
    ranges.push(cuts.len() as u32);
    for i in 0..aig.n_inputs() {
        cuts.push(Cut::unit(i as u32 + 1));
        ranges.push(cuts.len() as u32);
    }
    for id in (aig.n_inputs() as u32 + 1)..aig.n_nodes() as u32 {
        let id = NodeId(id);
        if !aig.is_and(id) {
            // Dangling non-AND slot (possible only pre-compaction): no
            // cuts, empty range.
            ranges.push(cuts.len() as u32);
            continue;
        }
        let (f0, f1) = aig.fanins(id);
        let (n0, n1) = (f0.node().0 as usize, f1.node().0 as usize);
        let (a0, b0) = (ranges[n0] as usize, ranges[n0 + 1] as usize);
        let (a1, b1) = (ranges[n1] as usize, ranges[n1 + 1] as usize);
        merged.clear();
        for ai in a0..b0 {
            for bi in a1..b1 {
                // `Cut` is Copy: fanin ranges are fully built (fanins
                // precede their node), so plain indexed reads suffice.
                let (a, b) = (cuts[ai], cuts[bi]);
                if let Some(c) = a.merge(&b, k) {
                    if !merged.iter().any(|m| m.sig == c.sig && *m == c) {
                        merged.push(c);
                    }
                }
            }
        }
        // Drop dominated cuts (a cut whose leaves are a superset of
        // another's carries no extra information).
        kept.clear();
        merged.sort_by_key(Cut::len);
        for c in merged.iter() {
            if !kept.iter().any(|k2| k2.dominates(c)) {
                kept.push(*c);
            }
        }
        // Keep the widest cut even when truncating: the refactoring pass
        // wants the largest collapsible cone.
        let widest = kept.last().copied();
        kept.truncate(max_cuts.saturating_sub(1).max(1));
        if let Some(w) = widest {
            if !kept.contains(&w) {
                kept.push(w);
            }
        }
        kept.push(Cut::unit(id.0));
        cuts.extend_from_slice(kept);
        ranges.push(cuts.len() as u32);
    }
}

/// Computes the function of `root` over the cut's leaves: variable `i`
/// corresponds to `leaves[i]`.
///
/// The cone above the leaves is evaluated in a single flat [`TtArena`]
/// allocation, in ascending node-id order (which is topological: the
/// graph is append-only, so fanins always precede their node).
///
/// # Panics
///
/// Panics if the leaf set is not a valid cut of `root` (the traversal
/// would reach a primary input or the constant node not in the leaves) or
/// has more than [`mvf_logic::MAX_VARS`] leaves.
pub fn cut_function(aig: &Aig, root: NodeId, leaves: &[u32]) -> TruthTable {
    cut_function_with(aig, root, leaves, &mut CutScratch::default())
}

/// [`cut_function`] evaluated inside a reusable [`CutScratch`]: the cone
/// list, traversal stack and truth-table arena keep their allocations
/// across calls.
///
/// # Panics
///
/// Same as [`cut_function`].
pub fn cut_function_with(
    aig: &Aig,
    root: NodeId,
    leaves: &[u32],
    scratch: &mut CutScratch,
) -> TruthTable {
    let k = leaves.len();
    assert!(k <= mvf_logic::MAX_VARS, "cut too wide: {k} leaves");
    if let Some(pos) = leaves.iter().position(|&l| l == root.0) {
        return TruthTable::var(pos, k);
    }
    if root.0 == 0 {
        return TruthTable::zero(k);
    }
    // Collect the cone above the leaves.
    let cone = &mut scratch.cone;
    let stack = &mut scratch.stack;
    cone.clear();
    stack.clear();
    stack.push(root.0);
    while let Some(id) = stack.pop() {
        if id == 0 || leaves.contains(&id) || cone.contains(&id) {
            continue;
        }
        assert!(
            aig.is_and(NodeId(id)),
            "leaf set is not a cut: reached non-AND node {id}"
        );
        cone.push(id);
        let (f0, f1) = aig.fanins(NodeId(id));
        stack.push(f0.node().0);
        stack.push(f1.node().0);
    }
    cone.sort_unstable();
    // Slot layout: 0..k leaf variables, k = constant 0, k+1.. cone nodes.
    let arena = &mut scratch.arena;
    arena.reset(k, k + 1 + cone.len());
    for i in 0..k {
        arena.write_var(i, i);
    }
    let slot_of = |id: u32| -> usize {
        if let Some(pos) = leaves.iter().position(|&l| l == id) {
            pos
        } else if id == 0 {
            k
        } else {
            k + 1 + cone.binary_search(&id).expect("cone node")
        }
    };
    for (ci, &id) in cone.iter().enumerate() {
        let (f0, f1) = aig.fanins(NodeId(id));
        arena.and2(
            k + 1 + ci,
            slot_of(f0.node().0),
            f0.is_complement(),
            slot_of(f1.node().0),
            f1.is_complement(),
        );
    }
    arena.to_table(slot_of(root.0))
}

/// Number of AND nodes in the cone of `root` above the cut leaves.
///
/// This is the upper bound on nodes freed if the cone is replaced.
pub fn cone_size(aig: &Aig, root: NodeId, leaves: &[u32]) -> usize {
    let mut seen: Vec<u32> = Vec::new();
    let mut stack = vec![root.0];
    let mut count = 0usize;
    while let Some(id) = stack.pop() {
        if leaves.contains(&id) || seen.contains(&id) {
            continue;
        }
        seen.push(id);
        if aig.is_and(NodeId(id)) {
            count += 1;
            let (f0, f1) = aig.fanins(NodeId(id));
            stack.push(f0.node().0);
            stack.push(f1.node().0);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> (Aig, NodeId) {
        // f = (a·b)·(b·c): reconvergent on b.
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let ab = g.and(a, b);
        let bc = g.and(b, c);
        let f = g.and(ab, bc);
        g.add_output("f", f);
        (g, f.node())
    }

    #[test]
    fn trivial_cuts_present() {
        let (g, root) = sample_aig();
        let cuts = enumerate_cuts(&g, 4, 8);
        let root_cuts = cuts.cuts_of(root.0);
        assert!(root_cuts.iter().any(|c| c.leaves() == [root.0]));
    }

    #[test]
    fn finds_the_three_leaf_cut() {
        let (g, root) = sample_aig();
        let cuts = enumerate_cuts(&g, 4, 8);
        let root_cuts = cuts.cuts_of(root.0);
        // The cut {a, b, c} = node ids {1, 2, 3} must be found.
        assert!(
            root_cuts.iter().any(|c| c.leaves() == [1, 2, 3]),
            "cuts: {root_cuts:?}"
        );
    }

    #[test]
    fn cut_function_on_reconvergence() {
        let (g, root) = sample_aig();
        let f = cut_function(&g, root, &[1, 2, 3]);
        // f = a·b·c over (a, b, c) = vars (0, 1, 2).
        for m in 0..8usize {
            assert_eq!(f.get(m), m == 7);
        }
    }

    #[test]
    fn cut_function_with_complemented_edges() {
        let mut g = Aig::new(2);
        let a = g.input(0);
        let b = g.input(1);
        let f = g.or(a, !b);
        let t = cut_function(&g, f.node(), &[1, 2]);
        // or returns complemented AND internally: check underlying node
        // function is ¬a · b, i.e. f-literal complement handled by caller.
        for m in 0..4usize {
            let (av, bv) = (m & 1 == 1, m & 2 == 2);
            assert_eq!(t.get(m), !av && bv);
        }
    }

    #[test]
    fn cut_function_of_leaf_and_constant() {
        let (g, root) = sample_aig();
        // Root inside the leaf set: projection of its own variable.
        let t = cut_function(&g, NodeId(2), &[1, 2, 3]);
        assert_eq!(t, TruthTable::var(1, 3));
        // Constant root: the zero function.
        assert!(cut_function(&g, NodeId(0), &[1, 2]).is_zero());
        let _ = root;
    }

    #[test]
    fn cut_function_respects_leaf_order() {
        // Variable i corresponds to leaves[i], whatever the slice order.
        let mut g = Aig::new(2);
        let a = g.input(0);
        let b = g.input(1);
        let f = g.or(a, !b); // node function is ¬a·b
        let t = cut_function(&g, f.node(), &[1, 2]);
        let swapped = cut_function(&g, f.node(), &[2, 1]);
        assert_eq!(swapped.permute(&[1, 0]).unwrap(), t);
        assert_ne!(swapped, t, "asymmetric function must change under reorder");
    }

    #[test]
    fn k_limits_cut_width() {
        // 6-input AND tree: with k = 4 no cut may exceed 4 leaves.
        let mut g = Aig::new(6);
        let lits: Vec<_> = (0..6).map(|i| g.input(i)).collect();
        let f = g.and_many(&lits);
        g.add_output("f", f);
        let cuts = enumerate_cuts(&g, 4, 16);
        assert_eq!(cuts.n_nodes(), g.n_nodes());
        for id in 0..cuts.n_nodes() {
            for c in cuts.cuts_of(id as u32) {
                assert!(c.len() <= 4, "node {id} cut {c:?}");
            }
        }
    }

    #[test]
    fn cone_size_counts_inner_ands() {
        let (g, root) = sample_aig();
        assert_eq!(cone_size(&g, root, &[1, 2, 3]), 3);
        // Cone over its own fanins counts only the root.
        let (f0, f1) = g.fanins(root);
        assert_eq!(cone_size(&g, root, &[f0.node().0, f1.node().0]), 1);
    }

    #[test]
    fn dominated_cuts_are_pruned() {
        let (g, root) = sample_aig();
        let cuts = enumerate_cuts(&g, 4, 16);
        let root_cuts = cuts.cuts_of(root.0);
        for (i, a) in root_cuts.iter().enumerate() {
            for (j, b) in root_cuts.iter().enumerate() {
                if i != j && a.leaves() != [root.0] {
                    assert!(
                        !a.dominates(b) || a == b,
                        "dominated cut kept: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn signature_and_membership() {
        let c = Cut::unit(5).merge(&Cut::unit(70), 4).unwrap();
        assert_eq!(c.leaves(), [5, 70]);
        assert!(c.contains(5) && c.contains(70));
        assert!(!c.contains(6));
        // 5 and 69 collide mod 64 with nothing here; a colliding id must
        // still be rejected by the exact check.
        assert!(!c.contains(5 + 64));
        assert!(Cut::empty().is_empty());
    }

    #[test]
    fn merge_rejects_oversized_unions() {
        let a = Cut::unit(1).merge(&Cut::unit(2), 4).unwrap();
        let b = Cut::unit(3).merge(&Cut::unit(4), 4).unwrap();
        let ab = a.merge(&b, 4).unwrap();
        assert_eq!(ab.leaves(), [1, 2, 3, 4]);
        assert!(ab.merge(&Cut::unit(5), 4).is_none());
        // Overlapping unions stay feasible.
        assert_eq!(a.merge(&a, 2).unwrap().leaves(), [1, 2]);
    }
}
