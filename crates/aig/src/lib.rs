//! An and-inverter-graph (AIG) logic-synthesis engine.
//!
//! This crate is the workspace's substitute for the ABC synthesis system
//! the paper drives with a script of `rewrite`, `refactor` and `balance`
//! commands. It provides:
//!
//! * [`Aig`] — an and-inverter graph with structural hashing and
//!   complemented edges, the classical subject data structure.
//! * [`build`] — construction of factored logic from truth tables
//!   (ISOP + weak-division factoring, Shannon decomposition fallback).
//! * [`cuts`] — k-feasible cut enumeration with cut functions.
//! * [`rewrite`] — DAG-aware cut rewriting over NPN classes ([`rewrite::rewrite`]).
//! * [`refactor`] — larger-cone refactoring through ISOP ([`refactor::refactor`]).
//! * [`balance`] — AND-tree balancing for depth ([`balance::balance`]).
//! * [`collapse`] — whole-circuit resynthesis ([`collapse::collapse`]).
//! * [`Script`] — an ABC-style synthesis script runner with equivalence
//!   checking after every pass.
//!
//! # Example
//!
//! ```
//! use mvf_aig::{Aig, Script};
//!
//! // Build (a·b)·(a·c) + redundant logic, then optimize.
//! let mut aig = Aig::new(3);
//! let (a, b, c) = (aig.input(0), aig.input(1), aig.input(2));
//! let ab = aig.and(a, b);
//! let ac = aig.and(a, c);
//! let f = aig.and(ab, ac);
//! aig.add_output("f", f);
//! let optimized = Script::standard().run(&aig);
//! assert!(optimized.n_ands() <= aig.n_ands());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig;
pub mod balance;
pub mod build;
pub mod collapse;
pub mod cuts;
pub mod refactor;
pub mod rewrite;
mod script;
mod simulate;

pub use aig::{Aig, Lit, NodeId};
pub use script::{Pass, Script, SynthScratch};
