//! DAG-aware cut rewriting over NPN classes.
//!
//! This is the workspace's analogue of ABC's `rewrite` command: every AND
//! node's 4-feasible cuts are matched against a cache of pre-optimized
//! implementations of their NPN class; a cone is replaced when the
//! replacement adds fewer nodes (counting structural-hash reuse) than the
//! cone holds. The pass rebuilds into a fresh graph and is kept only if it
//! reduces the AND count, so it is monotone by construction.

use std::collections::HashMap;

use mvf_logic::npn::{npn_canonical, NpnTransform};
use mvf_logic::TruthTable;

use crate::cuts::{cut_function_with, enumerate_cuts_into, CutScratch, CutSet};
use crate::{build, Aig, Lit};

/// A cached implementation of a canonical function: a miniature AIG over
/// the canonical variables plus its output literal.
#[derive(Debug, Clone)]
pub(crate) struct Recipe {
    aig: Aig,
    out: Lit,
}

impl Recipe {
    pub(crate) fn build(tt: &TruthTable) -> Recipe {
        let n = tt.n_vars();
        let mut aig = Aig::new(n);
        let leaves: Vec<Lit> = (0..n).map(|i| aig.input(i)).collect();
        let out = build::tt_to_aig(&mut aig, tt, &leaves);
        aig.add_output("f", out);
        let aig = aig.compact();
        let out = aig.outputs()[0].1;
        Recipe { aig, out }
    }

    /// Copies the recipe into `target` using the given leaf literals;
    /// returns the output literal.
    pub(crate) fn paste(&self, target: &mut Aig, leaves: &[Lit]) -> Lit {
        let mut map: Vec<Lit> = Vec::with_capacity(self.aig.n_nodes());
        map.push(Lit::FALSE);
        for i in 0..self.aig.n_inputs() {
            map.push(leaves[i]);
        }
        for id in self.aig.and_nodes() {
            let (f0, f1) = self.aig.fanins(id);
            let a = map[f0.node().0 as usize].xor_sign(f0.is_complement());
            let b = map[f1.node().0 as usize].xor_sign(f1.is_complement());
            debug_assert_eq!(map.len(), id.0 as usize);
            map.push(target.and(a, b));
        }
        map[self.out.node().0 as usize].xor_sign(self.out.is_complement())
    }

    /// Counts how many new nodes [`Recipe::paste`] would create, without
    /// mutating `target`. Also returns the output literal the paste would
    /// produce when every node hash-hits (`None` if any node is new).
    pub(crate) fn probe(&self, target: &Aig, leaves: &[Lit]) -> (usize, Option<Lit>) {
        // `None` marks a virtual (not-yet-existing) node.
        let mut map: Vec<Option<Lit>> = Vec::with_capacity(self.aig.n_nodes());
        map.push(Some(Lit::FALSE));
        for i in 0..self.aig.n_inputs() {
            map.push(Some(leaves[i]));
        }
        let mut added = 0usize;
        for id in self.aig.and_nodes() {
            let (f0, f1) = self.aig.fanins(id);
            let a = map[f0.node().0 as usize].map(|l| l.xor_sign(f0.is_complement()));
            let b = map[f1.node().0 as usize].map(|l| l.xor_sign(f1.is_complement()));
            debug_assert_eq!(map.len(), id.0 as usize);
            let found = match (a, b) {
                (Some(a), Some(b)) => target.find_and(a, b),
                _ => None,
            };
            if found.is_none() {
                added += 1;
            }
            map.push(found);
        }
        let out = map[self.out.node().0 as usize].map(|l| l.xor_sign(self.out.is_complement()));
        (added, out)
    }
}

/// Shared per-pass caches: NPN canonicalization and canonical recipes.
#[derive(Default)]
pub(crate) struct RewriteCache {
    npn: HashMap<TruthTable, (TruthTable, NpnTransform)>,
    recipes: HashMap<TruthTable, Recipe>,
}

impl RewriteCache {
    pub(crate) fn canonical(&mut self, f: &TruthTable) -> (TruthTable, NpnTransform) {
        self.npn
            .entry(f.clone())
            .or_insert_with(|| npn_canonical(f))
            .clone()
    }

    pub(crate) fn recipe(&mut self, canon: &TruthTable) -> &Recipe {
        self.recipes
            .entry(canon.clone())
            .or_insert_with(|| Recipe::build(canon))
    }
}

/// Instantiation order of cut leaves for a canonical recipe: recipe input
/// `j` must receive actual leaf `pinv[j]`, complemented per the transform.
pub(crate) fn transformed_leaves(t: &NpnTransform, actual: &[Lit]) -> (Vec<Lit>, bool) {
    let inv = t.inverse();
    let n = actual.len();
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        let src = inv.perm[j];
        let neg = t.input_neg & (1 << src) != 0;
        out.push(actual[src].xor_sign(neg));
    }
    (out, t.output_neg)
}

/// One rewriting pass. Returns an equivalent graph with at most as many
/// AND nodes as the input.
pub fn rewrite(aig: &Aig) -> Aig {
    let mut cache = RewriteCache::default();
    rewrite_with_cache(
        aig,
        &mut cache,
        &mut CutSet::new(),
        &mut CutScratch::default(),
    )
}

/// Number of cone nodes above `leaves` that would really be freed if
/// `root` were re-expressed: nodes all of whose fanouts lie inside the
/// freed set (an MFFC restricted to the cut).
pub(crate) fn exclusive_cone_size(
    aig: &Aig,
    root: crate::NodeId,
    leaves: &[u32],
    fanouts: &[u32],
    refs_inside: &mut Vec<u32>,
) -> usize {
    // Collect cone nodes (excluding leaves).
    let mut cone: Vec<u32> = Vec::new();
    let mut stack = vec![root.0];
    while let Some(id) = stack.pop() {
        if leaves.contains(&id) || cone.contains(&id) {
            continue;
        }
        if aig.is_and(crate::NodeId(id)) {
            cone.push(id);
            let (f0, f1) = aig.fanins(crate::NodeId(id));
            stack.push(f0.node().0);
            stack.push(f1.node().0);
        }
    }
    // Count, per cone node, how many of its fanout references come from
    // freed nodes; a node is freed when that count reaches its total
    // fanout. Iterate from the root downward (cone is in DFS order, but a
    // fixpoint loop is simplest and the cones are tiny).
    refs_inside.clear();
    refs_inside.resize(aig.n_nodes(), 0);
    let mut freed: Vec<u32> = vec![root.0];
    let mut frontier = vec![root.0];
    while let Some(id) = frontier.pop() {
        let (f0, f1) = aig.fanins(crate::NodeId(id));
        for child in [f0.node().0, f1.node().0] {
            if !cone.contains(&child) || freed.contains(&child) {
                continue;
            }
            refs_inside[child as usize] += 1;
            if refs_inside[child as usize] == fanouts[child as usize] {
                freed.push(child);
                frontier.push(child);
            }
        }
    }
    freed.len()
}

pub(crate) fn rewrite_with_cache(
    aig: &Aig,
    cache: &mut RewriteCache,
    cuts: &mut CutSet,
    eval: &mut CutScratch,
) -> Aig {
    enumerate_cuts_into(aig, 4, 8, cuts);
    let fanouts = aig.fanout_counts();
    let mut refs_scratch = Vec::new();
    let mut new = Aig::new(aig.n_inputs());
    for i in 0..aig.n_inputs() {
        new.set_input_name(i, aig.input_name(i).to_string());
    }
    let mut map: Vec<Lit> = Vec::with_capacity(aig.n_nodes());
    map.push(Lit::FALSE);
    for i in 0..aig.n_inputs() {
        map.push(new.input(i));
    }
    for id in aig.and_nodes() {
        let (f0, f1) = aig.fanins(id);
        let a = map[f0.node().0 as usize].xor_sign(f0.is_complement());
        let b = map[f1.node().0 as usize].xor_sign(f1.is_complement());
        let naive = new.and(a, b);
        debug_assert_eq!(map.len(), id.0 as usize);
        map.push(naive);

        // Try to improve with a cut-based replacement.
        let mut best: Option<(usize, Lit)> = None;
        for cut in cuts.cuts_of(id.0) {
            if cut.len() < 2 || cut.leaves() == [id.0] || cut.contains(0) {
                continue;
            }
            let mut f = cut_function_with(aig, id, cut.leaves(), eval);
            let mut leaf_ids: Vec<u32> = cut.leaves().to_vec();
            // Support reduction: drop leaves the function ignores.
            let support = f.support();
            if support.len() < leaf_ids.len() {
                f = f.project(&support);
                leaf_ids = support.iter().map(|&v| leaf_ids[v]).collect();
            }
            if leaf_ids.is_empty() {
                continue;
            }
            let actual: Vec<Lit> = leaf_ids.iter().map(|&l| map[l as usize]).collect();
            let (canon, t) = cache.canonical(&f);
            let (leaves, out_neg) = transformed_leaves(&t, &actual);
            let recipe = cache.recipe(&canon);
            let (cost, probed_out) = recipe.probe(&new, &leaves);
            // A candidate that resolves to the node we already have is a
            // no-op; skip it so it cannot displace real improvements.
            if probed_out.map(|l| l.xor_sign(out_neg)) == Some(map[id.0 as usize]) {
                continue;
            }
            let freed = exclusive_cone_size(aig, id, cut.leaves(), &fanouts, &mut refs_scratch);
            // Zero-cost candidates reuse existing structure and never add
            // nodes, so they are always worth taking even when the freed
            // estimate is conservative.
            if cost < freed || cost == 0 {
                let score = (freed + 1).saturating_sub(cost);
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    let recipe = recipe.clone();
                    let lit = recipe.paste(&mut new, &leaves).xor_sign(out_neg);
                    best = Some((score, lit));
                }
            }
        }
        if let Some((_, lit)) = best {
            map[id.0 as usize] = lit;
        }
    }
    for (name, lit) in aig.outputs() {
        let l = map[lit.node().0 as usize].xor_sign(lit.is_complement());
        new.add_output(name.clone(), l);
    }
    let new = new.compact();
    if new.n_ands() < aig.n_ands() {
        new
    } else {
        aig.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_rewrite(aig: &Aig) -> Aig {
        let out = rewrite(aig);
        assert!(aig.equivalent(&out), "rewrite changed the function");
        assert!(out.n_ands() <= aig.n_ands(), "rewrite grew the graph");
        out
    }

    #[test]
    fn removes_redundant_structure() {
        // f = (a·b)·(a·(b·c)) == a·b·c: naive structure has 4 ANDs.
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let ab = g.and(a, b);
        let bc = g.and(b, c);
        let abc = g.and(a, bc);
        let f = g.and(ab, abc);
        g.add_output("f", f);
        assert_eq!(g.n_ands(), 4);
        let out = check_rewrite(&g);
        assert!(
            out.n_ands() <= 2,
            "a·b·c needs 2 ANDs, got {}",
            out.n_ands()
        );
    }

    #[test]
    fn rewrite_is_identity_on_optimal_graphs() {
        let mut g = Aig::new(2);
        let a = g.input(0);
        let b = g.input(1);
        let f = g.xor(a, b);
        g.add_output("f", f);
        let out = check_rewrite(&g);
        assert_eq!(out.n_ands(), 3);
    }

    #[test]
    fn rewrite_mux_structures() {
        // Double mux selecting same data collapses; one greedy pass must
        // shrink it, and the full script reaches the 3-AND optimum.
        let mut g = Aig::new(3);
        let s = g.input(0);
        let a = g.input(1);
        let b = g.input(2);
        let m1 = g.mux(s, a, b);
        let m2 = g.mux(s, m1, b); // equivalent to m1
        g.add_output("f", m2);
        let once = check_rewrite(&g);
        assert!(once.n_ands() < g.n_ands(), "got {}", once.n_ands());
        let full = crate::Script::standard().run(&g);
        assert!(full.equivalent(&g));
        assert!(full.n_ands() <= 3, "script got {}", full.n_ands());
    }

    #[test]
    fn recipe_paste_probe_agree() {
        let f = TruthTable::from_fn(4, |m| (m * 11) % 3 == 1);
        let recipe = Recipe::build(&f);
        let mut target = Aig::new(4);
        let leaves: Vec<Lit> = (0..4).map(|i| target.input(i)).collect();
        let (probed, _) = recipe.probe(&target, &leaves);
        let before = target.n_ands();
        let out = recipe.paste(&mut target, &leaves);
        assert_eq!(target.n_ands() - before, probed, "probe must predict paste");
        // Second paste is free: everything hash-hits and the probe
        // resolves the output literal exactly.
        assert_eq!(recipe.probe(&target, &leaves), (0, Some(out)));
        let out2 = recipe.paste(&mut target, &leaves);
        assert_eq!(out, out2);
    }

    #[test]
    fn transformed_leaves_semantics() {
        // For any transform and function, pasting the canonical recipe on
        // transformed leaves must reproduce the original function.
        let f = TruthTable::from_fn(3, |m| [0, 1, 1, 0, 1, 0, 0, 0][m] == 1);
        let (canon, t) = npn_canonical(&f);
        let recipe = Recipe::build(&canon);
        let mut aig = Aig::new(3);
        let actual: Vec<Lit> = (0..3).map(|i| aig.input(i)).collect();
        let (leaves, out_neg) = transformed_leaves(&t, &actual);
        let lit = recipe.paste(&mut aig, &leaves).xor_sign(out_neg);
        aig.add_output("f", lit);
        assert_eq!(aig.output_functions()[0], f);
    }

    #[test]
    fn rewrite_large_random_graph() {
        // A deterministic random 8-input graph: rewrite must preserve the
        // function and never grow.
        let mut g = Aig::new(8);
        let mut lits: Vec<Lit> = (0..8).map(|i| g.input(i)).collect();
        let mut state = 0xDEADBEEFu64;
        for _ in 0..120 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 16) as usize % lits.len();
            let j = (state >> 32) as usize % lits.len();
            let inv = (state >> 48) & 1 == 1;
            let a = lits[i];
            let b = if inv { !lits[j] } else { lits[j] };
            let f = g.and(a, b);
            lits.push(f);
        }
        let f = *lits.last().expect("non-empty");
        g.add_output("f", f);
        check_rewrite(&g);
    }
}
