//! Constructing factored AIG logic from truth tables.
//!
//! The builder mirrors ABC's SOP-based node construction: compute an
//! irredundant cover ([`mvf_logic::isop`]) for the function and its
//! complement, pick the cheaper polarity, then build a *factored form* of
//! the cover using weak-division factoring (most-frequent-literal
//! division). Large functions fall back to Shannon decomposition.

use mvf_logic::{isop, Cube, Sop, TruthTable};

use crate::{Aig, Lit};

/// Builds `tt` over the given leaf literals and returns the output literal.
///
/// `leaves[i]` supplies variable `i` of the table.
///
/// # Panics
///
/// Panics if `leaves.len() != tt.n_vars()`.
pub fn tt_to_aig(aig: &mut Aig, tt: &TruthTable, leaves: &[Lit]) -> Lit {
    assert_eq!(leaves.len(), tt.n_vars(), "leaf count must match arity");
    if tt.is_zero() {
        return Lit::FALSE;
    }
    if tt.is_one() {
        return Lit::TRUE;
    }
    // Single-literal cases.
    for (v, &leaf) in leaves.iter().enumerate() {
        let x = TruthTable::var(v, tt.n_vars());
        if *tt == x {
            return leaf;
        }
        if *tt == x.not() {
            return !leaf;
        }
    }
    // Shannon fallback for wide supports keeps the ISOP sizes in check.
    let support = tt.support();
    if support.len() > 8 {
        let v = most_binate_var(tt, &support);
        let f1 = tt.cofactor(v, true);
        let f0 = tt.cofactor(v, false);
        let hi = tt_to_aig(aig, &f1, leaves);
        let lo = tt_to_aig(aig, &f0, leaves);
        return aig.mux(leaves[v], hi, lo);
    }
    // Pick the cheaper polarity by literal count.
    let pos = isop(tt, tt);
    let neg_tt = tt.not();
    let neg = isop(&neg_tt, &neg_tt);
    let (cover, complemented) = if cover_cost(&neg) < cover_cost(&pos) {
        (neg, true)
    } else {
        (pos, false)
    };
    let lit = build_factored(aig, cover.cubes(), leaves);
    lit.xor_sign(complemented)
}

fn cover_cost(s: &Sop) -> usize {
    s.n_literals() + s.n_cubes()
}

/// The variable on which the cover splits most evenly (used by the
/// Shannon fallback).
fn most_binate_var(tt: &TruthTable, support: &[usize]) -> usize {
    let half = tt.n_minterms() / 2;
    *support
        .iter()
        .min_by_key(|&&v| {
            let ones = tt.cofactor(v, true).count_ones();
            ones.abs_diff(half)
        })
        .expect("non-empty support")
}

/// Weak-division factoring of a cube cover.
fn build_factored(aig: &mut Aig, cubes: &[Cube], leaves: &[Lit]) -> Lit {
    assert!(
        !cubes.is_empty(),
        "empty cover is constant 0 and handled earlier"
    );
    if cubes.len() == 1 {
        return build_cube(aig, &cubes[0], leaves);
    }
    // Find the most frequent literal across cubes.
    let mut best: Option<((usize, bool), usize)> = None;
    for pol in [true, false] {
        for v in 0..leaves.len() {
            let count = cubes
                .iter()
                .filter(|c| {
                    let mask = if pol { c.pos_mask() } else { c.neg_mask() };
                    mask & (1 << v) != 0
                })
                .count();
            if count >= 2 && best.is_none_or(|(_, c)| count > c) {
                best = Some(((v, pol), count));
            }
        }
    }
    let Some(((var, pol), _)) = best else {
        // No sharable literal: plain balanced OR of the cubes.
        let lits: Vec<Lit> = cubes.iter().map(|c| build_cube(aig, c, leaves)).collect();
        return aig.or_many(&lits);
    };
    // Divide: f = l·(quotient) + remainder.
    let mut quotient: Vec<Cube> = Vec::new();
    let mut remainder: Vec<Cube> = Vec::new();
    for c in cubes {
        let mask = if pol { c.pos_mask() } else { c.neg_mask() };
        if mask & (1 << var) != 0 {
            quotient.push(remove_literal(c, var, pol));
        } else {
            remainder.push(*c);
        }
    }
    let l = leaves[var].xor_sign(!pol);
    let q = build_factored(aig, &quotient, leaves);
    let lq = aig.and(l, q);
    if remainder.is_empty() {
        lq
    } else {
        let r = build_factored(aig, &remainder, leaves);
        aig.or(lq, r)
    }
}

fn remove_literal(c: &Cube, var: usize, pol: bool) -> Cube {
    let mut out = Cube::new();
    for (v, p) in c.literals() {
        if v == var && p == pol {
            continue;
        }
        out = if p { out.with_pos(v) } else { out.with_neg(v) };
    }
    out
}

fn build_cube(aig: &mut Aig, c: &Cube, leaves: &[Lit]) -> Lit {
    let lits: Vec<Lit> = c
        .literals()
        .into_iter()
        .map(|(v, pol)| leaves[v].xor_sign(!pol))
        .collect();
    aig.and_many(&lits)
}

/// Builds a multiplexer tree selecting among `data` literals with
/// binary-encoded `sel` literals (`sel[0]` is the LSB).
///
/// Out-of-range select values return the last data literal.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn mux_tree(aig: &mut Aig, sel: &[Lit], data: &[Lit]) -> Lit {
    assert!(!data.is_empty(), "mux tree needs at least one data input");
    if data.len() == 1 || sel.is_empty() {
        return data[0];
    }
    let half = 1usize << (sel.len() - 1);
    let top = *sel.last().expect("non-empty select");
    if data.len() <= half {
        return mux_tree(aig, &sel[..sel.len() - 1], data);
    }
    let lo = mux_tree(aig, &sel[..sel.len() - 1], &data[..half]);
    let hi = mux_tree(aig, &sel[..sel.len() - 1], &data[half..]);
    aig.mux(top, hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(tt: &TruthTable) -> usize {
        let n = tt.n_vars();
        let mut aig = Aig::new(n);
        let leaves: Vec<Lit> = (0..n).map(|i| aig.input(i)).collect();
        let f = tt_to_aig(&mut aig, tt, &leaves);
        aig.add_output("f", f);
        assert_eq!(&aig.output_functions()[0], tt, "roundtrip mismatch");
        aig.n_ands()
    }

    #[test]
    fn constants_and_literals_cost_nothing() {
        assert_eq!(roundtrip(&TruthTable::zero(3)), 0);
        assert_eq!(roundtrip(&TruthTable::one(3)), 0);
        assert_eq!(roundtrip(&TruthTable::var(1, 3)), 0);
        assert_eq!(roundtrip(&TruthTable::var(2, 3).not()), 0);
    }

    #[test]
    fn simple_gates() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        assert_eq!(roundtrip(&a.and(&b)), 1);
        assert_eq!(roundtrip(&a.or(&b)), 1);
        assert_eq!(roundtrip(&a.and(&b).not()), 1);
        assert_eq!(roundtrip(&a.xor(&b)), 3);
    }

    #[test]
    fn factoring_shares_literals() {
        // f = a·b + a·c + a·d: factored as a·(b + c + d) = 3 ANDs.
        let a = TruthTable::var(0, 4);
        let b = TruthTable::var(1, 4);
        let c = TruthTable::var(2, 4);
        let d = TruthTable::var(3, 4);
        let f = a.and(&b).or(&a.and(&c)).or(&a.and(&d));
        let n = roundtrip(&f);
        assert!(n <= 3, "factored form should need <= 3 ANDs, got {n}");
    }

    #[test]
    fn all_3var_functions_roundtrip() {
        for bits in 0..256u64 {
            let tt = TruthTable::from_word(3, bits).unwrap();
            roundtrip(&tt);
        }
    }

    #[test]
    fn random_6var_functions_roundtrip() {
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..30 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let tt = TruthTable::from_word(6, state).unwrap();
            roundtrip(&tt);
        }
    }

    #[test]
    fn wide_function_uses_shannon() {
        // 10-var parity forces the Shannon path (support > 8).
        let tt = TruthTable::from_fn(10, |m| m.count_ones() % 2 == 1);
        roundtrip(&tt);
    }

    #[test]
    fn mux_tree_semantics() {
        let mut aig = Aig::new(6);
        let data: Vec<Lit> = (0..4).map(|i| aig.input(i)).collect();
        let sel: Vec<Lit> = (4..6).map(|i| aig.input(i)).collect();
        let f = mux_tree(&mut aig, &sel, &data);
        aig.add_output("f", f);
        let tt = &aig.output_functions()[0];
        for m in 0..64usize {
            let s = (m >> 4) & 3;
            let expect = (m >> s) & 1 == 1;
            assert_eq!(tt.get(m), expect, "m={m:b}");
        }
    }

    #[test]
    fn mux_tree_partial_data() {
        // 3 data inputs with 2 select bits: select = 3 falls back to the
        // last entry of the upper half.
        let mut aig = Aig::new(5);
        let data: Vec<Lit> = (0..3).map(|i| aig.input(i)).collect();
        let sel: Vec<Lit> = (3..5).map(|i| aig.input(i)).collect();
        let f = mux_tree(&mut aig, &sel, &data);
        aig.add_output("f", f);
        let tt = &aig.output_functions()[0];
        for m in 0..32usize {
            let s = ((m >> 3) & 3).min(2);
            let expect = (m >> s) & 1 == 1;
            assert_eq!(tt.get(m), expect, "m={m:b}");
        }
    }
}
