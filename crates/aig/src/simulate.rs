//! Exhaustive truth-table simulation of an [`Aig`].

use mvf_logic::TruthTable;

use crate::{Aig, NodeId};

/// Computes the truth table of every node over the primary inputs.
///
/// # Panics
///
/// Panics if the graph has more inputs than [`mvf_logic::MAX_VARS`].
pub(crate) fn simulate_nodes(aig: &Aig) -> Vec<TruthTable> {
    let n = aig.n_inputs();
    assert!(
        n <= mvf_logic::MAX_VARS,
        "exhaustive simulation limited to {} inputs",
        mvf_logic::MAX_VARS
    );
    let mut tts: Vec<TruthTable> = Vec::with_capacity(aig.n_nodes());
    tts.push(TruthTable::zero(n)); // constant node
    for i in 0..n {
        tts.push(TruthTable::var(i, n));
    }
    for id in (n as u32 + 1..aig.n_nodes() as u32).map(NodeId) {
        if !aig.is_and(id) {
            // Defensive: non-AND nodes beyond the inputs cannot occur.
            tts.push(TruthTable::zero(n));
            continue;
        }
        let (f0, f1) = aig.fanins(id);
        let t0 = &tts[f0.node().0 as usize];
        let t0 = if f0.is_complement() { t0.not() } else { t0.clone() };
        let t1 = &tts[f1.node().0 as usize];
        let t1 = if f1.is_complement() { t1.not() } else { t1.clone() };
        tts.push(t0.and(&t1));
    }
    tts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_manual_eval() {
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let ab = g.and(a, !b);
        let f = g.or(ab, c);
        g.add_output("f", f);
        let fs = g.output_functions();
        for m in 0..8usize {
            let (av, bv, cv) = (m & 1 == 1, m & 2 == 2, m & 4 == 4);
            assert_eq!(fs[0].get(m), (av && !bv) || cv);
        }
    }

    #[test]
    fn simulation_of_wide_graph() {
        // 10-input parity via xor chain: exercises multi-word tables.
        let mut g = Aig::new(10);
        let mut acc = g.input(0);
        for i in 1..10 {
            let x = g.input(i);
            acc = g.xor(acc, x);
        }
        g.add_output("parity", acc);
        let f = &g.output_functions()[0];
        for m in [0usize, 1, 0b1010101010, 0b1111111111, 0x155] {
            assert_eq!(f.get(m), m.count_ones() % 2 == 1, "m={m:b}");
        }
        assert_eq!(f.count_ones(), 512);
    }
}
