//! Exhaustive truth-table simulation of an [`Aig`].
//!
//! Simulation is the inner loop of synthesis verification and of every
//! GA fitness evaluation, so it is allocation-free: all node tables live
//! in one flat [`TtArena`] (slot `i` = node `i`) created with a single
//! heap allocation, and each AND node is computed with one fused
//! complement-aware pass over its fanin words — the naive
//! clone-and-complement per fanin is gone.

use mvf_logic::{TruthTable, TtArena};

use crate::{Aig, NodeId};

/// Simulates every node into a flat arena indexed by node id.
///
/// Performs exactly one heap allocation (the arena itself).
///
/// # Panics
///
/// Panics if the graph has more inputs than [`mvf_logic::MAX_VARS`].
pub(crate) fn simulate_arena(aig: &Aig) -> TtArena {
    let n = aig.n_inputs();
    assert!(
        n <= mvf_logic::MAX_VARS,
        "exhaustive simulation limited to {} inputs",
        mvf_logic::MAX_VARS
    );
    let mut arena = TtArena::new(n, aig.n_nodes());
    // Slot 0 is the constant node; arena slots start zeroed.
    for i in 0..n {
        arena.write_var(i + 1, i);
    }
    for id in (n as u32 + 1..aig.n_nodes() as u32).map(NodeId) {
        if !aig.is_and(id) {
            // Defensive: non-AND nodes beyond the inputs cannot occur;
            // their slot stays constant 0.
            continue;
        }
        let (f0, f1) = aig.fanins(id);
        arena.and2(
            id.0 as usize,
            f0.node().0 as usize,
            f0.is_complement(),
            f1.node().0 as usize,
            f1.is_complement(),
        );
    }
    arena
}

/// Computes the truth table of every node over the primary inputs.
pub(crate) fn simulate_nodes(aig: &Aig) -> Vec<TruthTable> {
    let arena = simulate_arena(aig);
    (0..aig.n_nodes()).map(|i| arena.to_table(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_manual_eval() {
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let ab = g.and(a, !b);
        let f = g.or(ab, c);
        g.add_output("f", f);
        let fs = g.output_functions();
        for m in 0..8usize {
            let (av, bv, cv) = (m & 1 == 1, m & 2 == 2, m & 4 == 4);
            assert_eq!(fs[0].get(m), (av && !bv) || cv);
        }
    }

    #[test]
    fn simulation_of_wide_graph() {
        // 10-input parity via xor chain: exercises multi-word tables.
        let mut g = Aig::new(10);
        let mut acc = g.input(0);
        for i in 1..10 {
            let x = g.input(i);
            acc = g.xor(acc, x);
        }
        g.add_output("parity", acc);
        let f = &g.output_functions()[0];
        for m in [0usize, 1, 0b1010101010, 0b1111111111, 0x155] {
            assert_eq!(f.get(m), m.count_ones() % 2 == 1, "m={m:b}");
        }
        assert_eq!(f.count_ones(), 512);
    }

    #[test]
    fn arena_agrees_with_per_node_tables() {
        let mut g = Aig::new(4);
        let lits: Vec<_> = (0..4).map(|i| g.input(i)).collect();
        let x = g.xor(lits[0], lits[1]);
        let y = g.mux(lits[2], x, lits[3]);
        g.add_output("y", y);
        let arena = simulate_arena(&g);
        let tables = g.simulate_nodes();
        assert_eq!(arena.n_slots(), tables.len());
        for (i, t) in tables.iter().enumerate() {
            assert_eq!(&arena.to_table(i), t, "node {i}");
        }
    }
}
