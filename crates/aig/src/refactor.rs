//! Cone refactoring through ISOP covers.
//!
//! The analogue of ABC's `refactor`: larger cones (up to 8 leaves) are
//! collapsed into a truth table, re-expressed as a factored irredundant
//! cover and rebuilt whenever the rebuilt form adds fewer nodes than the
//! cone currently holds. Like [`crate::rewrite`], the pass rebuilds into a
//! fresh graph and is monotone: the result never has more AND nodes.

use crate::cuts::{cut_function_with, enumerate_cuts_into, CutScratch, CutSet};
use crate::rewrite::{exclusive_cone_size, Recipe};
use crate::{Aig, Lit};

/// Default cut width of the refactoring pass.
pub const DEFAULT_CUT_WIDTH: usize = 8;
/// Default cuts-per-node cap of the refactoring pass.
pub const DEFAULT_MAX_CUTS: usize = 4;

/// One refactoring pass with the default cut width
/// ([`DEFAULT_CUT_WIDTH`]) and cuts-per-node cap ([`DEFAULT_MAX_CUTS`]).
pub fn refactor(aig: &Aig) -> Aig {
    refactor_with_width(aig, DEFAULT_CUT_WIDTH, DEFAULT_MAX_CUTS)
}

/// One refactoring pass with an explicit cut width and cuts-per-node cap.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 16`.
pub fn refactor_with_width(aig: &Aig, k: usize, max_cuts: usize) -> Aig {
    refactor_with_scratch(
        aig,
        k,
        max_cuts,
        &mut CutSet::new(),
        &mut CutScratch::default(),
    )
}

/// [`refactor_with_width`] with caller-owned cut buffers and evaluation
/// scratch, for loops that refactor many graphs.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 16`.
pub fn refactor_with_scratch(
    aig: &Aig,
    k: usize,
    max_cuts: usize,
    cuts: &mut CutSet,
    eval: &mut CutScratch,
) -> Aig {
    assert!(k > 0 && k <= 16, "cut width must be in 1..=16");
    enumerate_cuts_into(aig, k, max_cuts, cuts);
    let fanouts = aig.fanout_counts();
    let mut refs_scratch = Vec::new();
    let mut new = Aig::new(aig.n_inputs());
    for i in 0..aig.n_inputs() {
        new.set_input_name(i, aig.input_name(i).to_string());
    }
    let mut map: Vec<Lit> = Vec::with_capacity(aig.n_nodes());
    map.push(Lit::FALSE);
    for i in 0..aig.n_inputs() {
        map.push(new.input(i));
    }
    for id in aig.and_nodes() {
        let (f0, f1) = aig.fanins(id);
        let a = map[f0.node().0 as usize].xor_sign(f0.is_complement());
        let b = map[f1.node().0 as usize].xor_sign(f1.is_complement());
        let naive = new.and(a, b);
        debug_assert_eq!(map.len(), id.0 as usize);
        map.push(naive);

        let mut best: Option<(usize, Lit)> = None;
        for cut in cuts.cuts_of(id.0) {
            // Refactoring pays off on wider cones; narrow ones are the
            // rewriting pass's job.
            if cut.len() < 3 || cut.leaves() == [id.0] || cut.contains(0) {
                continue;
            }
            let mut f = cut_function_with(aig, id, cut.leaves(), eval);
            let mut leaf_ids: Vec<u32> = cut.leaves().to_vec();
            let support = f.support();
            if support.len() < leaf_ids.len() {
                f = f.project(&support);
                leaf_ids = support.iter().map(|&v| leaf_ids[v]).collect();
            }
            if leaf_ids.is_empty() {
                continue;
            }
            let actual: Vec<Lit> = leaf_ids.iter().map(|&l| map[l as usize]).collect();
            let recipe = Recipe::build(&f);
            let (cost, probed_out) = recipe.probe(&new, &actual);
            // Skip no-op candidates that resolve to the existing node.
            if probed_out == Some(map[id.0 as usize]) {
                continue;
            }
            let freed = exclusive_cone_size(aig, id, cut.leaves(), &fanouts, &mut refs_scratch);
            // Zero-cost candidates reuse existing structure and never add
            // nodes, so they are always worth taking even when the freed
            // estimate is conservative.
            if cost < freed || cost == 0 {
                let score = (freed + 1).saturating_sub(cost);
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    let lit = recipe.paste(&mut new, &actual);
                    best = Some((score, lit));
                }
            }
        }
        if let Some((_, lit)) = best {
            map[id.0 as usize] = lit;
        }
    }
    for (name, lit) in aig.outputs() {
        let l = map[lit.node().0 as usize].xor_sign(lit.is_complement());
        new.add_output(name.clone(), l);
    }
    let new = new.compact();
    if new.n_ands() < aig.n_ands() {
        new
    } else {
        aig.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(aig: &Aig) -> Aig {
        let out = refactor(aig);
        assert!(aig.equivalent(&out), "refactor changed the function");
        assert!(out.n_ands() <= aig.n_ands(), "refactor grew the graph");
        out
    }

    #[test]
    fn collapses_redundant_wide_cones() {
        // f = maj(a,b,c) built wastefully through XOR scaffolding.
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let ab = g.and(a, b);
        let axb = g.xor(a, b);
        let axbc = g.and(axb, c);
        let f = g.or(ab, axbc); // = majority
        g.add_output("maj", f);
        let before = g.n_ands();
        let out = check(&g);
        assert!(out.n_ands() <= before);
        // Majority is doable in 4 ANDs.
        assert!(out.n_ands() <= 4 + 1, "got {}", out.n_ands());
    }

    #[test]
    fn refactor_preserves_multi_output_sharing() {
        let mut g = Aig::new(4);
        let lits: Vec<Lit> = (0..4).map(|i| g.input(i)).collect();
        let s = g.and_many(&lits);
        let t = g.or_many(&lits);
        g.add_output("and", s);
        g.add_output("or", t);
        check(&g);
    }

    #[test]
    fn refactor_random_graph() {
        let mut g = Aig::new(6);
        let mut lits: Vec<Lit> = (0..6).map(|i| g.input(i)).collect();
        let mut state = 0x12345678u64;
        for _ in 0..80 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let i = (state >> 16) as usize % lits.len();
            let j = (state >> 33) as usize % lits.len();
            let a = lits[i];
            let b = lits[j].xor_sign((state >> 50) & 1 == 1);
            let f = g.and(a, b);
            lits.push(f);
        }
        g.add_output("f", *lits.last().expect("non-empty"));
        g.add_output("g", lits[lits.len() / 2]);
        check(&g.compact());
    }

    #[test]
    #[should_panic(expected = "cut width")]
    fn rejects_zero_width() {
        let g = Aig::new(1);
        let _ = refactor_with_width(&g, 0, 4);
    }
}
