//! AND-tree balancing.
//!
//! The analogue of ABC's `balance`: maximal multi-input AND trees (chains
//! of non-complemented, single-fanout AND nodes) are collected and rebuilt
//! as minimum-depth trees, combining the two lowest-level operands first
//! (Huffman-style). The pass never increases the AND count of a tree and
//! usually reduces depth.

use crate::{Aig, Lit};

/// One balancing pass. Returns an equivalent graph whose depth is at most
/// the input's; if balancing would increase size or depth, the input is
/// returned unchanged.
pub fn balance(aig: &Aig) -> Aig {
    let fanouts = aig.fanout_counts();
    let mut new = Aig::new(aig.n_inputs());
    for i in 0..aig.n_inputs() {
        new.set_input_name(i, aig.input_name(i).to_string());
    }
    let mut map: Vec<Lit> = Vec::with_capacity(aig.n_nodes());
    map.push(Lit::FALSE);
    for i in 0..aig.n_inputs() {
        map.push(new.input(i));
    }
    for id in aig.and_nodes() {
        // Collect the maximal AND tree rooted here: expand fanins that are
        // non-complemented single-fanout AND nodes.
        let mut leaves: Vec<Lit> = Vec::new();
        let mut stack = vec![Lit::new(id, false)];
        while let Some(l) = stack.pop() {
            let n = l.node();
            if !l.is_complement() && aig.is_and(n) && (n == id || fanouts[n.0 as usize] == 1) {
                let (f0, f1) = aig.fanins(n);
                stack.push(f0);
                stack.push(f1);
            } else {
                leaves.push(l);
            }
        }
        // Map leaves into the new graph and combine lowest-level first.
        let mut mapped: Vec<Lit> = leaves
            .iter()
            .map(|l| map[l.node().0 as usize].xor_sign(l.is_complement()))
            .collect();
        debug_assert_eq!(map.len(), id.0 as usize);
        while mapped.len() > 1 {
            mapped.sort_by_key(|l| std::cmp::Reverse(new.level(l.node())));
            let a = mapped.pop().expect("len > 1");
            let b = mapped.pop().expect("len > 1");
            let ab = new.and(a, b);
            mapped.push(ab);
        }
        map.push(mapped.pop().unwrap_or(Lit::TRUE));
    }
    for (name, lit) in aig.outputs() {
        let l = map[lit.node().0 as usize].xor_sign(lit.is_complement());
        new.add_output(name.clone(), l);
    }
    let new = new.compact();
    if new.depth() <= aig.depth() && new.n_ands() <= aig.n_ands() {
        new
    } else {
        aig.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(aig: &Aig) -> Aig {
        let out = balance(aig);
        assert!(aig.equivalent(&out), "balance changed the function");
        assert!(out.depth() <= aig.depth(), "balance increased depth");
        assert!(out.n_ands() <= aig.n_ands(), "balance grew the graph");
        out
    }

    #[test]
    fn chain_becomes_tree() {
        // a·(b·(c·(d·(e·f)))) — depth 5 chain.
        let mut g = Aig::new(6);
        let mut acc = g.input(5);
        for i in (0..5).rev() {
            let x = g.input(i);
            acc = g.and(x, acc);
        }
        g.add_output("f", acc);
        assert_eq!(g.depth(), 5);
        let out = check(&g);
        assert_eq!(out.depth(), 3, "6-input AND balances to depth 3");
        assert_eq!(out.n_ands(), 5);
    }

    #[test]
    fn respects_complemented_boundaries() {
        // ¬(a·b)·(c·d): the complemented edge must not be flattened.
        let mut g = Aig::new(4);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let d = g.input(3);
        let ab = g.and(a, b);
        let cd = g.and(c, d);
        let f = g.and(!ab, cd);
        g.add_output("f", f);
        check(&g);
    }

    #[test]
    fn respects_fanout_boundaries() {
        // Shared sub-tree (a·b) feeds two outputs: must stay shared.
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let ab = g.and(a, b);
        let f = g.and(ab, c);
        g.add_output("f", f);
        g.add_output("g", ab);
        let out = check(&g);
        assert_eq!(out.n_ands(), 2);
    }

    #[test]
    fn balances_or_trees_via_demorgan() {
        // OR chains appear as complemented AND chains and balance the
        // same way one level in.
        let mut g = Aig::new(8);
        let mut acc = g.input(0);
        for i in 1..8 {
            let x = g.input(i);
            acc = g.or(acc, x);
        }
        g.add_output("f", acc);
        let out = check(&g);
        assert_eq!(out.depth(), 3, "8-input OR balances to depth 3");
    }

    #[test]
    fn unbalanced_skewed_levels() {
        // Leaves at different levels: Huffman pairing minimizes depth.
        let mut g = Aig::new(5);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let d = g.input(3);
        let e = g.input(4);
        let ab = g.xor(a, b); // level 2 operand
        let f1 = g.and(ab, c);
        let f2 = g.and(f1, d);
        let f3 = g.and(f2, e);
        g.add_output("f", f3);
        let out = check(&g);
        // xor (depth 2) + pairing c,d,e first: total depth 4 or less.
        assert!(out.depth() <= 4, "depth {}", out.depth());
    }
}
