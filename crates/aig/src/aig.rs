use std::collections::HashMap;
use std::fmt;

use mvf_logic::{TruthTable, TtArena};

/// Index of a node in an [`Aig`].
///
/// Node 0 is the constant-false node; nodes `1..=n_inputs` are the primary
/// inputs; higher ids are AND nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A literal: a node with an optional complement.
///
/// # Example
///
/// ```
/// use mvf_aig::Aig;
///
/// let mut aig = Aig::new(1);
/// let a = aig.input(0);
/// assert_ne!(a, !a);
/// assert_eq!(!!a, a);
/// assert!((!a).is_complement());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node and a complement flag.
    pub fn new(node: NodeId, complement: bool) -> Self {
        Lit((node.0 << 1) | complement as u32)
    }

    /// The underlying node.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// `true` for the two constant literals.
    pub fn is_const(self) -> bool {
        self.node().0 == 0
    }

    /// XORs the complement flag with `c`.
    #[must_use]
    pub fn xor_sign(self, c: bool) -> Self {
        Lit(self.0 ^ c as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "¬n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Fanins; `Lit::FALSE` placeholders for the constant and PI nodes.
    f0: Lit,
    f1: Lit,
    level: u32,
    is_and: bool,
}

/// An and-inverter graph with structural hashing.
///
/// The graph is append-only: [`Aig::and`] either finds a structurally
/// identical node or creates one, applying the standard one-level
/// simplifications (`x·x = x`, `x·¬x = 0`, constant absorption).
/// Optimization passes produce new, compacted graphs rather than mutating
/// in place.
#[derive(Clone)]
pub struct Aig {
    n_inputs: usize,
    nodes: Vec<Node>,
    strash: HashMap<(Lit, Lit), NodeId>,
    outputs: Vec<(String, Lit)>,
    input_names: Vec<String>,
}

impl Aig {
    /// Creates a graph with `n_inputs` primary inputs named `i0, i1, …`.
    pub fn new(n_inputs: usize) -> Self {
        let mut nodes = Vec::with_capacity(n_inputs + 1);
        // Node 0: constant false.
        nodes.push(Node {
            f0: Lit::FALSE,
            f1: Lit::FALSE,
            level: 0,
            is_and: false,
        });
        for _ in 0..n_inputs {
            nodes.push(Node {
                f0: Lit::FALSE,
                f1: Lit::FALSE,
                level: 0,
                is_and: false,
            });
        }
        Aig {
            n_inputs,
            nodes,
            strash: HashMap::new(),
            outputs: Vec::new(),
            input_names: (0..n_inputs).map(|i| format!("i{i}")).collect(),
        }
    }

    /// Number of primary inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of AND nodes.
    pub fn n_ands(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_and).count()
    }

    /// Total number of nodes including the constant and the inputs.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The literal of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_inputs`.
    pub fn input(&self, i: usize) -> Lit {
        assert!(i < self.n_inputs, "input {i} out of range");
        Lit::new(NodeId(i as u32 + 1), false)
    }

    /// Renames primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_inputs`.
    pub fn set_input_name(&mut self, i: usize, name: impl Into<String>) {
        self.input_names[i] = name.into();
    }

    /// The name of primary input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// `true` iff `id` is a primary input node.
    pub fn is_input(&self, id: NodeId) -> bool {
        id.0 >= 1 && (id.0 as usize) <= self.n_inputs
    }

    /// `true` iff `id` is an AND node.
    pub fn is_and(&self, id: NodeId) -> bool {
        self.nodes[id.0 as usize].is_and
    }

    /// The fanins of an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an AND node.
    pub fn fanins(&self, id: NodeId) -> (Lit, Lit) {
        let n = &self.nodes[id.0 as usize];
        assert!(n.is_and, "node {id:?} is not an AND");
        (n.f0, n.f1)
    }

    /// The logic level of a node (inputs and constants are level 0).
    pub fn level(&self, id: NodeId) -> u32 {
        self.nodes[id.0 as usize].level
    }

    /// The depth of the graph: maximum output level.
    pub fn depth(&self) -> u32 {
        self.outputs
            .iter()
            .map(|(_, l)| self.level(l.node()))
            .max()
            .unwrap_or(0)
    }

    /// AND of two literals with structural hashing and one-level
    /// simplification rules.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant and trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE {
            return a;
        }
        if a == b {
            return a;
        }
        // Canonical order for hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return Lit::new(id, false);
        }
        let level = 1 + self.level(a.node()).max(self.level(b.node()));
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            f0: a,
            f1: b,
            level,
            is_and: true,
        });
        self.strash.insert((a, b), id);
        Lit::new(id, false)
    }

    /// Looks up the AND of two literals without inserting: returns the
    /// literal the AND would simplify or hash to, or `None` if a new node
    /// would be created.
    pub fn find_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Some(b);
        }
        if b == Lit::TRUE {
            return Some(a);
        }
        if a == b {
            return Some(a);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.strash.get(&(a, b)).map(|&id| Lit::new(id, false))
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR built from two ANDs and an OR (3 AND nodes).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.and(a, !b);
        let y = self.and(!a, b);
        self.or(x, y)
    }

    /// 2:1 multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let x = self.and(sel, t);
        let y = self.and(!sel, e);
        self.or(x, y)
    }

    /// N-ary AND over a slice (balanced reduction).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::TRUE,
            [l] => *l,
            _ => {
                let mid = lits.len() / 2;
                let (lo, hi) = lits.split_at(mid);
                let a = self.and_many(lo);
                let b = self.and_many(hi);
                self.and(a, b)
            }
        }
    }

    /// N-ary OR over a slice (balanced reduction).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::FALSE,
            [l] => *l,
            _ => {
                let mid = lits.len() / 2;
                let (lo, hi) = lits.split_at(mid);
                let a = self.or_many(lo);
                let b = self.or_many(hi);
                self.or(a, b)
            }
        }
    }

    /// Registers a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) {
        self.outputs.push((name.into(), lit));
    }

    /// The primary outputs as `(name, literal)` pairs.
    pub fn outputs(&self) -> &[(String, Lit)] {
        &self.outputs
    }

    /// Number of primary outputs.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Replaces output `i`'s literal.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_output(&mut self, i: usize, lit: Lit) {
        self.outputs[i].1 = lit;
    }

    /// All AND node ids in topological (creation) order.
    pub fn and_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(move |&id| self.nodes[id.0 as usize].is_and)
    }

    /// Fanout count per node (number of AND fanin references plus output
    /// references).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            if n.is_and {
                counts[n.f0.node().0 as usize] += 1;
                counts[n.f1.node().0 as usize] += 1;
            }
        }
        for (_, l) in &self.outputs {
            counts[l.node().0 as usize] += 1;
        }
        counts
    }

    /// A compacted copy containing only nodes reachable from the outputs.
    ///
    /// Input count, names and output order are preserved.
    pub fn compact(&self) -> Aig {
        let mut out = Aig::new(self.n_inputs);
        out.input_names = self.input_names.clone();
        let mut map: HashMap<NodeId, Lit> = HashMap::new();
        map.insert(NodeId(0), Lit::FALSE);
        for i in 0..self.n_inputs {
            map.insert(NodeId(i as u32 + 1), out.input(i));
        }
        // Iterative DFS to avoid recursion depth issues.
        for (name, lit) in &self.outputs {
            let mut stack = vec![lit.node()];
            while let Some(id) = stack.pop() {
                if map.contains_key(&id) {
                    continue;
                }
                let (f0, f1) = self.fanins(id);
                let m0 = map.get(&f0.node()).copied();
                let m1 = map.get(&f1.node()).copied();
                match (m0, m1) {
                    (Some(a), Some(b)) => {
                        let l = out.and(
                            a.xor_sign(f0.is_complement()),
                            b.xor_sign(f1.is_complement()),
                        );
                        map.insert(id, l);
                    }
                    _ => {
                        stack.push(id);
                        if m0.is_none() {
                            stack.push(f0.node());
                        }
                        if m1.is_none() {
                            stack.push(f1.node());
                        }
                    }
                }
            }
            let l = map[&lit.node()];
            let name = name.clone();
            out.add_output(name, l.xor_sign(lit.is_complement()));
        }
        out
    }

    /// The truth table of every node (indexed by node id) over the primary
    /// inputs.
    ///
    /// For hot paths prefer [`Aig::simulate_arena`], which produces the
    /// same tables without one allocation per node.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than [`mvf_logic::MAX_VARS`] inputs.
    pub fn simulate_nodes(&self) -> Vec<TruthTable> {
        crate::simulate::simulate_nodes(self)
    }

    /// Simulates every node into a flat [`TtArena`] (slot `i` = node `i`)
    /// with a single heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than [`mvf_logic::MAX_VARS`] inputs.
    pub fn simulate_arena(&self) -> TtArena {
        crate::simulate::simulate_arena(self)
    }

    /// The truth tables of the primary outputs.
    pub fn output_functions(&self) -> Vec<TruthTable> {
        let arena = self.simulate_arena();
        self.outputs
            .iter()
            .map(|(_, l)| arena.to_table_compl(l.node().0 as usize, l.is_complement()))
            .collect()
    }

    /// `true` iff `self` and `other` have identical output functions
    /// (same input/output counts, exhaustive comparison).
    pub fn equivalent(&self, other: &Aig) -> bool {
        if self.n_inputs != other.n_inputs || self.outputs.len() != other.outputs.len() {
            return false;
        }
        self.output_functions() == other.output_functions()
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig({} inputs, {} ANDs, {} outputs, depth {})",
            self.n_inputs,
            self.n_ands(),
            self.outputs.len(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let l = Lit::new(NodeId(5), true);
        assert_eq!(l.node(), NodeId(5));
        assert!(l.is_complement());
        assert!(!(!l).is_complement());
        assert_eq!(l.xor_sign(true), !l);
        assert_eq!(Lit::TRUE, !Lit::FALSE);
        assert!(Lit::TRUE.is_const());
    }

    #[test]
    fn and_simplifications() {
        let mut g = Aig::new(2);
        let a = g.input(0);
        let b = g.input(1);
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.n_ands(), 0);
        let ab1 = g.and(a, b);
        let ab2 = g.and(b, a);
        assert_eq!(ab1, ab2, "structural hashing is order-insensitive");
        assert_eq!(g.n_ands(), 1);
    }

    #[test]
    fn or_xor_mux_semantics() {
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let s = g.input(2);
        let or = g.or(a, b);
        let xor = g.xor(a, b);
        let mux = g.mux(s, a, b);
        g.add_output("or", or);
        g.add_output("xor", xor);
        g.add_output("mux", mux);
        let fs = g.output_functions();
        for m in 0..8usize {
            let (av, bv, sv) = (m & 1 == 1, m & 2 == 2, m & 4 == 4);
            assert_eq!(fs[0].get(m), av | bv);
            assert_eq!(fs[1].get(m), av ^ bv);
            assert_eq!(fs[2].get(m), if sv { av } else { bv });
        }
    }

    #[test]
    fn nary_ops() {
        let mut g = Aig::new(4);
        let lits: Vec<Lit> = (0..4).map(|i| g.input(i)).collect();
        let all = g.and_many(&lits);
        let any = g.or_many(&lits);
        g.add_output("all", all);
        g.add_output("any", any);
        let fs = g.output_functions();
        for m in 0..16usize {
            assert_eq!(fs[0].get(m), m == 15);
            assert_eq!(fs[1].get(m), m != 0);
        }
        assert_eq!(g.and_many(&[]), Lit::TRUE);
        assert_eq!(g.or_many(&[]), Lit::FALSE);
    }

    #[test]
    fn levels_and_depth() {
        let mut g = Aig::new(4);
        let lits: Vec<Lit> = (0..4).map(|i| g.input(i)).collect();
        let f = g.and_many(&lits);
        g.add_output("f", f);
        assert_eq!(g.depth(), 2, "balanced 4-input AND has depth 2");
    }

    #[test]
    fn compact_drops_dangling() {
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let keep = g.and(a, b);
        let _dangling = g.and(b, c);
        let _dangling2 = g.and(keep, c);
        g.add_output("f", !keep);
        let h = g.compact();
        assert_eq!(h.n_ands(), 1);
        assert!(g.equivalent(&h));
        assert_eq!(h.outputs()[0].0, "f");
    }

    #[test]
    fn compact_preserves_output_complement_and_constants() {
        let mut g = Aig::new(1);
        g.add_output("t", Lit::TRUE);
        g.add_output("ni", !g.input(0));
        let h = g.compact();
        assert!(g.equivalent(&h));
        let fs = h.output_functions();
        assert!(fs[0].is_one());
        assert_eq!(fs[1], mvf_logic::TruthTable::var(0, 1).not());
    }

    #[test]
    fn fanout_counts() {
        let mut g = Aig::new(2);
        let a = g.input(0);
        let b = g.input(1);
        let ab = g.and(a, b);
        let f = g.and(ab, !b);
        g.add_output("f", f);
        let counts = g.fanout_counts();
        assert_eq!(counts[a.node().0 as usize], 1);
        assert_eq!(counts[b.node().0 as usize], 2);
        assert_eq!(counts[ab.node().0 as usize], 1);
        assert_eq!(counts[f.node().0 as usize], 1);
    }

    #[test]
    fn equivalence_checks_functions_not_structure() {
        let mut g1 = Aig::new(2);
        let a = g1.input(0);
        let b = g1.input(1);
        let f = g1.or(a, b);
        g1.add_output("f", f);

        // De Morgan variant.
        let mut g2 = Aig::new(2);
        let a = g2.input(0);
        let b = g2.input(1);
        let f = g2.and(!a, !b);
        g2.add_output("f", !f);
        assert!(g1.equivalent(&g2));

        let mut g3 = Aig::new(2);
        let a = g3.input(0);
        let b = g3.input(1);
        let f = g3.and(a, b);
        g3.add_output("f", f);
        assert!(!g1.equivalent(&g3));
    }
}
