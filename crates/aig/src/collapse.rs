//! Whole-circuit collapse and resynthesis.
//!
//! The analogue of ABC's `collapse; sop; fx` flow: compute the exact truth
//! table of every output, rebuild each from scratch through the factored
//! ISOP builder into one fresh graph (sharing structure via the structural
//! hash), and keep the result only if it is smaller. Effective on circuits
//! whose outputs share logic in ways the local passes cannot see, and
//! always sound because the rebuild starts from the exact functions.

use crate::{build, Aig, Lit};

/// One collapse-and-resynthesize pass.
///
/// Circuits with more than [`mvf_logic::MAX_VARS`] inputs are returned
/// unchanged (the exhaustive collapse would not fit a truth table).
pub fn collapse(aig: &Aig) -> Aig {
    if aig.n_inputs() > mvf_logic::MAX_VARS {
        return aig.clone();
    }
    let functions = aig.output_functions();
    let mut new = Aig::new(aig.n_inputs());
    for i in 0..aig.n_inputs() {
        new.set_input_name(i, aig.input_name(i).to_string());
    }
    let leaves: Vec<Lit> = (0..aig.n_inputs()).map(|i| new.input(i)).collect();
    for ((name, _), tt) in aig.outputs().iter().zip(&functions) {
        let lit = build::tt_to_aig(&mut new, tt, &leaves);
        new.add_output(name.clone(), lit);
    }
    let new = new.compact();
    if new.n_ands() < aig.n_ands() {
        new
    } else {
        aig.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_rebuilds_bloated_logic() {
        // Build a·b three equivalent ways and OR them together: 1 AND after
        // collapse.
        let mut g = Aig::new(2);
        let a = g.input(0);
        let b = g.input(1);
        let x = g.and(a, b);
        let y = {
            let na = g.or(!a, !b);
            !na
        };
        let z = {
            let t1 = g.and(a, b);

            g.and(t1, a)
        };
        let xy = g.or(x, y);
        let f = g.or(xy, z);
        g.add_output("f", f);
        let out = collapse(&g);
        assert!(out.equivalent(&g));
        assert_eq!(out.n_ands(), 1);
    }

    #[test]
    fn collapse_never_grows() {
        let mut g = Aig::new(3);
        let a = g.input(0);
        let b = g.input(1);
        let c = g.input(2);
        let f = g.xor(a, b);
        let h = g.and(f, c);
        g.add_output("h", h);
        let out = collapse(&g);
        assert!(out.equivalent(&g));
        assert!(out.n_ands() <= g.n_ands());
    }

    #[test]
    fn collapse_keeps_io_contract() {
        let mut g = Aig::new(2);
        g.set_input_name(1, "special");
        let a = g.input(0);
        let b = g.input(1);
        let f = g.or(a, b);
        g.add_output("first", f);
        g.add_output("second", !f);
        let out = collapse(&g);
        assert_eq!(out.n_inputs(), 2);
        assert_eq!(out.input_name(1), "special");
        assert_eq!(out.outputs()[0].0, "first");
        assert_eq!(out.outputs()[1].0, "second");
        assert!(out.equivalent(&g));
    }

    #[test]
    fn collapse_skips_wide_circuits() {
        let g = Aig::new(17);
        let out = collapse(&g);
        assert_eq!(out.n_inputs(), 17);
    }
}
