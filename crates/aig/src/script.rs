//! ABC-style synthesis scripts.
//!
//! The paper synthesizes merged circuits with "our own script comprising
//! multiple refactor, rewrite and balance commands" (§III-A). [`Script`]
//! reproduces that: an ordered list of passes iterated until the AND count
//! stops improving or a round limit is hit, with optional equivalence
//! verification after every pass.

use crate::cuts::{CutScratch, CutSet};
use crate::rewrite::{rewrite_with_cache, RewriteCache};
use crate::{balance, collapse, refactor, Aig};

/// Reusable synthesis state threaded through [`Script::run_with`].
///
/// Two kinds of state live here:
///
/// * **Semantic caches** — the NPN-canonicalization and recipe caches of
///   the rewriting pass. These are keyed by truth table, so they are
///   valid across *different* circuits: a fitness loop that synthesizes
///   thousands of related circuits hits the same 4-variable classes over
///   and over and skips the canonicalization and factoring work entirely.
/// * **Scratch buffers** — the flat CSR cut store ([`CutSet`]) and the
///   cut-function evaluation arena, whose allocations are retained across
///   passes and across calls.
///
/// Reuse never changes results: cached entries are exactly what
/// recomputation would produce, so `run_with` is bit-identical to
/// [`Script::run`].
#[derive(Default)]
pub struct SynthScratch {
    rewrite: RewriteCache,
    cuts: CutSet,
    eval: CutScratch,
}

impl SynthScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        SynthScratch::default()
    }
}

impl std::fmt::Debug for SynthScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthScratch").finish_non_exhaustive()
    }
}

/// One synthesis pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Cut rewriting over NPN classes ([`crate::rewrite::rewrite`]).
    Rewrite,
    /// Cone refactoring through ISOP ([`crate::refactor::refactor`]).
    Refactor,
    /// AND-tree balancing ([`crate::balance::balance`]).
    Balance,
    /// Whole-circuit collapse and resynthesis ([`crate::collapse::collapse`]).
    Collapse,
}

/// An ordered synthesis script with a round limit.
///
/// # Example
///
/// ```
/// use mvf_aig::{Aig, Pass, Script};
///
/// let script = Script::new(vec![Pass::Rewrite, Pass::Balance], 2);
/// let mut aig = Aig::new(2);
/// let (a, b) = (aig.input(0), aig.input(1));
/// let f = aig.xor(a, b);
/// aig.add_output("f", f);
/// let out = script.run(&aig);
/// assert!(out.equivalent(&aig));
/// ```
#[derive(Debug, Clone)]
pub struct Script {
    passes: Vec<Pass>,
    max_rounds: usize,
    verify: bool,
}

impl Script {
    /// A script with explicit passes, iterated up to `max_rounds` times.
    pub fn new(passes: Vec<Pass>, max_rounds: usize) -> Self {
        Script {
            passes,
            max_rounds,
            verify: true,
        }
    }

    /// The paper-style default script:
    /// `collapse; rewrite; refactor; balance` iterated up to 4 rounds.
    pub fn standard() -> Self {
        Script::new(
            vec![Pass::Collapse, Pass::Rewrite, Pass::Refactor, Pass::Balance],
            4,
        )
    }

    /// A cheaper script for inner-loop fitness evaluation (2 rounds of
    /// `rewrite; balance`).
    pub fn fast() -> Self {
        Script::new(vec![Pass::Rewrite, Pass::Balance], 2)
    }

    /// Disables the per-pass equivalence assertion (it requires exhaustive
    /// simulation and is only available up to
    /// [`mvf_logic::MAX_VARS`] inputs).
    #[must_use]
    pub fn without_verification(mut self) -> Self {
        self.verify = false;
        self
    }

    /// The configured passes.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Runs the script and returns the optimized graph.
    ///
    /// # Panics
    ///
    /// Panics if verification is enabled and a pass changes the circuit
    /// function (this would be an engine bug, and is checked exhaustively).
    pub fn run(&self, aig: &Aig) -> Aig {
        self.run_with(aig, &mut SynthScratch::default())
    }

    /// Runs the script with a caller-owned [`SynthScratch`], reusing its
    /// caches and buffers. Bit-identical to [`Script::run`]; markedly
    /// faster when many circuits are synthesized in a loop (fitness
    /// evaluation).
    ///
    /// # Panics
    ///
    /// Same as [`Script::run`].
    pub fn run_with(&self, aig: &Aig, scratch: &mut SynthScratch) -> Aig {
        let mut cur = aig.compact();
        let verify = self.verify && aig.n_inputs() <= mvf_logic::MAX_VARS;
        let reference = if verify {
            Some(cur.output_functions())
        } else {
            None
        };
        for _ in 0..self.max_rounds {
            let before = cur.n_ands();
            for pass in &self.passes {
                cur = match pass {
                    Pass::Rewrite => rewrite_with_cache(
                        &cur,
                        &mut scratch.rewrite,
                        &mut scratch.cuts,
                        &mut scratch.eval,
                    ),
                    Pass::Refactor => refactor::refactor_with_scratch(
                        &cur,
                        refactor::DEFAULT_CUT_WIDTH,
                        refactor::DEFAULT_MAX_CUTS,
                        &mut scratch.cuts,
                        &mut scratch.eval,
                    ),
                    Pass::Balance => balance::balance(&cur),
                    Pass::Collapse => collapse::collapse(&cur),
                };
                if let Some(reference) = &reference {
                    assert_eq!(
                        &cur.output_functions(),
                        reference,
                        "synthesis pass {pass:?} changed the circuit function"
                    );
                }
            }
            if cur.n_ands() >= before {
                break;
            }
        }
        cur
    }
}

impl Default for Script {
    fn default() -> Self {
        Script::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, Lit};
    use mvf_logic::TruthTable;

    #[test]
    fn standard_script_shrinks_naive_sbox_logic() {
        // Build the PRESENT S-box naively (minterm by minterm) and check
        // the script compresses it substantially.
        const S: [usize; 16] = [
            0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
        ];
        let mut aig = Aig::new(4);
        let inputs: Vec<Lit> = (0..4).map(|i| aig.input(i)).collect();
        for bit in 0..4 {
            // Sum of minterms, deliberately unoptimized.
            let mut terms = Vec::new();
            for m in 0..16usize {
                if (S[m] >> bit) & 1 == 1 {
                    let lits: Vec<Lit> = (0..4)
                        .map(|v| inputs[v].xor_sign(m & (1 << v) == 0))
                        .collect();
                    let cube = aig.and_many(&lits);
                    terms.push(cube);
                }
            }
            let f = aig.or_many(&terms);
            aig.add_output(format!("o{bit}"), f);
        }
        let before = aig.n_ands();
        let out = Script::standard().run(&aig);
        assert!(out.equivalent(&aig));
        assert!(
            out.n_ands() < before && out.n_ands() <= 40,
            "expected a real shrink: {before} -> {}",
            out.n_ands()
        );
    }

    #[test]
    fn fast_script_is_sound() {
        let tt = TruthTable::from_fn(6, |m| (m * 37 + 11) % 7 < 3);
        let mut aig = Aig::new(6);
        let leaves: Vec<Lit> = (0..6).map(|i| aig.input(i)).collect();
        let f = build::tt_to_aig(&mut aig, &tt, &leaves);
        aig.add_output("f", f);
        let out = Script::fast().run(&aig);
        assert_eq!(out.output_functions()[0], tt);
    }

    #[test]
    fn script_preserves_io_names() {
        let mut aig = Aig::new(2);
        aig.set_input_name(0, "sel");
        aig.set_input_name(1, "data");
        let f = {
            let s = aig.input(0);
            let d = aig.input(1);
            aig.and(s, d)
        };
        aig.add_output("out", f);
        let out = Script::standard().run(&aig);
        assert_eq!(out.input_name(0), "sel");
        assert_eq!(out.input_name(1), "data");
        assert_eq!(out.outputs()[0].0, "out");
    }

    #[test]
    fn empty_script_is_identity_modulo_compaction() {
        let mut aig = Aig::new(2);
        let a = aig.input(0);
        let b = aig.input(1);
        let f = aig.and(a, b);
        let _dangling = aig.and(a, !b);
        aig.add_output("f", f);
        let out = Script::new(vec![], 1).run(&aig);
        assert!(out.equivalent(&aig));
        assert_eq!(out.n_ands(), 1, "compaction removes dangling nodes");
    }
}
