//! Netlist simulation and camouflage validation — the ModelSim substitute.
//!
//! The paper validates its implementation by simulating the mapped
//! circuits in ModelSim and checking that each viable function is realized
//! "when appropriate gate functions are supplied" (§IV). This crate does
//! the same exhaustively:
//!
//! * [`eval_netlist`] — exact truth-table evaluation of a standard-cell
//!   netlist;
//! * [`eval_camo_netlist`] — evaluation of a camouflaged netlist under a
//!   doping configuration (a function binding per camouflaged instance);
//! * [`eval_camo_netlist_multi`] — word-parallel evaluation under *many*
//!   doping configurations at once: the config index becomes extra
//!   truth-table variables, so each camouflaged cell's pin-term products
//!   are computed once and shared across every configuration;
//! * [`eval_camo_netlist_vectors`] — the same multi-configuration pass
//!   generalized from full truth tables to an arbitrary batch of input
//!   vectors: the word index runs over sampled vectors instead of input
//!   minterms, which is the probabilistic screening primitive of the
//!   attack crate's screen-then-solve funnel;
//! * [`validate_mapped`] — for every viable function, bind each
//!   camouflaged cell to its witnessed function and check the circuit
//!   equals the function on all inputs (one multi-config pass).
//!
//! # Example
//!
//! ```
//! use mvf_cells::{CellKind, Library};
//! use mvf_netlist::Netlist;
//! use mvf_sim::eval_netlist;
//!
//! let lib = Library::standard();
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let nor = lib.cell_by_kind(CellKind::Nor(2)).expect("NOR2");
//! let (_, y) = nl.add_cell("u", nor.into(), vec![a, b]);
//! nl.add_output("y", y);
//! let outs = eval_netlist(&nl, &lib);
//! assert!(outs[0].get(0b00));
//! assert!(!outs[0].get(0b01));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::{TruthTable, TtArena, VectorFunction};
use mvf_netlist::{CellId, CellRef, Netlist};
use mvf_techmap::CamoMappedCircuit;

/// Validation failures.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ValidationError {
    /// A camouflaged instance had no binding.
    MissingBinding(CellId),
    /// A bound function is not plausible for its cell.
    NotPlausible {
        /// The offending instance.
        cell: CellId,
    },
    /// The configured circuit disagreed with the viable function.
    FunctionMismatch {
        /// Index of the viable function.
        function: usize,
        /// Output bit where the mismatch occurred.
        output: usize,
    },
    /// Shape mismatch between circuit and functions.
    ShapeMismatch(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MissingBinding(c) => {
                write!(f, "camouflaged cell {c:?} has no function binding")
            }
            ValidationError::NotPlausible { cell } => {
                write!(f, "bound function for cell {cell:?} is not plausible")
            }
            ValidationError::FunctionMismatch { function, output } => {
                write!(
                    f,
                    "circuit disagrees with viable function {function} on output {output}"
                )
            }
            ValidationError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
        }
    }
}

impl Error for ValidationError {}

fn eval_internal(
    nl: &Netlist,
    lib: &Library,
    bind: &dyn Fn(CellId) -> Option<TruthTable>,
) -> Vec<TruthTable> {
    let n = nl.inputs().len();
    // One flat arena slot per net, plus one scratch slot for the product
    // terms: the whole evaluation performs O(1) heap allocations.
    let scratch = nl.n_nets();
    let mut arena = TtArena::new(n, scratch + 1);
    for (i, &pi) in nl.inputs().iter().enumerate() {
        arena.write_var(pi.0 as usize, i);
    }
    for cid in nl.topo_cells() {
        let c = nl.cell(cid);
        let bound;
        let f: &TruthTable = match c.cell {
            CellRef::Std(id) => lib.cell(id).function(),
            CellRef::Camo(_) => {
                bound = bind(cid).expect("camouflaged cell must be bound");
                &bound
            }
        };
        // Shannon sum of the cell's on-set minterms over the pin tables:
        // out = Σ_m f(m) · Π_i (pin_i ⊕ ¬m_i), built with in-place ops.
        let out = c.output.0 as usize;
        arena.write_zero(out);
        for m in 0..f.n_minterms() {
            if !f.get(m) {
                continue;
            }
            arena.write_one(scratch);
            for (i, p) in c.inputs.iter().enumerate() {
                arena.and_in_place(scratch, p.0 as usize, m & (1 << i) == 0);
            }
            arena.or_in_place(out, scratch);
        }
    }
    nl.outputs()
        .iter()
        .map(|(_, net)| arena.to_table(net.0 as usize))
        .collect()
}

/// Exhaustively evaluates a standard-cell netlist: one truth table per
/// output over the primary inputs (in input order).
///
/// # Panics
///
/// Panics if the netlist contains camouflaged cells (use
/// [`eval_camo_netlist`]) or more inputs than [`mvf_logic::MAX_VARS`].
pub fn eval_netlist(nl: &Netlist, lib: &Library) -> Vec<TruthTable> {
    eval_internal(nl, lib, &|_| None)
}

/// Evaluates a netlist containing camouflaged cells under the given
/// doping configuration (`config[cell]` = realized pin-space function).
///
/// # Errors
///
/// Returns [`ValidationError::MissingBinding`] if a camouflaged instance
/// has no entry in `config`, or [`ValidationError::NotPlausible`] if a
/// binding is outside the cell's plausible set.
pub fn eval_camo_netlist(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    config: &HashMap<CellId, TruthTable>,
) -> Result<Vec<TruthTable>, ValidationError> {
    // Pre-validate bindings.
    for (cid, c) in nl.cells() {
        if let CellRef::Camo(id) = c.cell {
            let f = config
                .get(&cid)
                .ok_or(ValidationError::MissingBinding(cid))?;
            if !camo.cell(id).is_plausible(f) {
                return Err(ValidationError::NotPlausible { cell: cid });
            }
        }
    }
    Ok(eval_internal(nl, lib, &|cid| config.get(&cid).cloned()))
}

/// Reusable scratch for multi-configuration evaluation and validation:
/// the widened truth-table arena and the per-configuration binding maps
/// keep their allocations across calls (see `mvf::EvalContext`, which
/// owns one for Phase-III validation).
#[derive(Debug, Default)]
pub struct CamoEvalScratch {
    arena: TtArena,
    configs: Vec<HashMap<CellId, TruthTable>>,
}

impl CamoEvalScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        CamoEvalScratch::default()
    }
}

/// Number of selector variables needed to index `n` configurations.
fn config_bits(n: usize) -> usize {
    let mut s = 0usize;
    while (1usize << s) < n {
        s += 1;
    }
    s
}

/// Evaluates a camouflaged netlist under **all** the given doping
/// configurations in one word-parallel pass: `result[j]` equals
/// [`eval_camo_netlist`] under `configs[j]`.
///
/// The configuration index is encoded as extra truth-table variables
/// above the primary inputs, so every cell's pin-term products — the
/// dominant cost of the Shannon-sum evaluation — are computed **once**
/// and shared across all configurations; only the cheap per-minterm
/// config masks differ. When `n_inputs + config bits` would exceed
/// [`mvf_logic::MAX_VARS`], the configurations are processed in the
/// widest chunks that fit.
///
/// # Errors
///
/// Same per-configuration errors as [`eval_camo_netlist`], checked for
/// every configuration up front.
pub fn eval_camo_netlist_multi(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    configs: &[HashMap<CellId, TruthTable>],
) -> Result<Vec<Vec<TruthTable>>, ValidationError> {
    eval_camo_netlist_multi_with(nl, lib, camo, configs, &mut TtArena::default())
}

/// [`eval_camo_netlist_multi`] with a caller-owned arena: the widened
/// evaluation tables are reset in place across calls.
///
/// # Errors
///
/// Same as [`eval_camo_netlist_multi`].
pub fn eval_camo_netlist_multi_with(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    configs: &[HashMap<CellId, TruthTable>],
    arena: &mut TtArena,
) -> Result<Vec<Vec<TruthTable>>, ValidationError> {
    // Pre-validate every configuration's bindings, in config order.
    for config in configs {
        for (cid, c) in nl.cells() {
            if let CellRef::Camo(id) = c.cell {
                let f = config
                    .get(&cid)
                    .ok_or(ValidationError::MissingBinding(cid))?;
                if !camo.cell(id).is_plausible(f) {
                    return Err(ValidationError::NotPlausible { cell: cid });
                }
            }
        }
    }
    let n_in = nl.inputs().len();
    assert!(
        n_in <= mvf_logic::MAX_VARS,
        "exhaustive evaluation limited to {} inputs",
        mvf_logic::MAX_VARS
    );
    let cap = 1usize << (mvf_logic::MAX_VARS - n_in).min(usize::BITS as usize - 1);
    let mut out = Vec::with_capacity(configs.len());
    for chunk in configs.chunks(cap.max(1)) {
        eval_multi_chunk(nl, lib, chunk, arena, &mut out);
    }
    Ok(out)
}

/// One word-parallel pass over a chunk of configurations whose selector
/// bits fit alongside the primary inputs.
fn eval_multi_chunk(
    nl: &Netlist,
    lib: &Library,
    configs: &[HashMap<CellId, TruthTable>],
    arena: &mut TtArena,
    out: &mut Vec<Vec<TruthTable>>,
) {
    let n_in = nl.inputs().len();
    let n_cfg = configs.len();
    let s = config_bits(n_cfg);
    let n = n_in + s;
    let n_nets = nl.n_nets();
    // Slot layout: 0..n_nets per-net tables, then the product-term and
    // config-mask scratch slots, the selector-variable projections, and
    // one selector indicator per configuration.
    let term = n_nets;
    let mask = n_nets + 1;
    let cfg_var = |b: usize| n_nets + 2 + b;
    let sel = |j: usize| n_nets + 2 + s + j;
    arena.reset(n, n_nets + 2 + s + n_cfg);
    for (i, &pi) in nl.inputs().iter().enumerate() {
        arena.write_var(pi.0 as usize, i);
    }
    for b in 0..s {
        arena.write_var(cfg_var(b), n_in + b);
    }
    // Selector j: the indicator of "config vars == j".
    for j in 0..n_cfg {
        arena.write_one(sel(j));
        for b in 0..s {
            arena.and_in_place(sel(j), cfg_var(b), j & (1 << b) == 0);
        }
    }
    // Per-cell bound-function views, resolved once per cell instead of
    // once per minterm × configuration in the mask loop below.
    let mut bound: Vec<&TruthTable> = Vec::with_capacity(n_cfg);
    for cid in nl.topo_cells() {
        let c = nl.cell(cid);
        let out_slot = c.output.0 as usize;
        arena.write_zero(out_slot);
        match c.cell {
            CellRef::Std(id) => {
                // Config-independent: the plain Shannon sum.
                let f = lib.cell(id).function();
                for m in 0..f.n_minterms() {
                    if !f.get(m) {
                        continue;
                    }
                    arena.write_one(term);
                    for (i, p) in c.inputs.iter().enumerate() {
                        arena.and_in_place(term, p.0 as usize, m & (1 << i) == 0);
                    }
                    arena.or_in_place(out_slot, term);
                }
            }
            CellRef::Camo(_) => {
                // out = Σ_m (Π_i pin products)(m) · Σ_{j: f_j(m)} sel_j —
                // the pin-term product of each minterm is built once and
                // gated by the mask of configurations that enable it.
                bound.clear();
                bound.extend(configs.iter().map(|config| &config[&cid]));
                let n_pins = c.inputs.len();
                for m in 0..(1usize << n_pins) {
                    arena.write_zero(mask);
                    let mut any = false;
                    for (j, f) in bound.iter().enumerate() {
                        if f.get(m) {
                            arena.or_in_place(mask, sel(j));
                            any = true;
                        }
                    }
                    if !any {
                        continue;
                    }
                    arena.write_one(term);
                    for (i, p) in c.inputs.iter().enumerate() {
                        arena.and_in_place(term, p.0 as usize, m & (1 << i) == 0);
                    }
                    arena.and_in_place(term, mask, false);
                    arena.or_in_place(out_slot, term);
                }
            }
        }
    }
    // Slice each configuration's outputs back out of the widened tables.
    for j in 0..n_cfg {
        out.push(
            nl.outputs()
                .iter()
                .map(|(_, net)| {
                    TruthTable::from_fn(n_in, |x| arena.get(net.0 as usize, x | (j << n_in)))
                })
                .collect(),
        );
    }
}

/// Evaluates a camouflaged netlist under all the given doping
/// configurations on an arbitrary **batch of input vectors** in one
/// word-parallel pass: bit `b` of `result[j][o][w]` is output `o` of the
/// circuit under `configs[j]` on the input minterm `vectors[64*w + b]`.
///
/// This generalizes [`eval_camo_netlist_multi`] from full truth tables
/// to sampled vectors: the low arena variables index the *vector batch*
/// (each primary input becomes an arbitrary sampled bit-column, written
/// raw rather than as a variable projection) and the high variables
/// index the configuration, so every cell's pin-term products are still
/// computed once and shared across all configurations. Because the
/// batch dimension replaces the input dimension, the primary-input
/// count is *not* limited by [`mvf_logic::MAX_VARS`] — only
/// `vectors.len() · configs-per-chunk` is. This is the probabilistic
/// screening primitive of the attack crate's screen-then-solve funnel.
///
/// # Errors
///
/// Same per-configuration errors as [`eval_camo_netlist`], checked for
/// every configuration up front.
///
/// # Panics
///
/// Panics if `vectors.len()` is not a power of two in
/// `64..=2^`[`mvf_logic::MAX_VARS`] (power-of-two length keeps every
/// configuration's block word-aligned), or if a vector has bits set at
/// or above the input count.
pub fn eval_camo_netlist_vectors(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    configs: &[HashMap<CellId, TruthTable>],
    vectors: &[u64],
) -> Result<Vec<Vec<Vec<u64>>>, ValidationError> {
    eval_camo_netlist_vectors_with(nl, lib, camo, configs, vectors, &mut TtArena::default())
}

/// [`eval_camo_netlist_vectors`] with a caller-owned arena: the widened
/// evaluation tables are reset in place across calls.
///
/// # Errors
///
/// Same as [`eval_camo_netlist_vectors`].
///
/// # Panics
///
/// Same as [`eval_camo_netlist_vectors`].
pub fn eval_camo_netlist_vectors_with(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    configs: &[HashMap<CellId, TruthTable>],
    vectors: &[u64],
    arena: &mut TtArena,
) -> Result<Vec<Vec<Vec<u64>>>, ValidationError> {
    for config in configs {
        for (cid, c) in nl.cells() {
            if let CellRef::Camo(id) = c.cell {
                let f = config
                    .get(&cid)
                    .ok_or(ValidationError::MissingBinding(cid))?;
                if !camo.cell(id).is_plausible(f) {
                    return Err(ValidationError::NotPlausible { cell: cid });
                }
            }
        }
    }
    let v = vectors.len();
    assert!(
        v.is_power_of_two() && (64..=1 << mvf_logic::MAX_VARS).contains(&v),
        "vector batch length must be a power of two in 64..=2^{}",
        mvf_logic::MAX_VARS
    );
    let n_in = nl.inputs().len();
    assert!(n_in <= 64, "u64 vectors cover at most 64 primary inputs");
    assert!(
        n_in == 64 || vectors.iter().all(|&m| m < 1u64 << n_in),
        "vectors must be minterms over the {n_in} primary inputs"
    );
    let v_bits = v.trailing_zeros() as usize;
    let cap = 1usize << (mvf_logic::MAX_VARS - v_bits);
    let mut out = Vec::with_capacity(configs.len());
    for chunk in configs.chunks(cap) {
        eval_vectors_chunk(nl, lib, chunk, vectors, arena, &mut out);
    }
    Ok(out)
}

/// One word-parallel vector-batch pass over a chunk of configurations
/// whose selector bits fit alongside the batch-index variables.
///
/// Unlike [`eval_multi_chunk`], configuration blocks here are always
/// word-aligned (the batch length is a power of two ≥ 64), so the
/// per-minterm configuration masks are written directly as raw word
/// patterns — `O(words)` per minterm instead of `O(configs · words)`
/// selector ORs, which is what lets the screen enumerate thousands of
/// configurations cheaply.
fn eval_vectors_chunk(
    nl: &Netlist,
    lib: &Library,
    configs: &[HashMap<CellId, TruthTable>],
    vectors: &[u64],
    arena: &mut TtArena,
    out: &mut Vec<Vec<Vec<u64>>>,
) {
    let n_cfg = configs.len();
    let s = config_bits(n_cfg);
    let v_bits = vectors.len().trailing_zeros() as usize;
    let wpv = vectors.len() / 64;
    let n_nets = nl.n_nets();
    // Slot layout: 0..n_nets per-net tables, then the product-term and
    // config-mask scratch slots.
    let term = n_nets;
    let mask = n_nets + 1;
    arena.reset(v_bits + s, n_nets + 2);
    // Input columns: bit b of word w is bit i of vectors[64w + b],
    // replicated across every configuration block.
    let mut pattern = vec![0u64; wpv];
    for (i, &pi) in nl.inputs().iter().enumerate() {
        for (w, word) in pattern.iter_mut().enumerate() {
            *word = vectors[64 * w..64 * (w + 1)]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (b, &m)| acc | (((m >> i) & 1) << b));
        }
        arena.write_pattern(pi.0 as usize, &pattern);
    }
    let mut bound: Vec<&TruthTable> = Vec::with_capacity(n_cfg);
    let mut mask_words = vec![0u64; arena.words_per_slot()];
    for cid in nl.topo_cells() {
        let c = nl.cell(cid);
        let out_slot = c.output.0 as usize;
        arena.write_zero(out_slot);
        match c.cell {
            CellRef::Std(id) => {
                // Config-independent: the plain Shannon sum.
                let f = lib.cell(id).function();
                for m in 0..f.n_minterms() {
                    if !f.get(m) {
                        continue;
                    }
                    arena.write_one(term);
                    for (i, p) in c.inputs.iter().enumerate() {
                        arena.and_in_place(term, p.0 as usize, m & (1 << i) == 0);
                    }
                    arena.or_in_place(out_slot, term);
                }
            }
            CellRef::Camo(_) => {
                // As in [`eval_multi_chunk`], each pin-minterm product is
                // built once and gated by the mask of configurations that
                // enable it — but the mask is a direct block fill: word w
                // belongs entirely to configuration w / wpv.
                bound.clear();
                bound.extend(configs.iter().map(|config| &config[&cid]));
                let n_pins = c.inputs.len();
                for m in 0..(1usize << n_pins) {
                    mask_words.fill(0);
                    let mut any = false;
                    for (j, f) in bound.iter().enumerate() {
                        if f.get(m) {
                            mask_words[j * wpv..(j + 1) * wpv].fill(u64::MAX);
                            any = true;
                        }
                    }
                    if !any {
                        continue;
                    }
                    arena.write_pattern(mask, &mask_words);
                    arena.write_one(term);
                    for (i, p) in c.inputs.iter().enumerate() {
                        arena.and_in_place(term, p.0 as usize, m & (1 << i) == 0);
                    }
                    arena.and_in_place(term, mask, false);
                    arena.or_in_place(out_slot, term);
                }
            }
        }
    }
    // Slice each configuration's word block back out of every output.
    for j in 0..n_cfg {
        out.push(
            nl.outputs()
                .iter()
                .map(|(_, net)| arena.slot(net.0 as usize)[j * wpv..(j + 1) * wpv].to_vec())
                .collect(),
        );
    }
}

/// Validates a camouflage-mapped circuit against its viable functions: for
/// every function index `j`, binds each camouflaged cell to its witnessed
/// function under select value `j` and checks the circuit computes
/// `viable[j]` exactly.
///
/// All viable functions are checked in **one** word-parallel
/// [`eval_camo_netlist_multi`] pass, so the per-cell pin-term products are
/// shared across the doping configurations instead of being recomputed
/// per function.
///
/// `viable[j]` must be expressed over the mapped netlist's input/output
/// ordering (i.e. the *pin-permuted* functions from the merged circuit).
///
/// # Errors
///
/// Returns the first [`ValidationError`] encountered (shape and binding
/// errors for every function are reported before any mismatch).
pub fn validate_mapped(
    mapped: &CamoMappedCircuit,
    lib: &Library,
    camo: &CamoLibrary,
    viable: &[VectorFunction],
) -> Result<(), ValidationError> {
    validate_mapped_with(mapped, lib, camo, viable, &mut CamoEvalScratch::default())
}

/// [`validate_mapped`] with a caller-owned [`CamoEvalScratch`]: the
/// widened evaluation arena and the per-function binding maps are reused
/// across calls — the Phase-III validation reuse hook of
/// `mvf::EvalContext`.
///
/// # Errors
///
/// Same as [`validate_mapped`].
pub fn validate_mapped_with(
    mapped: &CamoMappedCircuit,
    lib: &Library,
    camo: &CamoLibrary,
    viable: &[VectorFunction],
    scratch: &mut CamoEvalScratch,
) -> Result<(), ValidationError> {
    let nl = &mapped.netlist;
    let n_in = nl.inputs().len();
    let n_out = nl.outputs().len();
    for (j, f) in viable.iter().enumerate() {
        if f.n_inputs() != n_in || f.n_outputs() != n_out {
            return Err(ValidationError::ShapeMismatch(format!(
                "function {j} is {}→{}, circuit is {}→{}",
                f.n_inputs(),
                f.n_outputs(),
                n_in,
                n_out
            )));
        }
    }
    // One binding map per viable function, rebuilt in the reused buffers.
    if scratch.configs.len() < viable.len() {
        scratch.configs.resize_with(viable.len(), HashMap::new);
    }
    for j in 0..viable.len() {
        let config = &mut scratch.configs[j];
        config.clear();
        for w in &mapped.witness.cells {
            config.insert(w.cell, w.function_for(j).clone());
        }
    }
    let results = eval_camo_netlist_multi_with(
        nl,
        lib,
        camo,
        &scratch.configs[..viable.len()],
        &mut scratch.arena,
    )?;
    for (j, f) in viable.iter().enumerate() {
        for (o, got) in results[j].iter().enumerate() {
            if got != f.output(o) {
                return Err(ValidationError::FunctionMismatch {
                    function: j,
                    output: o,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_aig::Aig;
    use mvf_cells::CellKind;
    use mvf_merge::{build_merged, PinAssignment};
    use mvf_netlist::subject_graph;
    use mvf_sboxes::optimal_sboxes;
    use mvf_techmap::{map_camouflage, CamoMapOptions};

    #[test]
    fn eval_matches_cell_semantics() {
        let lib = Library::standard();
        let or3 = lib.cell_by_kind(CellKind::Or(3)).unwrap();
        let inv = lib.cell_by_kind(CellKind::Inv).unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let (_, or) = nl.add_cell("u1", or3.into(), vec![a, b, c]);
        let (_, y) = nl.add_cell("u2", inv.into(), vec![or]);
        nl.add_output("nor3", y);
        let outs = eval_netlist(&nl, &lib);
        for m in 0..8usize {
            assert_eq!(outs[0].get(m), m == 0);
        }
    }

    #[test]
    fn camo_eval_rejects_unbound_and_implausible() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let (nand_id, _) = camo
            .iter()
            .find(|(_, c)| c.name() == "NAND2")
            .expect("NAND2");
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (cid, y) = nl.add_cell("u1", nand_id.into(), vec![a, b]);
        nl.add_output("y", y);

        let empty = HashMap::new();
        assert!(matches!(
            eval_camo_netlist(&nl, &lib, &camo, &empty),
            Err(ValidationError::MissingBinding(_))
        ));

        let mut bad = HashMap::new();
        let a_tt = TruthTable::var(0, 2);
        let b_tt = TruthTable::var(1, 2);
        bad.insert(cid, a_tt.xor(&b_tt)); // XOR is not plausible for NAND2
        assert!(matches!(
            eval_camo_netlist(&nl, &lib, &camo, &bad),
            Err(ValidationError::NotPlausible { .. })
        ));

        let mut good = HashMap::new();
        good.insert(cid, a_tt.not());
        let outs = eval_camo_netlist(&nl, &lib, &camo, &good).unwrap();
        assert_eq!(outs[0], a_tt.not());
    }

    #[test]
    fn full_flow_validates_two_sboxes() {
        // Merge 2 optimal S-boxes, synthesize lightly, camo-map, validate.
        let funcs = optimal_sboxes()[..2].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        let synthesized = mvf_aig::Script::fast().run(&merged.aig);
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let subject = subject_graph::from_aig(&synthesized, &lib);
        let mapped = map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &CamoMapOptions::default(),
        )
        .expect("mappable");
        validate_mapped(&mapped, &lib, &camo, &merged.functions)
            .expect("every viable function must be realizable");
    }

    #[test]
    fn validation_detects_wrong_function() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let subject = subject_graph::from_aig(&merged.aig, &lib);
        let mapped = map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &CamoMapOptions::default(),
        )
        .expect("mappable");
        // Swap in a wrong expected function list: validation must fail.
        let wrong = vec![merged.functions[1].clone(), merged.functions[0].clone()];
        assert!(validate_mapped(&mapped, &lib, &camo, &wrong).is_err());
    }

    #[test]
    fn multi_config_eval_matches_per_config() {
        // The word-parallel pass must agree bit-for-bit with evaluating
        // each doping configuration separately.
        let funcs = optimal_sboxes()[..4].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        let synthesized = mvf_aig::Script::fast().run(&merged.aig);
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let subject = subject_graph::from_aig(&synthesized, &lib);
        let mapped = map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &CamoMapOptions::default(),
        )
        .expect("mappable");
        let configs: Vec<HashMap<CellId, TruthTable>> = (0..funcs.len())
            .map(|j| {
                mapped
                    .witness
                    .cells
                    .iter()
                    .map(|w| (w.cell, w.function_for(j).clone()))
                    .collect()
            })
            .collect();
        let multi = eval_camo_netlist_multi(&mapped.netlist, &lib, &camo, &configs).unwrap();
        assert_eq!(multi.len(), configs.len());
        for (j, config) in configs.iter().enumerate() {
            let single = eval_camo_netlist(&mapped.netlist, &lib, &camo, config).unwrap();
            assert_eq!(multi[j], single, "config {j}");
        }
        // A reused scratch gives the same answers.
        let mut scratch = CamoEvalScratch::new();
        for _ in 0..2 {
            let again = eval_camo_netlist_multi_with(
                &mapped.netlist,
                &lib,
                &camo,
                &configs,
                &mut scratch.arena,
            )
            .unwrap();
            assert_eq!(again, multi);
        }
        validate_mapped_with(&mapped, &lib, &camo, &merged.functions, &mut scratch)
            .expect("valid under scratch reuse");
    }

    #[test]
    fn multi_config_eval_empty_and_single() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let (nand_id, _) = camo
            .iter()
            .find(|(_, c)| c.name() == "NAND2")
            .expect("NAND2");
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (cid, y) = nl.add_cell("u1", nand_id.into(), vec![a, b]);
        nl.add_output("y", y);
        assert!(eval_camo_netlist_multi(&nl, &lib, &camo, &[])
            .unwrap()
            .is_empty());
        let a_tt = TruthTable::var(0, 2);
        let mut config = HashMap::new();
        config.insert(cid, a_tt.not());
        let multi = eval_camo_netlist_multi(&nl, &lib, &camo, std::slice::from_ref(&config))
            .expect("single config");
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0][0], a_tt.not());
    }

    #[test]
    fn vector_batch_eval_matches_multi_config_eval() {
        // The vector-batch pass must agree bit-for-bit with the full
        // truth-table multi-config pass on every sampled vector — the
        // soundness anchor of the attack crate's screening funnel.
        let funcs = optimal_sboxes()[..4].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        let synthesized = mvf_aig::Script::fast().run(&merged.aig);
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let subject = subject_graph::from_aig(&synthesized, &lib);
        let mapped = map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &CamoMapOptions::default(),
        )
        .expect("mappable");
        let configs: Vec<HashMap<CellId, TruthTable>> = (0..funcs.len())
            .map(|j| {
                mapped
                    .witness
                    .cells
                    .iter()
                    .map(|w| (w.cell, w.function_for(j).clone()))
                    .collect()
            })
            .collect();
        let nl = &mapped.netlist;
        let n_in = nl.inputs().len();
        let full = eval_camo_netlist_multi(nl, &lib, &camo, &configs).unwrap();
        // A cycled complete batch and a scattered sampled batch, with a
        // reused arena across calls.
        let cycled: Vec<u64> = (0..64u64).map(|m| m % (1 << n_in)).collect();
        let sampled: Vec<u64> = (0..128u64)
            .map(|m| (m * 2_654_435_761) % (1 << n_in))
            .collect();
        let mut arena = TtArena::default();
        for vectors in [&cycled, &sampled] {
            let got =
                eval_camo_netlist_vectors_with(nl, &lib, &camo, &configs, vectors, &mut arena)
                    .unwrap();
            assert_eq!(got.len(), configs.len());
            for (j, per_cfg) in got.iter().enumerate() {
                assert_eq!(per_cfg.len(), nl.outputs().len());
                for (o, words) in per_cfg.iter().enumerate() {
                    assert_eq!(words.len(), vectors.len() / 64);
                    for (m, &x) in vectors.iter().enumerate() {
                        let bit = (words[m / 64] >> (m % 64)) & 1 == 1;
                        assert_eq!(
                            bit,
                            full[j][o].get(x as usize),
                            "config {j}, output {o}, vector {m} (minterm {x})"
                        );
                    }
                }
            }
        }
        // Binding errors surface exactly as in the truth-table pass.
        let empty = vec![HashMap::new()];
        assert!(matches!(
            eval_camo_netlist_vectors(nl, &lib, &camo, &empty, &cycled),
            Err(ValidationError::MissingBinding(_))
        ));
    }

    #[test]
    fn plain_subject_graph_eval_matches_aig() {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.input(0), aig.input(1), aig.input(2));
        let t = aig.xor(a, b);
        let f = aig.mux(c, t, a);
        aig.add_output("y", f);
        let lib = Library::standard();
        let nl = subject_graph::from_aig(&aig, &lib);
        let outs = eval_netlist(&nl, &lib);
        assert_eq!(outs, aig.output_functions());
    }
}
