//! Netlist simulation and camouflage validation — the ModelSim substitute.
//!
//! The paper validates its implementation by simulating the mapped
//! circuits in ModelSim and checking that each viable function is realized
//! "when appropriate gate functions are supplied" (§IV). This crate does
//! the same exhaustively:
//!
//! * [`eval_netlist`] — exact truth-table evaluation of a standard-cell
//!   netlist;
//! * [`eval_camo_netlist`] — evaluation of a camouflaged netlist under a
//!   doping configuration (a function binding per camouflaged instance);
//! * [`validate_mapped`] — for every viable function, bind each
//!   camouflaged cell to its witnessed function and check the circuit
//!   equals the function on all inputs.
//!
//! # Example
//!
//! ```
//! use mvf_cells::{CellKind, Library};
//! use mvf_netlist::Netlist;
//! use mvf_sim::eval_netlist;
//!
//! let lib = Library::standard();
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let nor = lib.cell_by_kind(CellKind::Nor(2)).expect("NOR2");
//! let (_, y) = nl.add_cell("u", nor.into(), vec![a, b]);
//! nl.add_output("y", y);
//! let outs = eval_netlist(&nl, &lib);
//! assert!(outs[0].get(0b00));
//! assert!(!outs[0].get(0b01));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::{TruthTable, TtArena, VectorFunction};
use mvf_netlist::{CellId, CellRef, Netlist};
use mvf_techmap::CamoMappedCircuit;

/// Validation failures.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ValidationError {
    /// A camouflaged instance had no binding.
    MissingBinding(CellId),
    /// A bound function is not plausible for its cell.
    NotPlausible {
        /// The offending instance.
        cell: CellId,
    },
    /// The configured circuit disagreed with the viable function.
    FunctionMismatch {
        /// Index of the viable function.
        function: usize,
        /// Output bit where the mismatch occurred.
        output: usize,
    },
    /// Shape mismatch between circuit and functions.
    ShapeMismatch(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MissingBinding(c) => {
                write!(f, "camouflaged cell {c:?} has no function binding")
            }
            ValidationError::NotPlausible { cell } => {
                write!(f, "bound function for cell {cell:?} is not plausible")
            }
            ValidationError::FunctionMismatch { function, output } => {
                write!(
                    f,
                    "circuit disagrees with viable function {function} on output {output}"
                )
            }
            ValidationError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
        }
    }
}

impl Error for ValidationError {}

fn eval_internal(
    nl: &Netlist,
    lib: &Library,
    bind: &dyn Fn(CellId) -> Option<TruthTable>,
) -> Vec<TruthTable> {
    let n = nl.inputs().len();
    // One flat arena slot per net, plus one scratch slot for the product
    // terms: the whole evaluation performs O(1) heap allocations.
    let scratch = nl.n_nets();
    let mut arena = TtArena::new(n, scratch + 1);
    for (i, &pi) in nl.inputs().iter().enumerate() {
        arena.write_var(pi.0 as usize, i);
    }
    for cid in nl.topo_cells() {
        let c = nl.cell(cid);
        let bound;
        let f: &TruthTable = match c.cell {
            CellRef::Std(id) => lib.cell(id).function(),
            CellRef::Camo(_) => {
                bound = bind(cid).expect("camouflaged cell must be bound");
                &bound
            }
        };
        // Shannon sum of the cell's on-set minterms over the pin tables:
        // out = Σ_m f(m) · Π_i (pin_i ⊕ ¬m_i), built with in-place ops.
        let out = c.output.0 as usize;
        arena.write_zero(out);
        for m in 0..f.n_minterms() {
            if !f.get(m) {
                continue;
            }
            arena.write_one(scratch);
            for (i, p) in c.inputs.iter().enumerate() {
                arena.and_in_place(scratch, p.0 as usize, m & (1 << i) == 0);
            }
            arena.or_in_place(out, scratch);
        }
    }
    nl.outputs()
        .iter()
        .map(|(_, net)| arena.to_table(net.0 as usize))
        .collect()
}

/// Exhaustively evaluates a standard-cell netlist: one truth table per
/// output over the primary inputs (in input order).
///
/// # Panics
///
/// Panics if the netlist contains camouflaged cells (use
/// [`eval_camo_netlist`]) or more inputs than [`mvf_logic::MAX_VARS`].
pub fn eval_netlist(nl: &Netlist, lib: &Library) -> Vec<TruthTable> {
    eval_internal(nl, lib, &|_| None)
}

/// Evaluates a netlist containing camouflaged cells under the given
/// doping configuration (`config[cell]` = realized pin-space function).
///
/// # Errors
///
/// Returns [`ValidationError::MissingBinding`] if a camouflaged instance
/// has no entry in `config`, or [`ValidationError::NotPlausible`] if a
/// binding is outside the cell's plausible set.
pub fn eval_camo_netlist(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    config: &HashMap<CellId, TruthTable>,
) -> Result<Vec<TruthTable>, ValidationError> {
    // Pre-validate bindings.
    for (cid, c) in nl.cells() {
        if let CellRef::Camo(id) = c.cell {
            let f = config
                .get(&cid)
                .ok_or(ValidationError::MissingBinding(cid))?;
            if !camo.cell(id).is_plausible(f) {
                return Err(ValidationError::NotPlausible { cell: cid });
            }
        }
    }
    Ok(eval_internal(nl, lib, &|cid| config.get(&cid).cloned()))
}

/// Validates a camouflage-mapped circuit against its viable functions: for
/// every function index `j`, binds each camouflaged cell to its witnessed
/// function under select value `j` and checks the circuit computes
/// `viable[j]` exactly.
///
/// `viable[j]` must be expressed over the mapped netlist's input/output
/// ordering (i.e. the *pin-permuted* functions from the merged circuit).
///
/// # Errors
///
/// Returns the first [`ValidationError`] encountered.
pub fn validate_mapped(
    mapped: &CamoMappedCircuit,
    lib: &Library,
    camo: &CamoLibrary,
    viable: &[VectorFunction],
) -> Result<(), ValidationError> {
    let nl = &mapped.netlist;
    let n_in = nl.inputs().len();
    let n_out = nl.outputs().len();
    // One binding map reused across every viable function.
    let mut config: HashMap<CellId, TruthTable> = HashMap::new();
    for (j, f) in viable.iter().enumerate() {
        if f.n_inputs() != n_in || f.n_outputs() != n_out {
            return Err(ValidationError::ShapeMismatch(format!(
                "function {j} is {}→{}, circuit is {}→{}",
                f.n_inputs(),
                f.n_outputs(),
                n_in,
                n_out
            )));
        }
        config.clear();
        for w in &mapped.witness.cells {
            config.insert(w.cell, w.function_for(j).clone());
        }
        let outs = eval_camo_netlist(nl, lib, camo, &config)?;
        for (o, got) in outs.iter().enumerate() {
            if got != f.output(o) {
                return Err(ValidationError::FunctionMismatch {
                    function: j,
                    output: o,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_aig::Aig;
    use mvf_cells::CellKind;
    use mvf_merge::{build_merged, PinAssignment};
    use mvf_netlist::subject_graph;
    use mvf_sboxes::optimal_sboxes;
    use mvf_techmap::{map_camouflage, CamoMapOptions};

    #[test]
    fn eval_matches_cell_semantics() {
        let lib = Library::standard();
        let or3 = lib.cell_by_kind(CellKind::Or(3)).unwrap();
        let inv = lib.cell_by_kind(CellKind::Inv).unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let (_, or) = nl.add_cell("u1", or3.into(), vec![a, b, c]);
        let (_, y) = nl.add_cell("u2", inv.into(), vec![or]);
        nl.add_output("nor3", y);
        let outs = eval_netlist(&nl, &lib);
        for m in 0..8usize {
            assert_eq!(outs[0].get(m), m == 0);
        }
    }

    #[test]
    fn camo_eval_rejects_unbound_and_implausible() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let (nand_id, _) = camo
            .iter()
            .find(|(_, c)| c.name() == "NAND2")
            .expect("NAND2");
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (cid, y) = nl.add_cell("u1", nand_id.into(), vec![a, b]);
        nl.add_output("y", y);

        let empty = HashMap::new();
        assert!(matches!(
            eval_camo_netlist(&nl, &lib, &camo, &empty),
            Err(ValidationError::MissingBinding(_))
        ));

        let mut bad = HashMap::new();
        let a_tt = TruthTable::var(0, 2);
        let b_tt = TruthTable::var(1, 2);
        bad.insert(cid, a_tt.xor(&b_tt)); // XOR is not plausible for NAND2
        assert!(matches!(
            eval_camo_netlist(&nl, &lib, &camo, &bad),
            Err(ValidationError::NotPlausible { .. })
        ));

        let mut good = HashMap::new();
        good.insert(cid, a_tt.not());
        let outs = eval_camo_netlist(&nl, &lib, &camo, &good).unwrap();
        assert_eq!(outs[0], a_tt.not());
    }

    #[test]
    fn full_flow_validates_two_sboxes() {
        // Merge 2 optimal S-boxes, synthesize lightly, camo-map, validate.
        let funcs = optimal_sboxes()[..2].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        let synthesized = mvf_aig::Script::fast().run(&merged.aig);
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let subject = subject_graph::from_aig(&synthesized, &lib);
        let mapped = map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &CamoMapOptions::default(),
        )
        .expect("mappable");
        validate_mapped(&mapped, &lib, &camo, &merged.functions)
            .expect("every viable function must be realizable");
    }

    #[test]
    fn validation_detects_wrong_function() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let subject = subject_graph::from_aig(&merged.aig, &lib);
        let mapped = map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &CamoMapOptions::default(),
        )
        .expect("mappable");
        // Swap in a wrong expected function list: validation must fail.
        let wrong = vec![merged.functions[1].clone(), merged.functions[0].clone()];
        assert!(validate_mapped(&mapped, &lib, &camo, &wrong).is_err());
    }

    #[test]
    fn plain_subject_graph_eval_matches_aig() {
        let mut aig = Aig::new(3);
        let (a, b, c) = (aig.input(0), aig.input(1), aig.input(2));
        let t = aig.xor(a, b);
        let f = aig.mux(c, t, a);
        aig.add_output("y", f);
        let lib = Library::standard();
        let nl = subject_graph::from_aig(&aig, &lib);
        let outs = eval_netlist(&nl, &lib);
        assert_eq!(outs, aig.output_functions());
    }
}
