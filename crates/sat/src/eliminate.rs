//! Bounded variable elimination (BVE) with model reconstruction.
//!
//! During [`Solver::simplify`], unfrozen, unassigned variables that
//! occur in no learnt clause are considered for elimination by
//! resolution (NiVER-style): for pivot `v` with positive occurrences
//! `P` and negative occurrences `N`, every non-tautological resolvent
//! of a `P`×`N` pair replaces the original clauses — but only when the
//! resolvent count does not exceed `|P| + |N|`, occurrence counts stay
//! under [`OCC_LIMIT`] and no resolvent exceeds [`RESOLVENT_MAX_LEN`]
//! literals, so the formula never grows.
//!
//! The replacement is equisatisfiable, not equivalent, so eliminated
//! variables get **model reconstruction**: the removed clauses are
//! saved to a flat side arena and replayed in reverse elimination order
//! after every SAT answer — `v` is set `true` exactly when some saved
//! positive-occurrence clause has all its other literals false (the
//! standard extension lemma guarantees this value satisfies the
//! negative occurrences too, since the corresponding resolvent is
//! satisfied). Reconstructed values are *not* trail facts; they are
//! cleared at the start of the next query.
//!
//! Interface rules: callers must freeze ([`Solver::set_frozen`]) every
//! variable that crosses the solver boundary — Tseitin interface
//! outputs, assumption variables, key/config variables — before calling
//! [`Solver::simplify`]. Assuming on an eliminated variable panics.
//! Clauses satisfied at level 0 neither constrain the pivot nor block
//! its elimination (every model the solver reports contains the level-0
//! units that satisfy them), so they are left attached and unsaved.

use crate::solver::Solver;
use crate::{Lit, Var};
use std::collections::HashSet;

/// Per-polarity occurrence cap: pivots seen more often are skipped.
const OCC_LIMIT: usize = 10;
/// Longest resolvent an elimination is allowed to produce.
const RESOLVENT_MAX_LEN: usize = 12;

impl Solver {
    /// Clears the values a previous SAT answer reconstructed for
    /// eliminated variables (they are not level-0 facts).
    pub(crate) fn clear_reconstructed(&mut self) {
        for &(v, _, _) in &self.elim_trail {
            self.assign[v as usize] = None;
        }
    }

    /// Extends the current (satisfying) assignment over the eliminated
    /// variables, replaying the saved clauses in reverse elimination
    /// order.
    pub(crate) fn reconstruct_model(&mut self) {
        for ti in (0..self.elim_trail.len()).rev() {
            let (v, start, end) = self.elim_trail[ti];
            let mut val = false;
            let mut i = start as usize;
            while i < end as usize {
                let len = self.elim_clauses[i] as usize;
                let mut has_pos = false;
                let mut others_false = true;
                for &code in &self.elim_clauses[i + 1..i + 1 + len] {
                    let l = Lit::from_code(code);
                    if l.var().0 == v {
                        has_pos |= !l.is_negative();
                        continue;
                    }
                    if self.lit_value(l) != Some(false) {
                        others_false = false;
                        break;
                    }
                }
                if has_pos && others_false {
                    val = true;
                    break;
                }
                i += 1 + len;
            }
            self.assign[v as usize] = Some(val);
        }
    }

    /// One bounded-variable-elimination round over the current problem
    /// clauses. Must run at decision level 0 with no pending
    /// propagations; may set `unsat` (via resolvent units).
    pub(crate) fn eliminate_round(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "BVE runs at level 0");
        if self.unsat {
            return;
        }
        // Occurrence index over live, level-0-unsatisfied problem
        // clauses. The lists live on the solver so their footprint is
        // visible to `db_bytes`; contents are rebuilt per round.
        let n_codes = 2 * self.n_vars();
        self.occ.resize_with(n_codes, Vec::new);
        for i in 0..self.clause_refs.len() {
            let cr = self.clause_refs[i] as usize;
            let len = self.arena[cr] as usize;
            let satisfied = (0..len)
                .any(|k| self.lit_value(Lit::from_code(self.arena[cr + 1 + k])) == Some(true));
            if satisfied {
                continue;
            }
            for k in 0..len {
                self.occ[self.arena[cr + 1 + k] as usize].push(cr as u32);
            }
        }
        // Variables mentioned by any learnt clause are not eliminated
        // this round: a learnt left watching an eliminated variable
        // could propagate it back to life.
        let mut in_learnt = vec![false; self.n_vars()];
        for li in 0..self.learnt_refs.len() {
            let cr = self.learnt_refs[li] as usize;
            let len = self.arena[cr] as usize;
            for k in 0..len {
                in_learnt[Lit::from_code(self.arena[cr + 1 + k]).var().0 as usize] = true;
            }
        }
        let mut removed: HashSet<u32> = HashSet::new();
        let mut pos: Vec<u32> = Vec::new();
        let mut neg: Vec<u32> = Vec::new();
        let mut resolvents: Vec<Vec<Lit>> = Vec::new();
        for v in 0..self.n_vars() {
            if self.unsat {
                break;
            }
            if self.frozen[v] || self.eliminated[v] || self.assign[v].is_some() || in_learnt[v] {
                continue;
            }
            let pvar = Var(v as u32);
            let (pcode, ncode) = (Lit::pos(pvar).code(), Lit::neg(pvar).code());
            // Live occurrences of each polarity (drop removed or
            // since-satisfied clauses lazily).
            let live = |s: &Solver, gone: &HashSet<u32>, code: usize, out: &mut Vec<u32>| {
                out.clear();
                for &cr in &s.occ[code] {
                    if gone.contains(&cr) {
                        continue;
                    }
                    let len = s.arena[cr as usize] as usize;
                    let sat = (0..len).any(|k| {
                        s.lit_value(Lit::from_code(s.arena[cr as usize + 1 + k])) == Some(true)
                    });
                    if !sat {
                        out.push(cr);
                    }
                }
            };
            live(self, &removed, pcode, &mut pos);
            live(self, &removed, ncode, &mut neg);
            if pos.len() > OCC_LIMIT || neg.len() > OCC_LIMIT {
                continue;
            }
            // Count and collect non-tautological resolvents; bail if the
            // clause count would grow or a resolvent gets too long.
            resolvents.clear();
            let mut fits = true;
            'pairs: for &p in &pos {
                for &n in &neg {
                    if let Some(r) = self.resolve(p, n, pvar) {
                        if r.len() > RESOLVENT_MAX_LEN
                            || resolvents.len() + 1 > pos.len() + neg.len()
                        {
                            fits = false;
                            break 'pairs;
                        }
                        resolvents.push(r);
                    }
                }
            }
            if !fits {
                continue;
            }
            // Commit: save + detach the originals first (so nothing can
            // ever propagate `v` again), then add the resolvents.
            let start = self.elim_clauses.len() as u32;
            for &cr in pos.iter().chain(neg.iter()) {
                let cr = cr as usize;
                let len = self.arena[cr] as usize;
                self.elim_clauses.push(len as u32);
                for k in 0..len {
                    self.elim_clauses.push(self.arena[cr + 1 + k]);
                }
                self.detach(cr as u32);
                let idx = self
                    .clause_refs
                    .binary_search(&(cr as u32))
                    .expect("occurrence is an indexed problem clause");
                self.remove_problem_clause(idx, cr as u32);
                removed.insert(cr as u32);
            }
            let end = self.elim_clauses.len() as u32;
            self.elim_trail.push((v as u32, start, end));
            self.eliminated[v] = true;
            self.n_eliminated += 1;
            for r in &resolvents {
                if let Some(cr) = self.add_clause_internal(r) {
                    for &l in r {
                        self.occ[l.code()].push(cr);
                    }
                }
                if self.unsat {
                    break;
                }
            }
        }
        for list in &mut self.occ {
            list.clear();
        }
    }

    /// The resolvent of clauses `p` (contains `pivot`) and `n` (contains
    /// `¬pivot`) on `pivot`, or `None` if it is tautological. Duplicate
    /// literals are merged; level-0-false literals are kept (add_clause
    /// strips them again).
    fn resolve(&self, p: u32, n: u32, pivot: Var) -> Option<Vec<Lit>> {
        let mut out: Vec<Lit> = Vec::new();
        for &cr in &[p, n] {
            let cr = cr as usize;
            let len = self.arena[cr] as usize;
            for k in 0..len {
                let l = Lit::from_code(self.arena[cr + 1 + k]);
                if l.var() == pivot {
                    continue;
                }
                if out.contains(&!l) {
                    return None; // tautology
                }
                if !out.contains(&l) {
                    out.push(l);
                }
            }
        }
        Some(out)
    }
}
