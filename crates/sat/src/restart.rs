//! EMA-driven stabilizing restarts.
//!
//! The solver keeps two exponential moving averages of learnt-clause
//! LBD: a fast one (recent conflicts) and a slow one (the whole run).
//! When the fast average rises well above the slow one, the search is
//! producing worse clauses than its historical norm — a restart is
//! likely to help. Search alternates between two modes, both driven by
//! solver-owned deterministic counters (cloned with the solver, so
//! sharded sweeps and warm-started sessions stay bit-reproducible):
//!
//! * **Focused** — agile restarts: restart as soon as at least
//!   [`MIN_RESTART_CONFLICTS`] conflicts have accumulated since the
//!   last restart *and* `ema_fast > 1.25 · ema_slow`.
//! * **Stable** — long, fixed restart intervals that let phase saving
//!   settle into one region of the space; good for satisfiable
//!   instances the agile mode keeps abandoning. Stable periods grow
//!   geometrically (×2) each time the mode recurs.
//!
//! The EMAs advance on *every* conflict in every restart mode — they
//! are pure observers — but steer restarts only when
//! [`Solver::set_restart_ema`] is on and Luby mode is off
//! ([`Solver::set_restart_luby`] takes precedence, preserving the
//! pre-existing Luby semantics). With both off, the geometric schedule
//! runs bit-identically to the pre-EMA solver.

use crate::solver::Solver;

/// Fast-EMA smoothing factor (per conflict).
const ALPHA_FAST: f64 = 1.0 / 32.0;
/// Slow-EMA smoothing factor (per conflict).
const ALPHA_SLOW: f64 = 1.0 / 4096.0;
/// Focused mode: minimum conflicts between restarts.
const MIN_RESTART_CONFLICTS: u64 = 50;
/// Focused mode: restart when `ema_fast > THRESHOLD * ema_slow`.
const THRESHOLD: f64 = 1.25;
/// Conflicts spent in focused mode before switching to stable.
const FOCUSED_LEN: u64 = 5000;
/// Initial stable-phase restart interval (doubles per stable phase).
pub(crate) const STABLE_PERIOD_INIT: u64 = 1000;

impl Solver {
    /// Advances the LBD EMAs and the mode clock by one conflict.
    pub(crate) fn ema_note_conflict(&mut self, lbd: u32) {
        let lbd = lbd as f64;
        self.ema_fast += ALPHA_FAST * (lbd - self.ema_fast);
        self.ema_slow += ALPHA_SLOW * (lbd - self.ema_slow);
        self.mode_conflicts += 1;
    }

    /// EMA-mode restart decision, given the conflicts accumulated since
    /// the last restart. Also performs the focused/stable mode switches
    /// (those depend only on the mode clock, not on restarting).
    pub(crate) fn ema_wants_restart(&mut self, since_restart: u64) -> bool {
        if self.restart_stable {
            // Stable phase: long fixed intervals, phases double in
            // length each time stability recurs.
            if self.mode_conflicts >= 2 * self.stable_period {
                self.restart_stable = false;
                self.stable_period *= 2;
                self.mode_conflicts = 0;
                return true;
            }
            since_restart >= self.stable_period
        } else {
            if self.mode_conflicts >= FOCUSED_LEN {
                self.restart_stable = true;
                self.mode_conflicts = 0;
                return true;
            }
            since_restart >= MIN_RESTART_CONFLICTS && self.ema_fast > THRESHOLD * self.ema_slow
        }
    }
}
