//! A compact CDCL solver: two-watched literals, first-UIP clause learning,
//! VSIDS activities, phase saving and geometric restarts.
//!
//! The clause database is a single flat `u32` arena (splr/minisat style):
//! every clause is a `[len, lit0, lit1, ...]` block and a clause reference
//! is the `u32` offset of its header word. Watch lists index into the
//! arena, conflict analysis walks clause blocks in place, and the learnt-
//! clause and seen-marker scratch buffers are reused across conflicts, so
//! the steady-state solving loop performs no per-clause or per-conflict
//! heap allocation. The database persists across [`Solver::solve_with`]
//! calls, which is what makes batched assumption queries (the
//! plausibility sweep) cheap: one encoding, one arena, many verdicts.

use crate::{Lit, Var};

/// Sentinel clause reference: "no reason" / "no clause".
const NO_CLAUSE: u32 = u32::MAX;

/// The SAT solver.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Default)]
pub struct Solver {
    /// Flat clause arena: `[len, lit codes...]` blocks, problem and learnt
    /// clauses alike. A clause reference is the offset of its `len` word.
    arena: Vec<u32>,
    /// Number of clauses stored in the arena.
    n_clauses: usize,
    /// Watch lists indexed by literal code: clause refs watching that
    /// literal.
    watches: Vec<Vec<u32>>,
    /// Current assignment per variable.
    assign: Vec<Option<bool>>,
    /// Saved phase per variable.
    phase: Vec<bool>,
    /// Decision level per assigned variable.
    level: Vec<u32>,
    /// Reason clause ref per assigned variable (implied literals only).
    reason: Vec<u32>,
    /// Assignment trail and per-level start indices.
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Propagation queue head.
    qhead: usize,
    /// VSIDS activity and bump increment.
    activity: Vec<f64>,
    act_inc: f64,
    /// Set when an empty clause is added.
    unsat: bool,
    /// Conflict-analysis scratch: the learnt clause under construction
    /// (asserting literal first) and per-variable seen marks. Reused
    /// across conflicts; `seen` is all-false between analyses.
    learnt: Vec<Lit>,
    seen: Vec<bool>,
    /// Clause-construction scratch for [`Solver::add_clause`].
    add_tmp: Vec<Lit>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            act_inc: 1.0,
            ..Default::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(None);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(NO_CLAUSE);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new()); // positive literal
        self.watches.push(Vec::new()); // negative literal
        v
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (including learnt).
    pub fn n_clauses(&self) -> usize {
        self.n_clauses
    }

    /// Size of the flat clause arena in `u32` words (header words
    /// included) — the solver's whole clause-database footprint.
    pub fn arena_words(&self) -> usize {
        self.arena.len()
    }

    /// Appends a clause block for the literals in `self.add_tmp` /
    /// `self.learnt` semantics: caller passes the literal list through a
    /// field to keep borrows disjoint. Returns the clause ref and hooks
    /// the first two literals into the watch lists.
    fn attach_from(arena: &mut Vec<u32>, watches: &mut [Vec<u32>], lits: &[Lit]) -> u32 {
        debug_assert!(lits.len() >= 2, "unit clauses are enqueued, not stored");
        let cr = arena.len() as u32;
        arena.push(lits.len() as u32);
        for &l in lits {
            arena.push(l.code() as u32);
        }
        watches[lits[0].code()].push(cr);
        watches[lits[1].code()].push(cr);
        cr
    }

    /// Adds a clause. Duplicated literals are merged; tautologies are
    /// dropped; empty clauses make the instance trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called after a failed [`Solver::solve`] left assignments
    /// (call sites in this workspace always add clauses up front) or if a
    /// literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at decision level 0"
        );
        let mut c = std::mem::take(&mut self.add_tmp);
        c.clear();
        for &l in lits {
            assert!((l.var().0 as usize) < self.n_vars(), "unknown variable");
            if c.contains(&!l) {
                self.add_tmp = c;
                return; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        // Remove literals already false at level 0; satisfied clauses are
        // dropped.
        c.retain(|&l| self.lit_value(l) != Some(false));
        if c.iter().any(|&l| self.lit_value(l) == Some(true)) {
            self.add_tmp = c;
            return;
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], NO_CLAUSE) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                Self::attach_from(&mut self.arena, &mut self.watches, &c);
                self.n_clauses += 1;
            }
        }
        self.add_tmp = c;
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().0 as usize].map(|v| v ^ l.is_negative())
    }

    /// The model value of `v` after a successful [`Solver::solve`].
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assign[v.0 as usize]
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var().0 as usize;
                self.assign[v] = Some(!l.is_negative());
                self.phase[v] = !l.is_negative();
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause ref if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let falsified = !p;
            let falsified_code = falsified.code() as u32;
            let mut i = 0;
            // Take the watch list to sidestep aliasing; re-add survivors.
            let mut watchers = std::mem::take(&mut self.watches[falsified.code()]);
            while i < watchers.len() {
                let cr = watchers[i] as usize;
                // Ensure the falsified literal is at position 1.
                if self.arena[cr + 1] == falsified_code {
                    self.arena.swap(cr + 1, cr + 2);
                }
                let w0 = Lit::from_code(self.arena[cr + 1]);
                if self.lit_value(w0) == Some(true) {
                    i += 1;
                    continue; // clause satisfied; keep watching
                }
                // Look for a new literal to watch.
                let len = self.arena[cr] as usize;
                let mut moved = false;
                for k in 2..len {
                    let l = Lit::from_code(self.arena[cr + 1 + k]);
                    if self.lit_value(l) != Some(false) {
                        self.arena.swap(cr + 2, cr + 1 + k);
                        self.watches[l.code()].push(cr as u32);
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                if !self.enqueue(w0, cr as u32) {
                    // Conflict: restore remaining watchers.
                    self.watches[falsified.code()].append(&mut watchers);
                    self.qhead = self.trail.len();
                    return Some(cr as u32);
                }
                i += 1;
            }
            self.watches[falsified.code()].extend(watchers);
        }
        None
    }

    fn bump(&mut self, v: Var) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.act_inc;
        if *a > 1e100 {
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Fills `self.learnt` (asserting
    /// literal first) and returns the backjump level. The per-variable
    /// `seen` marks are restored to all-false before returning.
    fn analyze(&mut self, mut confl: u32) -> u32 {
        self.learnt.clear();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            let cr = confl as usize;
            let len = self.arena[cr] as usize;
            for k in 0..len {
                let q = Lit::from_code(self.arena[cr + 1 + k]);
                // Skip the implied literal whose reason we are expanding.
                if p == Some(q) {
                    continue;
                }
                let v = q.var().0 as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        self.learnt.push(q);
                    }
                }
            }
            // Find the next marked literal on the trail.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().0 as usize] {
                    break;
                }
            }
            let q = self.trail[idx];
            let v = q.var().0 as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                self.learnt.insert(0, !q);
                break;
            }
            p = Some(q);
            confl = self.reason[v];
            debug_assert_ne!(confl, NO_CLAUSE, "implied literal must have a reason");
        }
        // Restore the seen marks (non-asserting learnt literals are the
        // only ones still set: every current-level mark was consumed from
        // the trail above).
        let mut back = 0u32;
        for l in &self.learnt[1..] {
            let v = l.var().0 as usize;
            self.seen[v] = false;
            back = back.max(self.level[v]);
        }
        back
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.decision_level() > lvl {
            let start = self.trail_lim.pop().expect("level exists");
            while self.trail.len() > start {
                let l = self.trail.pop().expect("non-empty");
                let v = l.var().0 as usize;
                self.assign[v] = None;
                self.reason[v] = NO_CLAUSE;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.n_vars() {
            if self.assign[v].is_none() {
                let a = self.activity[v];
                if best.is_none_or(|(_, ba)| a > ba) {
                    best = Some((v, a));
                }
            }
        }
        best.map(|(v, _)| Lit::with_polarity(Var(v as u32), self.phase[v]))
    }

    /// Decides satisfiability. On `true`, a full model is available via
    /// [`Solver::value`].
    pub fn solve(&mut self) -> bool {
        self.solve_with(&[])
    }

    /// Decides satisfiability under assumptions (each forced true).
    ///
    /// The clause database (arena, watch lists, learnt clauses) is kept
    /// across calls, so a sequence of assumption queries over one
    /// encoding reuses all prior work.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return false;
        }
        // Assumption levels.
        for &a in assumptions {
            match self.lit_value(a) {
                Some(true) => continue,
                Some(false) => {
                    self.cancel_until(0);
                    return false;
                }
                None => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, NO_CLAUSE);
                    if self.propagate().is_some() {
                        self.cancel_until(0);
                        return false;
                    }
                }
            }
        }
        let assumption_level = self.decision_level();
        let mut conflicts_until_restart = 100u64;
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                if self.decision_level() <= assumption_level {
                    self.cancel_until(0);
                    if assumption_level == 0 {
                        self.unsat = true;
                    }
                    return false;
                }
                let back = self.analyze(confl).max(assumption_level);
                self.cancel_until(back);
                let assert_lit = self.learnt[0];
                if self.learnt.len() == 1 {
                    // Unit learnt clause: assert directly at the backjump
                    // level (level 0, or the assumption level).
                    let ok = self.enqueue(assert_lit, NO_CLAUSE);
                    debug_assert!(ok);
                } else {
                    let cr = Self::attach_from(&mut self.arena, &mut self.watches, &self.learnt);
                    self.n_clauses += 1;
                    let ok = self.enqueue(assert_lit, cr);
                    debug_assert!(ok);
                }
                self.act_inc *= 1.05;
                if conflicts >= conflicts_until_restart {
                    conflicts = 0;
                    conflicts_until_restart = (conflicts_until_restart * 3) / 2;
                    self.cancel_until(assumption_level);
                }
            } else {
                match self.decide() {
                    None => return true,
                    Some(d) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(d, NO_CLAUSE);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        assert_eq!(s.value(v[0]), Some(true));

        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert!(!s.solve());
    }

    #[test]
    fn unit_propagation_chain() {
        // x0 -> x1 -> x2 -> x3, with x0 asserted.
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        for w in v.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        for &x in &v {
            assert_eq!(s.value(x), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: vars p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for i in 0..3 {
            for j in 0..2 {
                p[i][j] = s.new_var();
            }
        }
        for i in 0..3 {
            s.add_clause(&[Lit::pos(p[i][0]), Lit::pos(p[i][1])]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn xor_chain_sat_with_model_check() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 = 1 ⇒ x2 = 1.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn assumptions_work_and_are_undone() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s.solve_with(&[Lit::neg(v[0])]));
        assert_eq!(s.value(v[1]), Some(true));
        // Contradictory assumptions: unsat under them, sat afterwards.
        assert!(!s.solve_with(&[Lit::neg(v[0]), Lit::neg(v[1])]));
        assert!(s.solve());
    }

    #[test]
    fn random_instances_match_brute_force() {
        // Deterministic pseudo-random 3-CNFs over 8 vars, cross-checked
        // against exhaustive enumeration.
        let mut state = 0x853C49E6748FEA9Bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..25 {
            let n_vars = 8usize;
            let n_clauses = 3 + (next() % 30) as usize;
            let mut clauses = Vec::new();
            for _ in 0..n_clauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % n_vars as u64) as u32;
                    let neg = next() & 1 == 1;
                    c.push(if neg {
                        Lit::neg(Var(v))
                    } else {
                        Lit::pos(Var(v))
                    });
                }
                clauses.push(c);
            }
            // Brute force.
            let brute = (0..(1u32 << n_vars)).any(|m| {
                clauses.iter().all(|c| {
                    c.iter().any(|l| {
                        let val = (m >> l.var().0) & 1 == 1;
                        val != l.is_negative()
                    })
                })
            });
            let mut s = Solver::new();
            for _ in 0..n_vars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve();
            assert_eq!(got, brute, "round {round}: clauses {clauses:?}");
            if got {
                // Model must satisfy all clauses.
                for c in &clauses {
                    assert!(
                        c.iter()
                            .any(|l| s.value(l.var()).expect("assigned") != l.is_negative()),
                        "model violates {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]); // tautology: ignored
        assert!(s.solve());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        s.add_clause(&[]);
        assert!(!s.solve());
    }

    #[test]
    fn arena_layout_matches_clause_count() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.n_clauses(), 2);
        // Two blocks: (1 header + 2 lits) + (1 header + 3 lits).
        assert_eq!(s.arena_words(), 3 + 4);
        assert!(s.solve());
    }

    #[test]
    fn learnt_clauses_grow_the_arena_only() {
        // A small unsat-core-rich instance: solving under failing
        // assumptions learns clauses into the same arena; the solver must
        // stay reusable afterwards.
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        for w in v.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        let before = s.arena_words();
        assert!(!s.solve_with(&[Lit::pos(v[0]), Lit::neg(v[5])]));
        assert!(s.solve_with(&[Lit::pos(v[0])]));
        assert_eq!(s.value(v[5]), Some(true));
        assert!(s.arena_words() >= before);
    }
}
