//! A compact CDCL solver: two-watched literals, first-UIP clause learning,
//! VSIDS activities, phase saving and geometric restarts.

use crate::{Lit, Var};

const INVALID: usize = usize::MAX;

/// The SAT solver.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Default)]
pub struct Solver {
    /// Clause database; learnt clauses are appended after problem clauses.
    clauses: Vec<Vec<Lit>>,
    /// Watch lists indexed by literal code: clauses watching that literal.
    watches: Vec<Vec<usize>>,
    /// Current assignment per variable.
    assign: Vec<Option<bool>>,
    /// Saved phase per variable.
    phase: Vec<bool>,
    /// Decision level per assigned variable.
    level: Vec<u32>,
    /// Reason clause per assigned variable (implied literals only).
    reason: Vec<usize>,
    /// Assignment trail and per-level start indices.
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Propagation queue head.
    qhead: usize,
    /// VSIDS activity and bump increment.
    activity: Vec<f64>,
    act_inc: f64,
    /// Set when an empty clause is added.
    unsat: bool,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            act_inc: 1.0,
            ..Default::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(None);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(INVALID);
        self.activity.push(0.0);
        self.watches.push(Vec::new()); // positive literal
        self.watches.push(Vec::new()); // negative literal
        v
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (including learnt).
    pub fn n_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause. Duplicated literals are merged; tautologies are
    /// dropped; empty clauses make the instance trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called after a failed [`Solver::solve`] left assignments
    /// (call sites in this workspace always add clauses up front) or if a
    /// literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at decision level 0"
        );
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!((l.var().0 as usize) < self.n_vars(), "unknown variable");
            if c.contains(&!l) {
                return; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        // Remove literals already false at level 0; satisfied clauses are
        // dropped.
        c.retain(|&l| self.lit_value(l) != Some(false));
        if c.iter().any(|&l| self.lit_value(l) == Some(true)) {
            return;
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], INVALID) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[c[0].code()].push(idx);
                self.watches[c[1].code()].push(idx);
                self.clauses.push(c);
            }
        }
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().0 as usize].map(|v| v ^ l.is_negative())
    }

    /// The model value of `v` after a successful [`Solver::solve`].
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assign[v.0 as usize]
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: usize) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var().0 as usize;
                self.assign[v] = Some(!l.is_negative());
                self.phase[v] = !l.is_negative();
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let falsified = !p;
            let mut i = 0;
            // Take the watch list to sidestep aliasing; re-add survivors.
            let mut watchers = std::mem::take(&mut self.watches[falsified.code()]);
            while i < watchers.len() {
                let ci = watchers[i];
                // Ensure the falsified literal is at position 1.
                if self.clauses[ci][0] == falsified {
                    self.clauses[ci].swap(0, 1);
                }
                let w0 = self.clauses[ci][0];
                if self.lit_value(w0) == Some(true) {
                    i += 1;
                    continue; // clause satisfied; keep watching
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    let l = self.clauses[ci][k];
                    if self.lit_value(l) != Some(false) {
                        self.clauses[ci].swap(1, k);
                        self.watches[l.code()].push(ci);
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                if !self.enqueue(w0, ci) {
                    // Conflict: restore remaining watchers.
                    self.watches[falsified.code()].append(&mut watchers);
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[falsified.code()].extend(watchers);
        }
        None
    }

    fn bump(&mut self, v: Var) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.act_inc;
        if *a > 1e100 {
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.n_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            let clause = self.clauses[confl].clone();
            for &q in clause.iter() {
                // Skip the implied literal whose reason we are expanding.
                if p == Some(q) {
                    continue;
                }
                let v = q.var().0 as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next marked literal on the trail.
            loop {
                idx -= 1;
                if seen[self.trail[idx].var().0 as usize] {
                    break;
                }
            }
            let q = self.trail[idx];
            let v = q.var().0 as usize;
            seen[v] = false;
            counter -= 1;
            if counter == 0 {
                learnt.insert(0, !q);
                break;
            }
            p = Some(q);
            confl = self.reason[v];
            debug_assert_ne!(confl, INVALID, "implied literal must have a reason");
        }
        let back_level = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .max()
            .unwrap_or(0);
        (learnt, back_level)
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.decision_level() > lvl {
            let start = self.trail_lim.pop().expect("level exists");
            while self.trail.len() > start {
                let l = self.trail.pop().expect("non-empty");
                let v = l.var().0 as usize;
                self.assign[v] = None;
                self.reason[v] = INVALID;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.n_vars() {
            if self.assign[v].is_none() {
                let a = self.activity[v];
                if best.is_none_or(|(_, ba)| a > ba) {
                    best = Some((v, a));
                }
            }
        }
        best.map(|(v, _)| Lit::with_polarity(Var(v as u32), self.phase[v]))
    }

    /// Decides satisfiability. On `true`, a full model is available via
    /// [`Solver::value`].
    pub fn solve(&mut self) -> bool {
        self.solve_with(&[])
    }

    /// Decides satisfiability under assumptions (each forced true).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return false;
        }
        // Assumption levels.
        for &a in assumptions {
            match self.lit_value(a) {
                Some(true) => continue,
                Some(false) => {
                    self.cancel_until(0);
                    return false;
                }
                None => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, INVALID);
                    if self.propagate().is_some() {
                        self.cancel_until(0);
                        return false;
                    }
                }
            }
        }
        let assumption_level = self.decision_level();
        let mut conflicts_until_restart = 100u64;
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                if self.decision_level() <= assumption_level {
                    self.cancel_until(0);
                    if assumption_level == 0 {
                        self.unsat = true;
                    }
                    return false;
                }
                let (learnt, back) = self.analyze(confl);
                let back = back.max(assumption_level);
                self.cancel_until(back);
                let assert_lit = learnt[0];
                if learnt.len() == 1 {
                    // Unit learnt clause: assert directly at the backjump
                    // level (level 0, or the assumption level).
                    let ok = self.enqueue(assert_lit, INVALID);
                    debug_assert!(ok);
                } else {
                    let idx = self.clauses.len();
                    self.watches[learnt[0].code()].push(idx);
                    self.watches[learnt[1].code()].push(idx);
                    self.clauses.push(learnt);
                    let ok = self.enqueue(assert_lit, idx);
                    debug_assert!(ok);
                }
                self.act_inc *= 1.05;
                if conflicts >= conflicts_until_restart {
                    conflicts = 0;
                    conflicts_until_restart = (conflicts_until_restart * 3) / 2;
                    self.cancel_until(assumption_level);
                }
            } else {
                match self.decide() {
                    None => return true,
                    Some(d) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(d, INVALID);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        assert_eq!(s.value(v[0]), Some(true));

        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert!(!s.solve());
    }

    #[test]
    fn unit_propagation_chain() {
        // x0 -> x1 -> x2 -> x3, with x0 asserted.
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        for w in v.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        for &x in &v {
            assert_eq!(s.value(x), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: vars p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for i in 0..3 {
            for j in 0..2 {
                p[i][j] = s.new_var();
            }
        }
        for i in 0..3 {
            s.add_clause(&[Lit::pos(p[i][0]), Lit::pos(p[i][1])]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn xor_chain_sat_with_model_check() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 = 1 ⇒ x2 = 1.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn assumptions_work_and_are_undone() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s.solve_with(&[Lit::neg(v[0])]));
        assert_eq!(s.value(v[1]), Some(true));
        // Contradictory assumptions: unsat under them, sat afterwards.
        assert!(!s.solve_with(&[Lit::neg(v[0]), Lit::neg(v[1])]));
        assert!(s.solve());
    }

    #[test]
    fn random_instances_match_brute_force() {
        // Deterministic pseudo-random 3-CNFs over 8 vars, cross-checked
        // against exhaustive enumeration.
        let mut state = 0x853C49E6748FEA9Bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..25 {
            let n_vars = 8usize;
            let n_clauses = 3 + (next() % 30) as usize;
            let mut clauses = Vec::new();
            for _ in 0..n_clauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % n_vars as u64) as u32;
                    let neg = next() & 1 == 1;
                    c.push(if neg {
                        Lit::neg(Var(v))
                    } else {
                        Lit::pos(Var(v))
                    });
                }
                clauses.push(c);
            }
            // Brute force.
            let brute = (0..(1u32 << n_vars)).any(|m| {
                clauses.iter().all(|c| {
                    c.iter().any(|l| {
                        let val = (m >> l.var().0) & 1 == 1;
                        val != l.is_negative()
                    })
                })
            });
            let mut s = Solver::new();
            for _ in 0..n_vars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve();
            assert_eq!(got, brute, "round {round}: clauses {clauses:?}");
            if got {
                // Model must satisfy all clauses.
                for c in &clauses {
                    assert!(
                        c.iter()
                            .any(|l| s.value(l.var()).expect("assigned") != l.is_negative()),
                        "model violates {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]); // tautology: ignored
        assert!(s.solve());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        s.add_clause(&[]);
        assert!(!s.solve());
    }
}
