//! A compact CDCL solver: two-watched literals, first-UIP clause learning,
//! VSIDS activities, phase saving and geometric restarts.
//!
//! The clause database is a single flat `u32` arena (splr/minisat style):
//! every clause is a `[len, lit0, lit1, ...]` block and a clause reference
//! is the `u32` offset of its header word. Watch lists index into the
//! arena, conflict analysis walks clause blocks in place, and the learnt-
//! clause and seen-marker scratch buffers are reused across conflicts, so
//! the steady-state solving loop performs no per-clause or per-conflict
//! heap allocation. The database persists across [`Solver::solve_with`]
//! calls, which is what makes batched assumption queries (the
//! plausibility sweep) cheap: one encoding, one arena, many verdicts.
//!
//! Two further mechanisms keep long query sequences fast and bounded:
//!
//! * **Order-heap decisions** — unassigned variables live in a binary
//!   max-heap keyed on VSIDS activity ([`VarOrder`]), so picking a
//!   decision variable is `O(log n)` instead of an `O(n)` activity scan.
//!   Ties break toward the lowest variable index, which makes the heap
//!   pick *exactly* the variable the linear scan would, so verdicts,
//!   models and the whole search trajectory are identical in both modes
//!   (see [`Solver::set_decision_heap`]).
//! * **Learnt-DB reduction** — learnt clauses carry an activity and an
//!   LBD (literal block distance) in arrays parallel to the arena. When
//!   the learnt count passes a (configurable) threshold, [`reduce_db`]
//!   drops the cold half, compacts the arena in place and remaps every
//!   clause reference in the watch lists and reason array, so arena
//!   growth stays bounded across arbitrarily long sweeps.
//!
//! [`reduce_db`]: Solver::set_learnt_limit

use crate::{Lit, Var};

/// Sentinel clause reference: "no reason" / "no clause".
pub(crate) const NO_CLAUSE: u32 = u32::MAX;

/// Sentinel heap position: "not in the heap".
const NOT_IN_HEAP: u32 = u32::MAX;

/// A binary max-heap of variables keyed on VSIDS activity — the
/// minisat-style variable order. `heap` holds variable indices in heap
/// order; `index[v]` is `v`'s position in `heap` (or [`NOT_IN_HEAP`]).
///
/// The comparison is total: higher activity wins, and equal activities
/// break toward the lower variable index. That tie-break makes the heap's
/// pop order agree exactly with a linear "first maximum" activity scan,
/// which keeps solver runs reproducible and mode-independent.
#[derive(Debug, Clone, Default)]
pub(crate) struct VarOrder {
    heap: Vec<u32>,
    index: Vec<u32>,
}

impl VarOrder {
    /// `true` iff `a` is strictly preferred over `b` as the next decision.
    #[inline]
    fn better(act: &[f64], a: u32, b: u32) -> bool {
        let (aa, ab) = (act[a as usize], act[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    /// Registers a new variable slot (not yet in the heap).
    fn push_slot(&mut self) {
        self.index.push(NOT_IN_HEAP);
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.index[v as usize] != NOT_IN_HEAP
    }

    /// Inserts `v` unless it is already present.
    fn insert(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v);
        self.index[v as usize] = i as u32;
        self.sift_up(i, act);
    }

    /// Restores the heap property upward from position `i`.
    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let p = (i - 1) / 2;
            let pv = self.heap[p];
            if Self::better(act, v, pv) {
                self.heap[i] = pv;
                self.index[pv as usize] = i as u32;
                i = p;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.index[v as usize] = i as u32;
    }

    /// Restores the heap property downward from position `i`.
    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        let len = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let c = if r < len && Self::better(act, self.heap[r], self.heap[l]) {
                r
            } else {
                l
            };
            let cv = self.heap[c];
            if Self::better(act, cv, v) {
                self.heap[i] = cv;
                self.index[cv as usize] = i as u32;
                i = c;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.index[v as usize] = i as u32;
    }

    /// Removes and returns the best variable, or `None` when empty.
    fn pop(&mut self, act: &[f64]) -> Option<u32> {
        let v = *self.heap.first()?;
        self.index[v as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("checked non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(v)
    }

    /// Re-establishes `v`'s position after its activity *increased*.
    #[inline]
    fn update(&mut self, v: u32, act: &[f64]) {
        let i = self.index[v as usize];
        if i != NOT_IN_HEAP {
            self.sift_up(i as usize, act);
        }
    }
}

/// The two-watched-literal occurrence lists, flattened into one CSR-style
/// pool: list `c` (a literal code) occupies `data[start[c]..start[c] +
/// len[c]]` with `cap[c]` slots reserved. A list that outgrows its
/// capacity relocates to the end of the pool with doubled capacity (its
/// old slots become dead words, reclaimed by [`WatchLists::retain_map`]'s
/// compaction pass, which the learnt-DB reduction already runs).
///
/// Flattening matters for [`Solver::clone_db`]: the pre-CSR
/// `Vec<Vec<u32>>` needed one heap allocation per literal (two per
/// variable) on every clone, which dominated sharded-sweep worker
/// startup; the CSR block clones as a strict handful of `memcpy`s. The
/// baseline representation is retained behind [`Solver::set_watch_csr`]
/// for equivalence tests and benches — both modes keep identical
/// per-list orders and traversal, so verdicts *and* models are
/// bit-identical.
#[derive(Debug, Clone)]
pub(crate) struct WatchLists {
    /// `true` (default): flat CSR pool. `false`: per-literal `Vec`s.
    csr: bool,
    /// Flat pool (CSR mode).
    data: Vec<u32>,
    /// Per-list offsets, live lengths and reserved capacities, indexed by
    /// literal code.
    start: Vec<u32>,
    len: Vec<u32>,
    cap: Vec<u32>,
    /// Baseline representation (`csr == false`).
    lists: Vec<Vec<u32>>,
    /// Compaction scratch, reused across passes.
    compact_tmp: Vec<u32>,
    /// Slack (percent of kept entries) reserved per list by compaction;
    /// see [`Solver::set_watch_slack`].
    pub(crate) slack_pct: u32,
}

impl WatchLists {
    fn new() -> Self {
        WatchLists {
            csr: true,
            data: Vec::new(),
            start: Vec::new(),
            len: Vec::new(),
            cap: Vec::new(),
            lists: Vec::new(),
            compact_tmp: Vec::new(),
            slack_pct: 50,
        }
    }

    /// Approximate heap bytes of the watch structures (pool or per-list
    /// vectors, plus the offset arrays).
    fn pool_bytes(&self) -> usize {
        let word = std::mem::size_of::<u32>();
        let lists: usize = if self.csr {
            self.data.len() * word
        } else {
            self.lists.iter().map(|l| l.len() * word).sum()
        };
        lists + (self.start.len() + self.len.len() + self.cap.len()) * word
    }

    /// Registers one new (empty) list. The CSR offset arrays are the
    /// source of truth for the list count; the baseline `lists` vector
    /// is only materialized while Vec mode is active, so the default
    /// (CSR) configuration carries — and clones — no per-list `Vec`
    /// headers at all.
    fn push_list(&mut self) {
        self.start.push(0);
        self.len.push(0);
        self.cap.push(0);
        if !self.csr {
            self.lists.push(Vec::new());
        }
    }

    /// Switches between the CSR pool (`true`) and the per-literal `Vec`
    /// baseline, converting the current contents in place. Both modes
    /// preserve list order exactly.
    fn set_csr(&mut self, enabled: bool) {
        if enabled == self.csr {
            return;
        }
        if enabled {
            self.data.clear();
            for c in 0..self.start.len() {
                self.start[c] = self.data.len() as u32;
                self.len[c] = self.lists[c].len() as u32;
                self.cap[c] = self.lists[c].len() as u32;
                self.data.extend_from_slice(&self.lists[c]);
            }
            // Drop the baseline representation entirely: CSR mode keeps
            // no per-list heap allocations.
            self.lists = Vec::new();
        } else {
            self.lists.resize_with(self.start.len(), Vec::new);
            for c in 0..self.start.len() {
                let s = self.start[c] as usize;
                let l = self.len[c] as usize;
                self.lists[c].clear();
                self.lists[c].extend_from_slice(&self.data[s..s + l]);
                self.len[c] = 0;
                self.cap[c] = 0;
                self.start[c] = 0;
            }
            self.data.clear();
        }
        self.csr = enabled;
    }

    #[inline]
    pub(crate) fn len_of(&self, code: usize) -> usize {
        if self.csr {
            self.len[code] as usize
        } else {
            self.lists[code].len()
        }
    }

    #[inline]
    pub(crate) fn get(&self, code: usize, i: usize) -> u32 {
        if self.csr {
            debug_assert!(i < self.len[code] as usize);
            self.data[self.start[code] as usize + i]
        } else {
            self.lists[code][i]
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, code: usize, cr: u32) {
        if !self.csr {
            self.lists[code].push(cr);
            return;
        }
        if self.len[code] == self.cap[code] {
            // Relocate to the end of the pool with doubled capacity; the
            // old slots become dead words. Other lists' offsets are
            // untouched, so relocation is safe mid-propagation.
            let new_cap = (self.cap[code] * 2).max(4);
            let new_start = self.data.len() as u32;
            let s = self.start[code] as usize;
            let l = self.len[code] as usize;
            self.data.extend_from_within(s..s + l);
            self.data.resize(new_start as usize + new_cap as usize, 0);
            self.start[code] = new_start;
            self.cap[code] = new_cap;
        }
        self.data[(self.start[code] + self.len[code]) as usize] = cr;
        self.len[code] += 1;
    }

    #[inline]
    pub(crate) fn swap_remove(&mut self, code: usize, i: usize) {
        if self.csr {
            let s = self.start[code] as usize;
            let last = self.len[code] as usize - 1;
            self.data.swap(s + i, s + last);
            self.len[code] = last as u32;
        } else {
            self.lists[code].swap_remove(i);
        }
    }

    /// Applies `f` to every stored clause ref: `None` drops the entry,
    /// `Some(r)` rewrites it. In CSR mode the pool is compacted
    /// afterwards (this runs from the learnt-DB reduction, the natural
    /// point to reclaim relocation garbage). Each non-empty list keeps
    /// `slack_pct`% slack capacity (default 50): propagation moves
    /// watches on the very next conflict, and compacting *tight* would
    /// force every first push to relocate its list to the pool end —
    /// undoing the compaction immediately.
    pub(crate) fn retain_map(&mut self, mut f: impl FnMut(u32) -> Option<u32>) {
        if !self.csr {
            for wl in &mut self.lists {
                wl.retain_mut(|r| match f(*r) {
                    Some(nr) => {
                        *r = nr;
                        true
                    }
                    None => false,
                });
            }
            return;
        }
        let mut pool = std::mem::take(&mut self.compact_tmp);
        pool.clear();
        for c in 0..self.start.len() {
            let s = self.start[c] as usize;
            let l = self.len[c] as usize;
            self.start[c] = pool.len() as u32;
            for i in 0..l {
                if let Some(r) = f(self.data[s + i]) {
                    pool.push(r);
                }
            }
            let kept = pool.len() as u32 - self.start[c];
            let cap = if kept == 0 {
                0
            } else {
                kept + kept * self.slack_pct / 100 + 1
            };
            pool.resize(self.start[c] as usize + cap as usize, 0);
            self.len[c] = kept;
            self.cap[c] = cap;
        }
        self.compact_tmp = std::mem::replace(&mut self.data, pool);
    }
}

/// The SAT solver.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Flat clause arena: `[len, lit codes...]` blocks, problem and learnt
    /// clauses alike. A clause reference is the offset of its `len` word.
    pub(crate) arena: Vec<u32>,
    /// Number of clauses stored in the arena.
    pub(crate) n_clauses: usize,
    /// Watch lists indexed by literal code: clause refs watching that
    /// literal, flattened into a CSR pool (see [`WatchLists`]).
    pub(crate) watches: WatchLists,
    /// Current assignment per variable.
    pub(crate) assign: Vec<Option<bool>>,
    /// Saved phase per variable.
    pub(crate) phase: Vec<bool>,
    /// Decision level per assigned variable.
    pub(crate) level: Vec<u32>,
    /// Reason clause ref per assigned variable (implied literals only).
    pub(crate) reason: Vec<u32>,
    /// Assignment trail and per-level start indices.
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    /// Propagation queue head.
    pub(crate) qhead: usize,
    /// VSIDS activity and bump increment.
    pub(crate) activity: Vec<f64>,
    pub(crate) act_inc: f64,
    /// Activity-ordered decision heap; contains a superset of the
    /// unassigned variables (assigned entries are skipped lazily).
    pub(crate) order: VarOrder,
    /// When `false`, [`Solver::decide`] falls back to the pre-heap linear
    /// activity scan (kept as a baseline for benches and equivalence
    /// tests; both modes pick identical decision variables).
    pub(crate) use_heap: bool,
    /// Learnt-clause refs in ascending arena order, with activity, LBD
    /// and tier in parallel arrays — the metadata `reduce_db` ranks by.
    pub(crate) learnt_refs: Vec<u32>,
    pub(crate) learnt_act: Vec<f64>,
    pub(crate) learnt_lbd: Vec<u32>,
    /// Learnt tier per clause: 0 = core (learn-time LBD ≤ 2, never
    /// dropped), 1 = mid, 2 = local. Maintained in every mode so
    /// toggling tiered reduction mid-life stays deterministic; only
    /// consulted when [`Solver::set_reduce_tiered`] is on.
    pub(crate) learnt_tier: Vec<u8>,
    /// Learnt-clause activity bump increment.
    pub(crate) cla_inc: f64,
    /// User learnt cap (`0` = adaptive) and the current reduce threshold.
    pub(crate) learnt_limit: usize,
    pub(crate) max_learnts: usize,
    /// Completed `reduce_db` passes.
    pub(crate) n_reductions: u64,
    /// LBD computation scratch: per-level stamps and the current stamp key.
    pub(crate) lbd_stamp: Vec<u64>,
    pub(crate) lbd_key: u64,
    /// Set when an empty clause is added.
    pub(crate) unsat: bool,
    /// When `true`, restarts follow the Luby sequence (with rare random
    /// phase flips on stagnation) instead of the default geometric
    /// schedule. Opt-in via [`Solver::set_restart_luby`]; either mode
    /// yields the same verdicts, only the search trajectory differs.
    pub(crate) luby_restarts: bool,
    /// Deterministic xorshift state for the stagnation phase flips
    /// (advanced only in Luby mode, cloned with the solver).
    pub(crate) rng: u64,
    /// Conflict-analysis scratch: the learnt clause under construction
    /// (asserting literal first) and per-variable seen marks. Reused
    /// across conflicts; `seen` is all-false between analyses.
    pub(crate) learnt: Vec<Lit>,
    pub(crate) seen: Vec<bool>,
    /// Clause-construction scratch for [`Solver::add_clause`].
    pub(crate) add_tmp: Vec<Lit>,
    /// Arena-compaction scratch (dead clause refs and the word-shift
    /// prefix sums), reused across reductions.
    pub(crate) dead_refs: Vec<u32>,
    pub(crate) dead_shift: Vec<u32>,
    pub(crate) rank_tmp: Vec<u32>,
    /// Live problem (non-learnt) clause refs in ascending arena order —
    /// the iteration index vivification and variable elimination walk.
    /// Kept in lockstep with the arena by `add_clause` and compaction.
    pub(crate) clause_refs: Vec<u32>,
    /// Arena blocks logically removed (vivified-away clauses, eliminated
    /// occurrences, shrink gaps) but not yet compacted out. Reclaimed by
    /// the next `reduce_db` or [`Solver::simplify`] compaction pass.
    pub(crate) dead_problem: Vec<u32>,
    /// Per-variable interface marks: frozen variables are never
    /// eliminated (see [`Solver::set_frozen`]).
    pub(crate) frozen: Vec<bool>,
    /// Per-variable elimination marks: eliminated variables are excluded
    /// from decisions and reconstructed on SAT (see `eliminate`).
    pub(crate) eliminated: Vec<bool>,
    /// Saved `[len, lit codes...]` blocks of every clause removed by
    /// variable elimination — the input of model reconstruction.
    pub(crate) elim_clauses: Vec<u32>,
    /// One `(var, start, end)` span into `elim_clauses` per eliminated
    /// variable, in elimination order; reconstruction walks it in
    /// reverse.
    pub(crate) elim_trail: Vec<(u32, u32, u32)>,
    /// Occurrence lists by literal code, built (and torn down) by each
    /// elimination round; retained as a field so its footprint shows up
    /// in [`Solver::db_bytes`].
    pub(crate) occ: Vec<Vec<u32>>,
    /// Inprocessing toggles — all default on; each is bit-identical to
    /// the pre-inprocessing solver when disabled.
    pub(crate) vivify_enabled: bool,
    pub(crate) bve_enabled: bool,
    pub(crate) ema_restarts: bool,
    pub(crate) tiered_reduce: bool,
    /// Fast/slow LBD exponential moving averages and the stabilizing
    /// restart mode state (see `restart.rs`). Cloned with the solver so
    /// sharded sweeps stay deterministic.
    pub(crate) ema_fast: f64,
    pub(crate) ema_slow: f64,
    pub(crate) restart_stable: bool,
    pub(crate) mode_conflicts: u64,
    pub(crate) stable_period: u64,
    /// In-solve vivification pacing: restarts until the next budgeted
    /// pass, and the rotating cursor into `clause_refs`.
    pub(crate) vivify_countdown: u32,
    pub(crate) vivify_head: usize,
    /// Simplification statistics (see [`Solver::simplify_stats`]).
    pub(crate) n_vivified: u64,
    pub(crate) n_eliminated: u64,
    pub(crate) stat_clauses_removed: u64,
    pub(crate) stat_literals_removed: u64,
    /// Vivification scratch (current clause literals), reused.
    pub(crate) viv_tmp: Vec<Lit>,
}

/// Counters describing the work pre/inprocessing has done on a solver:
/// vivified (shrunk) clauses, eliminated variables, learnt-DB
/// reductions, and the clauses/literals removed overall. Purely
/// observational — reading them never affects solving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Clauses shrunk or strengthened by vivification.
    pub n_vivified: u64,
    /// Variables removed by bounded variable elimination.
    pub n_eliminated: u64,
    /// Completed learnt-DB reduction passes.
    pub n_reductions: u64,
    /// Problem clauses removed outright (vivified down to units, or
    /// replaced by elimination resolvents; resolvents added back are
    /// not netted out).
    pub clauses_removed: u64,
    /// Literals removed from surviving problem clauses.
    pub literals_removed: u64,
}

impl Default for Solver {
    /// Identical to [`Solver::new`] — the non-zero activity increments
    /// and the heap decision mode are part of the default state, so a
    /// `Default`-constructed solver is never silently slower.
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            arena: Vec::new(),
            n_clauses: 0,
            watches: WatchLists::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            order: VarOrder::default(),
            use_heap: true,
            learnt_refs: Vec::new(),
            learnt_act: Vec::new(),
            learnt_lbd: Vec::new(),
            learnt_tier: Vec::new(),
            cla_inc: 1.0,
            learnt_limit: 0,
            max_learnts: 0,
            n_reductions: 0,
            lbd_stamp: Vec::new(),
            lbd_key: 0,
            unsat: false,
            luby_restarts: false,
            rng: 0x9E37_79B9_7F4A_7C15,
            learnt: Vec::new(),
            seen: Vec::new(),
            add_tmp: Vec::new(),
            dead_refs: Vec::new(),
            dead_shift: Vec::new(),
            rank_tmp: Vec::new(),
            clause_refs: Vec::new(),
            dead_problem: Vec::new(),
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_clauses: Vec::new(),
            elim_trail: Vec::new(),
            occ: Vec::new(),
            vivify_enabled: true,
            bve_enabled: true,
            ema_restarts: true,
            tiered_reduce: true,
            ema_fast: 0.0,
            ema_slow: 0.0,
            restart_stable: false,
            mode_conflicts: 0,
            stable_period: crate::restart::STABLE_PERIOD_INIT,
            vivify_countdown: crate::vivify::RESTART_PERIOD,
            vivify_head: 0,
            n_vivified: 0,
            n_eliminated: 0,
            stat_clauses_removed: 0,
            stat_literals_removed: 0,
            viv_tmp: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(None);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(NO_CLAUSE);
        self.activity.push(0.0);
        self.seen.push(false);
        self.lbd_stamp.push(0);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.push_list(); // positive literal
        self.watches.push_list(); // negative literal
        self.order.push_slot();
        self.order.insert(v.0, &self.activity);
        v
    }

    /// Chooses between the order-heap (default) and the baseline linear
    /// activity scan for decision-variable selection. Both modes pick the
    /// identical variable at every decision (the heap's tie-break mirrors
    /// the scan's "first maximum" rule), so this only changes the cost
    /// per decision, never a verdict or model.
    pub fn set_decision_heap(&mut self, enabled: bool) {
        if enabled && !self.use_heap {
            // The heap may have gone stale while unused; re-insert every
            // unassigned variable (inserts are no-ops for present vars).
            for v in 0..self.assign.len() {
                if self.assign[v].is_none() {
                    self.order.insert(v as u32, &self.activity);
                }
            }
        }
        self.use_heap = enabled;
    }

    /// Chooses between the flat CSR watch-list pool (default) and the
    /// baseline per-literal `Vec<Vec<u32>>` representation, converting
    /// the current contents in place. Both representations keep identical
    /// list orders and traversal, so verdicts, models and the whole
    /// search trajectory are bit-identical — the CSR pool only changes
    /// the memory layout (and makes [`Solver::clone_db`] a strict
    /// handful of `memcpy`s instead of two heap allocations per
    /// variable).
    pub fn set_watch_csr(&mut self, enabled: bool) {
        self.watches.set_csr(enabled);
    }

    /// Resets every saved phase to the initial polarity (`false`).
    ///
    /// Phase saving is a per-*query* heuristic: the polarities a long
    /// UNSAT proof settles into are tuned to refuting *that* candidate,
    /// and letting them leak into the next assumption query of a
    /// plausibility sweep steers the new search toward the old
    /// candidate's corner of the space. Sweeps call this between
    /// candidates; verdicts are unaffected (they are mathematically
    /// determined), only the search trajectory changes.
    pub fn reset_phases(&mut self) {
        self.phase.fill(false);
    }

    /// Opts into Luby restarts: restart intervals follow the Luby
    /// sequence (unit 64 conflicts) instead of the default geometric
    /// schedule, and on stagnation — several restarts without the trail
    /// reaching a new high-water mark — a rare random subset of saved
    /// phases is flipped (deterministic xorshift, cloned with the
    /// solver) to kick the search out of a rut. Both schedules decide
    /// the same verdicts; the adversarial UNSAT instances red-team
    /// sweeps produce are where the Luby schedule's frequent short runs
    /// help.
    pub fn set_restart_luby(&mut self, enabled: bool) {
        self.luby_restarts = enabled;
    }

    /// Toggles clause vivification (default on): candidate problem
    /// clauses are re-propagated literal by literal and shrunk in the
    /// flat arena, during [`Solver::simplify`] and — on a deterministic
    /// budget — at assumption-free restart boundaries. Disabled, the
    /// solver is bit-identical to the pre-vivification code path
    /// (verdicts *and* models).
    pub fn set_vivify(&mut self, enabled: bool) {
        self.vivify_enabled = enabled;
    }

    /// Toggles bounded variable elimination (default on): during
    /// [`Solver::simplify`], unfrozen variables whose resolvent count
    /// does not exceed their occurrence count are resolved away.
    /// Eliminated variables are excluded from decisions and receive
    /// model reconstruction on every SAT answer, so the incremental
    /// assumption API stays sound. Freeze every variable the caller
    /// will assume on or read back (see [`Solver::set_frozen`]).
    /// Disabled, the solver is bit-identical to the pre-BVE code path.
    pub fn set_eliminate(&mut self, enabled: bool) {
        self.bve_enabled = enabled;
    }

    /// Toggles EMA-driven stabilizing restarts (default on): fast/slow
    /// exponential moving averages of learnt-clause LBD drive agile
    /// restarts, alternating with geometrically growing stable phases
    /// that let phase saving settle. [`Solver::set_restart_luby`] takes
    /// precedence when both are on. Disabled (and with Luby off), the
    /// geometric schedule runs bit-identically to the baseline.
    pub fn set_restart_ema(&mut self, enabled: bool) {
        self.ema_restarts = enabled;
    }

    /// Toggles tiered learnt-clause management (default on): learnts are
    /// tiered core (learn-time LBD ≤ 2, never dropped) / mid / local,
    /// locals are promoted to mid when they keep producing conflicts,
    /// and `reduce_db` drops locals before mids instead of ranking the
    /// whole DB by LBD alone. Disabled, reduction ranks exactly as the
    /// baseline — bit-identical verdicts and models.
    pub fn set_reduce_tiered(&mut self, enabled: bool) {
        self.tiered_reduce = enabled;
    }

    /// Marks `v` as frozen (or unfreezes it). Frozen variables are never
    /// eliminated; callers must freeze every variable that crosses the
    /// solver boundary — Tseitin interface outputs, assumption variables
    /// and key/config variables — before calling [`Solver::simplify`].
    pub fn set_frozen(&mut self, v: Var, frozen: bool) {
        self.frozen[v.0 as usize] = frozen;
    }

    /// `true` iff `v` has been removed by variable elimination. Its
    /// value is still reconstructed on every SAT answer.
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.0 as usize]
    }

    /// Sets the slack (in percent of the kept entries) that watch-pool
    /// compaction reserves per list; default 50. `0` compacts tight —
    /// smallest pool, but the next watch push relocates the list to the
    /// pool end, undoing the compaction. Purely a memory-layout knob:
    /// verdicts, models and the whole search trajectory are unaffected.
    pub fn set_watch_slack(&mut self, pct: u32) {
        self.watches.slack_pct = pct;
    }

    /// The pre/inprocessing counters of this solver (monotone over its
    /// lifetime, carried across [`Solver::clone_db`]).
    pub fn simplify_stats(&self) -> SimplifyStats {
        SimplifyStats {
            n_vivified: self.n_vivified,
            n_eliminated: self.n_eliminated,
            n_reductions: self.n_reductions,
            clauses_removed: self.stat_clauses_removed,
            literals_removed: self.stat_literals_removed,
        }
    }

    /// Pre/inprocessing entry point: at decision level 0, runs an
    /// exhaustive vivification pass and a bounded-variable-elimination
    /// round (each only if its toggle is on), then compacts the arena
    /// over everything removed. Returns `false` iff the instance was
    /// proven unsatisfiable.
    ///
    /// Call once after encoding and, optionally, between query batches;
    /// **freeze the interface first** (see [`Solver::set_frozen`]).
    /// Every simplification is deterministic and verdict-preserving:
    /// vivification keeps the formula equivalent, elimination keeps it
    /// equisatisfiable with model reconstruction on every SAT answer,
    /// so callers observe identical verdicts and satisfying models
    /// either way.
    pub fn simplify(&mut self) -> bool {
        if self.unsat {
            return false;
        }
        self.clear_reconstructed();
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return false;
        }
        if self.vivify_enabled {
            self.vivify_round(usize::MAX);
            if self.unsat {
                return false;
            }
        }
        if self.bve_enabled {
            self.eliminate_round();
            if self.unsat {
                return false;
            }
        }
        if !self.dead_problem.is_empty() {
            let mut dead = std::mem::take(&mut self.dead_refs);
            dead.clear();
            dead.append(&mut self.dead_problem);
            dead.sort_unstable();
            self.dead_refs = dead;
            self.compact_arena();
        }
        true
    }

    /// Caps the learnt-clause count: once more than `limit` learnt
    /// clauses are live, the solver runs [`reduce_db`] (dropping the cold
    /// half and compacting the arena) instead of growing the database
    /// further. `0` (the default) selects an adaptive threshold that
    /// starts near `n_clauses / 3` and grows geometrically.
    ///
    /// Glue clauses (LBD ≤ 2) and clauses locked as reasons are always
    /// kept, so the live count can sit slightly above the cap.
    ///
    /// [`reduce_db`]: Solver::set_learnt_limit
    pub fn set_learnt_limit(&mut self, limit: usize) {
        self.learnt_limit = limit;
        self.max_learnts = 0; // re-derive on the next solve
    }

    /// Number of live learnt clauses.
    pub fn n_learnts(&self) -> usize {
        self.learnt_refs.len()
    }

    /// Number of completed learnt-DB reductions.
    pub fn n_reductions(&self) -> u64 {
        self.n_reductions
    }

    /// A snapshot of the whole solver — clause arena, watch lists, VSIDS
    /// state and learnt metadata. The flat clause arena *and* the flat
    /// CSR watch pool make this a strict handful of `memcpy`s (no
    /// per-literal allocations); sharded sweeps clone one encoded solver
    /// per worker and query the clones independently (see
    /// `mvf_attack::plausibility_sweep_sharded` and
    /// `mvf_attack::plausibility_sweep_any_io_sharded`).
    pub fn clone_db(&self) -> Solver {
        self.clone()
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (including learnt).
    pub fn n_clauses(&self) -> usize {
        self.n_clauses
    }

    /// Size of the flat clause arena in `u32` words (header words
    /// included) — the solver's whole clause-database footprint.
    pub fn arena_words(&self) -> usize {
        self.arena.len()
    }

    /// Approximate heap footprint of the solver state in bytes: the
    /// clause arena, the watch pool and the per-variable arrays — the
    /// quantities [`Solver::clone_db`] copies. Session caches use this
    /// for LRU byte accounting; it is an estimate for budgeting, not an
    /// allocator-exact measurement.
    pub fn db_bytes(&self) -> usize {
        let per_var = std::mem::size_of::<Option<bool>>() // assign
            + std::mem::size_of::<bool>()                 // phase
            + std::mem::size_of::<u32>()                  // level
            + std::mem::size_of::<u32>()                  // reason
            + std::mem::size_of::<f64>()                  // activity
            + std::mem::size_of::<u64>(); // lbd_stamp
        let word = std::mem::size_of::<u32>();
        // Occurrence lists are cleared between elimination rounds; the
        // outer spine (and any inner capacity that survives) still
        // counts, so session-cache LRU budgets stay honest.
        let occ_bytes = self.occ.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.occ.iter().map(|l| l.capacity() * word).sum::<usize>();
        self.arena.len() * word
            + self.watches.pool_bytes()
            + self.n_vars() * per_var
            + self.n_vars() * 2 * std::mem::size_of::<bool>() // frozen + eliminated
            + self.learnt_refs.len()
                * (std::mem::size_of::<u32>() * 2
                    + std::mem::size_of::<f64>()
                    + std::mem::size_of::<u8>()) // + tier
            + (self.clause_refs.len() + self.dead_problem.len() + self.elim_clauses.len()) * word
            + self.elim_trail.len() * std::mem::size_of::<(u32, u32, u32)>()
            + occ_bytes
    }

    /// Appends a clause block for the literals in `self.add_tmp` /
    /// `self.learnt` semantics: caller passes the literal list through a
    /// field to keep borrows disjoint. Returns the clause ref and hooks
    /// the first two literals into the watch lists.
    pub(crate) fn attach_from(arena: &mut Vec<u32>, watches: &mut WatchLists, lits: &[Lit]) -> u32 {
        debug_assert!(lits.len() >= 2, "unit clauses are enqueued, not stored");
        let cr = arena.len() as u32;
        arena.push(lits.len() as u32);
        for &l in lits {
            arena.push(l.code() as u32);
        }
        watches.push(lits[0].code(), cr);
        watches.push(lits[1].code(), cr);
        cr
    }

    /// Adds a clause. Duplicated literals are merged; tautologies are
    /// dropped; empty clauses make the instance trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called after a failed [`Solver::solve`] left assignments
    /// (call sites in this workspace always add clauses up front) or if a
    /// literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.add_clause_internal(lits);
    }

    /// [`Solver::add_clause`] plus the attached clause ref (`None` when
    /// the clause was dropped, enqueued as a unit, or made the instance
    /// unsat) — the entry point elimination resolvents go through.
    pub(crate) fn add_clause_internal(&mut self, lits: &[Lit]) -> Option<u32> {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at decision level 0"
        );
        let mut c = std::mem::take(&mut self.add_tmp);
        c.clear();
        for &l in lits {
            assert!((l.var().0 as usize) < self.n_vars(), "unknown variable");
            if c.contains(&!l) {
                self.add_tmp = c;
                return None; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        // Remove literals already false at level 0; satisfied clauses are
        // dropped.
        c.retain(|&l| self.lit_value(l) != Some(false));
        if c.iter().any(|&l| self.lit_value(l) == Some(true)) {
            self.add_tmp = c;
            return None;
        }
        let mut attached = None;
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], NO_CLAUSE) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let cr = Self::attach_from(&mut self.arena, &mut self.watches, &c);
                self.n_clauses += 1;
                self.clause_refs.push(cr);
                attached = Some(cr);
            }
        }
        self.add_tmp = c;
        attached
    }

    pub(crate) fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().0 as usize].map(|v| v ^ l.is_negative())
    }

    /// The model value of `v` after a successful [`Solver::solve`].
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assign[v.0 as usize]
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    pub(crate) fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var().0 as usize;
                self.assign[v] = Some(!l.is_negative());
                self.phase[v] = !l.is_negative();
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause ref if any.
    pub(crate) fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let falsified = !p;
            let fc = falsified.code();
            let falsified_code = fc as u32;
            // Walk the falsified literal's list in place. Mid-walk pushes
            // only ever target *other* literals' lists (the replacement
            // watch is non-false, the falsified literal is false), and a
            // CSR relocation of another list never moves this one, so the
            // `(start, index)` cursor stays valid throughout.
            let mut i = 0;
            while i < self.watches.len_of(fc) {
                let cr = self.watches.get(fc, i) as usize;
                // Ensure the falsified literal is at position 1.
                if self.arena[cr + 1] == falsified_code {
                    self.arena.swap(cr + 1, cr + 2);
                }
                let w0 = Lit::from_code(self.arena[cr + 1]);
                if self.lit_value(w0) == Some(true) {
                    i += 1;
                    continue; // clause satisfied; keep watching
                }
                // Look for a new literal to watch.
                let len = self.arena[cr] as usize;
                let mut moved = false;
                for k in 2..len {
                    let l = Lit::from_code(self.arena[cr + 1 + k]);
                    if self.lit_value(l) != Some(false) {
                        self.arena.swap(cr + 2, cr + 1 + k);
                        self.watches.push(l.code(), cr as u32);
                        self.watches.swap_remove(fc, i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                if !self.enqueue(w0, cr as u32) {
                    self.qhead = self.trail.len();
                    return Some(cr as u32);
                }
                i += 1;
            }
        }
        None
    }

    fn bump(&mut self, v: Var) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.act_inc;
        if *a > 1e100 {
            // Rescaling multiplies every activity by the same factor, so
            // the heap's relative order — and therefore every stored heap
            // position — survives unchanged.
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        // The bumped variable may only have become *more* attractive.
        self.order.update(v.0, &self.activity);
    }

    /// Bumps a learnt clause's activity (it participated in a conflict).
    fn bump_clause(&mut self, cr: u32) {
        // Learnt refs are kept sorted ascending (the arena only appends,
        // and compaction preserves order), so ordinal lookup is a binary
        // search — no per-clause hash map.
        let Ok(i) = self.learnt_refs.binary_search(&cr) else {
            return; // a problem clause
        };
        // A local clause that keeps producing conflicts earns mid-tier
        // residency (tier state advances in every mode; it is only
        // consulted by tiered reduction).
        if self.learnt_tier[i] == 2 {
            self.learnt_tier[i] = 1;
        }
        self.learnt_act[i] += self.cla_inc;
        if self.learnt_act[i] > 1e20 {
            for a in &mut self.learnt_act {
                *a *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// The LBD (literal block distance) of the clause in `self.learnt`:
    /// the number of distinct non-zero decision levels among its
    /// literals. Computed with per-level stamps, no allocation.
    fn lbd_of_learnt(&mut self) -> u32 {
        self.lbd_key += 1;
        let key = self.lbd_key;
        let mut lbd = 0u32;
        for l in &self.learnt {
            let lv = self.level[l.var().0 as usize] as usize;
            // Levels run 1..=n_vars; stamp slot `lv - 1` keeps the array
            // exactly n_vars long.
            if lv > 0 && self.lbd_stamp[lv - 1] != key {
                self.lbd_stamp[lv - 1] = key;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis. Fills `self.learnt` (asserting
    /// literal first) and returns the backjump level. The per-variable
    /// `seen` marks are restored to all-false before returning.
    fn analyze(&mut self, mut confl: u32) -> u32 {
        self.learnt.clear();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            // Learnt clauses that keep producing conflicts are the ones
            // worth keeping through DB reductions.
            self.bump_clause(confl);
            let cr = confl as usize;
            let len = self.arena[cr] as usize;
            for k in 0..len {
                let q = Lit::from_code(self.arena[cr + 1 + k]);
                // Skip the implied literal whose reason we are expanding.
                if p == Some(q) {
                    continue;
                }
                let v = q.var().0 as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        self.learnt.push(q);
                    }
                }
            }
            // Find the next marked literal on the trail.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().0 as usize] {
                    break;
                }
            }
            let q = self.trail[idx];
            let v = q.var().0 as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                self.learnt.insert(0, !q);
                break;
            }
            p = Some(q);
            confl = self.reason[v];
            debug_assert_ne!(confl, NO_CLAUSE, "implied literal must have a reason");
        }
        // Restore the seen marks (non-asserting learnt literals are the
        // only ones still set: every current-level mark was consumed from
        // the trail above).
        let mut back = 0u32;
        for l in &self.learnt[1..] {
            let v = l.var().0 as usize;
            self.seen[v] = false;
            back = back.max(self.level[v]);
        }
        back
    }

    pub(crate) fn cancel_until(&mut self, lvl: u32) {
        while self.decision_level() > lvl {
            let start = self.trail_lim.pop().expect("level exists");
            while self.trail.len() > start {
                let l = self.trail.pop().expect("non-empty");
                let v = l.var().0 as usize;
                self.assign[v] = None;
                self.reason[v] = NO_CLAUSE;
                // Lazy heap maintenance: a variable re-enters the order
                // only when it actually becomes undecided again.
                self.order.insert(v as u32, &self.activity);
            }
        }
        self.qhead = self.trail.len();
    }

    /// `true` iff `cr` is the reason of a currently assigned variable.
    /// The implied literal of a reason clause always sits at watch
    /// position 1 or 2 (propagation never moves a true watched literal
    /// deeper), so two probes suffice.
    pub(crate) fn is_locked(&self, cr: u32) -> bool {
        (1..=2).any(|k| {
            let v = Lit::from_code(self.arena[cr as usize + k]).var().0 as usize;
            self.reason[v] == cr
        })
    }

    /// Flips a rare random subset (~1/32) of saved phases — the
    /// stagnation escape hatch of Luby-restart mode. The xorshift state
    /// lives on the solver, so runs (and clones) stay deterministic.
    fn flip_random_phases(&mut self) {
        for p in &mut self.phase {
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            if self.rng.is_multiple_of(32) {
                *p = !*p;
            }
        }
    }

    fn decide(&mut self) -> Option<Lit> {
        if self.use_heap {
            // Pop until an unassigned variable surfaces. Successive pops
            // come out in decreasing (activity, -index) order, so the
            // first unassigned one is exactly the linear scan's pick.
            // Assigned entries dropped here are re-inserted by
            // `cancel_until` when (and if) they become undecided again.
            while let Some(v) = self.order.pop(&self.activity) {
                // Eliminated variables linger in the order but are never
                // decided; their values come from model reconstruction.
                if self.assign[v as usize].is_none() && !self.eliminated[v as usize] {
                    return Some(Lit::with_polarity(Var(v), self.phase[v as usize]));
                }
            }
            return None;
        }
        // Baseline linear scan: first variable of maximal activity.
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.n_vars() {
            if self.assign[v].is_none() && !self.eliminated[v] {
                let a = self.activity[v];
                if best.is_none_or(|(_, ba)| a > ba) {
                    best = Some((v, a));
                }
            }
        }
        best.map(|(v, _)| Lit::with_polarity(Var(v as u32), self.phase[v]))
    }

    /// Decides satisfiability. On `true`, a full model is available via
    /// [`Solver::value`].
    pub fn solve(&mut self) -> bool {
        self.solve_with(&[])
    }

    /// Decides satisfiability under assumptions (each forced true).
    ///
    /// The clause database (arena, watch lists, learnt clauses) is kept
    /// across calls, so a sequence of assumption queries over one
    /// encoding reuses all prior work.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        // Values reconstructed for eliminated variables by a previous
        // SAT answer are not level-0 facts; clear them before searching.
        self.clear_reconstructed();
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return false;
        }
        // Assumption levels.
        for &a in assumptions {
            assert!(
                !self.eliminated[a.var().0 as usize],
                "assumption on an eliminated variable; freeze it before simplify()"
            );
            match self.lit_value(a) {
                Some(true) => continue,
                Some(false) => {
                    self.cancel_until(0);
                    return false;
                }
                None => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, NO_CLAUSE);
                    if self.propagate().is_some() {
                        self.cancel_until(0);
                        return false;
                    }
                }
            }
        }
        let assumption_level = self.decision_level();
        if self.max_learnts == 0 {
            // (Re-)derive the reduction threshold: the user cap verbatim,
            // or an adaptive start proportional to the problem size.
            self.max_learnts = if self.learnt_limit > 0 {
                self.learnt_limit
            } else {
                (self.n_clauses / 3).max(2000)
            };
        }
        // Restart scheduling: geometric by default, Luby (unit 64) when
        // opted in. Stagnation is measured against the deepest trail seen
        // this call; several Luby restarts without a new high-water mark
        // trigger a rare random phase flip.
        const LUBY_UNIT: u64 = 64;
        const STAGNANT_RESTARTS: u32 = 4;
        let mut restart_idx = 0u64;
        let mut conflicts_until_restart = if self.luby_restarts {
            LUBY_UNIT * luby(1)
        } else {
            100
        };
        let mut conflicts = 0u64;
        let mut max_trail = self.trail.len();
        let mut restart_max_trail = max_trail;
        let mut stagnant = 0u32;
        loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                // Trail high-water mark (pre-backjump): the stagnation
                // signal for Luby-mode phase flips.
                max_trail = max_trail.max(self.trail.len());
                if self.decision_level() <= assumption_level {
                    self.cancel_until(0);
                    if assumption_level == 0 {
                        self.unsat = true;
                    }
                    return false;
                }
                let back = self.analyze(confl).max(assumption_level);
                self.cancel_until(back);
                let assert_lit = self.learnt[0];
                let lbd = if self.learnt.len() == 1 {
                    // A unit learnt asserts at one level; its LBD is 1.
                    1
                } else {
                    self.lbd_of_learnt()
                };
                if self.learnt.len() == 1 {
                    // Unit learnt clause: assert directly at the backjump
                    // level (level 0, or the assumption level).
                    let ok = self.enqueue(assert_lit, NO_CLAUSE);
                    debug_assert!(ok);
                } else {
                    let cr = Self::attach_from(&mut self.arena, &mut self.watches, &self.learnt);
                    self.n_clauses += 1;
                    self.learnt_refs.push(cr);
                    self.learnt_act.push(self.cla_inc);
                    self.learnt_lbd.push(lbd);
                    self.learnt_tier.push(crate::reduce::tier_of(lbd));
                    let ok = self.enqueue(assert_lit, cr);
                    debug_assert!(ok);
                }
                // The LBD EMAs advance in every mode (they are plain
                // observers); they only *steer* restarts in EMA mode.
                self.ema_note_conflict(lbd);
                self.act_inc *= 1.05;
                self.cla_inc *= 1.001;
                if self.learnt_refs.len() >= self.max_learnts {
                    self.reduce_db();
                }
                let ema_mode = self.ema_restarts && !self.luby_restarts;
                let restart_now = if ema_mode {
                    self.ema_wants_restart(conflicts)
                } else {
                    conflicts >= conflicts_until_restart
                };
                if restart_now {
                    conflicts = 0;
                    if self.luby_restarts {
                        restart_idx += 1;
                        conflicts_until_restart = LUBY_UNIT * luby(restart_idx + 1);
                        if max_trail > restart_max_trail {
                            restart_max_trail = max_trail;
                            stagnant = 0;
                        } else {
                            stagnant += 1;
                            if stagnant >= STAGNANT_RESTARTS {
                                self.flip_random_phases();
                                stagnant = 0;
                            }
                        }
                    } else if !ema_mode {
                        conflicts_until_restart = (conflicts_until_restart * 3) / 2;
                    }
                    self.cancel_until(assumption_level);
                    // Budgeted in-solve vivification, only on
                    // assumption-free queries (the trail is pure level 0
                    // after this cancel).
                    if self.vivify_enabled && assumption_level == 0 {
                        self.vivify_at_restart();
                        if self.unsat {
                            return false;
                        }
                    }
                }
            } else {
                match self.decide() {
                    None => {
                        self.reconstruct_model();
                        return true;
                    }
                    Some(d) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(d, NO_CLAUSE);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

/// The Luby sequence, 1-indexed: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2,
/// 4, 8, … — the restart-interval multipliers of Luby-mode restarts.
fn luby(mut i: u64) -> u64 {
    loop {
        // The subsequence ending at index 2^k - 1 has length 2^k - 1;
        // its final element is 2^(k-1).
        let k = 64 - i.leading_zeros() as u64;
        if i == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        assert_eq!(s.value(v[0]), Some(true));

        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert!(!s.solve());
    }

    #[test]
    fn unit_propagation_chain() {
        // x0 -> x1 -> x2 -> x3, with x0 asserted.
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        for w in v.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        for &x in &v {
            assert_eq!(s.value(x), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: vars p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for i in 0..3 {
            for j in 0..2 {
                p[i][j] = s.new_var();
            }
        }
        for i in 0..3 {
            s.add_clause(&[Lit::pos(p[i][0]), Lit::pos(p[i][1])]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn xor_chain_sat_with_model_check() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 = 1 ⇒ x2 = 1.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve());
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn assumptions_work_and_are_undone() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s.solve_with(&[Lit::neg(v[0])]));
        assert_eq!(s.value(v[1]), Some(true));
        // Contradictory assumptions: unsat under them, sat afterwards.
        assert!(!s.solve_with(&[Lit::neg(v[0]), Lit::neg(v[1])]));
        assert!(s.solve());
    }

    #[test]
    fn random_instances_match_brute_force() {
        // Deterministic pseudo-random 3-CNFs over 8 vars, cross-checked
        // against exhaustive enumeration.
        let mut state = 0x853C49E6748FEA9Bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..25 {
            let n_vars = 8usize;
            let n_clauses = 3 + (next() % 30) as usize;
            let mut clauses = Vec::new();
            for _ in 0..n_clauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % n_vars as u64) as u32;
                    let neg = next() & 1 == 1;
                    c.push(if neg {
                        Lit::neg(Var(v))
                    } else {
                        Lit::pos(Var(v))
                    });
                }
                clauses.push(c);
            }
            // Brute force.
            let brute = (0..(1u32 << n_vars)).any(|m| {
                clauses.iter().all(|c| {
                    c.iter().any(|l| {
                        let val = (m >> l.var().0) & 1 == 1;
                        val != l.is_negative()
                    })
                })
            });
            let mut s = Solver::new();
            for _ in 0..n_vars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve();
            assert_eq!(got, brute, "round {round}: clauses {clauses:?}");
            if got {
                // Model must satisfy all clauses.
                for c in &clauses {
                    assert!(
                        c.iter()
                            .any(|l| s.value(l.var()).expect("assigned") != l.is_negative()),
                        "model violates {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]); // tautology: ignored
        assert!(s.solve());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        s.add_clause(&[]);
        assert!(!s.solve());
    }

    /// Deterministic xorshift for in-module randomized tests.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_3cnf(state: &mut u64, n_vars: usize, n_clauses: usize) -> Vec<Vec<Lit>> {
        (0..n_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let v = Var((xorshift(state) % n_vars as u64) as u32);
                        if xorshift(state) & 1 == 1 {
                            Lit::neg(v)
                        } else {
                            Lit::pos(v)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn heap_and_linear_decisions_are_identical() {
        // The order heap's tie-break mirrors the linear scan's "first
        // maximum" rule, so the entire search — verdicts *and* models —
        // must be bit-identical in both modes.
        let mut state = 0x1DEA_0001u64;
        for round in 0..40 {
            let n_vars = 6 + (xorshift(&mut state) % 7) as usize;
            let n_clauses = 5 + (xorshift(&mut state) % 40) as usize;
            let clauses = random_3cnf(&mut state, n_vars, n_clauses);
            let mut heap = Solver::new();
            let mut linear = Solver::new();
            linear.set_decision_heap(false);
            for _ in 0..n_vars {
                heap.new_var();
                linear.new_var();
            }
            for c in &clauses {
                heap.add_clause(c);
                linear.add_clause(c);
            }
            let (vh, vl) = (heap.solve(), linear.solve());
            assert_eq!(vh, vl, "round {round}: verdicts differ");
            if vh {
                for v in 0..n_vars {
                    assert_eq!(
                        heap.value(Var(v as u32)),
                        linear.value(Var(v as u32)),
                        "round {round}: models diverge at var {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn reduce_db_keeps_verdicts_and_bounds_learnts() {
        // Pigeonhole 6-into-5 forces heavy learning; a tiny learnt cap
        // forces many reductions mid-search without changing the verdict.
        let build = |limit: usize| {
            let mut s = Solver::new();
            if limit > 0 {
                s.set_learnt_limit(limit);
            }
            let mut p = vec![[Var(0); 5]; 6];
            for row in p.iter_mut() {
                for slot in row.iter_mut() {
                    *slot = s.new_var();
                }
            }
            for row in &p {
                let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
                s.add_clause(&lits);
            }
            for j in 0..5 {
                for a in 0..6 {
                    for b in (a + 1)..6 {
                        s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
                    }
                }
            }
            s
        };
        let mut unlimited = build(0);
        let mut capped = build(20);
        assert!(!unlimited.solve());
        assert!(!capped.solve());
        assert!(capped.n_reductions() > 0, "the cap must force reductions");
        assert!(
            capped.arena_words() <= unlimited.arena_words(),
            "reduction must not grow the arena: {} vs {}",
            capped.arena_words(),
            unlimited.arena_words()
        );
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), w, "luby({})", i + 1);
        }
    }

    #[test]
    fn csr_and_vec_watch_modes_are_identical() {
        let mut state = 0xC5_3000_0001u64;
        for round in 0..30 {
            let n_vars = 5 + (xorshift(&mut state) % 8) as usize;
            let n_clauses = 5 + (xorshift(&mut state) % 40) as usize;
            let clauses = random_3cnf(&mut state, n_vars, n_clauses);
            let mut csr = Solver::new();
            let mut vecs = Solver::new();
            vecs.set_watch_csr(false);
            for _ in 0..n_vars {
                csr.new_var();
                vecs.new_var();
            }
            for c in &clauses {
                csr.add_clause(c);
                vecs.add_clause(c);
            }
            let (vc, vv) = (csr.solve(), vecs.solve());
            assert_eq!(vc, vv, "round {round}: verdicts differ");
            if vc {
                for v in 0..n_vars {
                    assert_eq!(
                        csr.value(Var(v as u32)),
                        vecs.value(Var(v as u32)),
                        "round {round}: models diverge at var {v}"
                    );
                }
            }
            // Representation round-trip mid-life: convert the CSR solver
            // to Vec mode and back; behavior must not move.
            csr.set_watch_csr(false);
            csr.set_watch_csr(true);
            assert_eq!(csr.solve(), vv, "round {round}: round-trip diverged");
        }
    }

    #[test]
    fn luby_restarts_and_phase_resets_keep_verdicts() {
        // Pigeonhole 5-into-4 (UNSAT, restart-heavy) plus a satisfiable
        // chain; Luby mode and phase resets must not change any verdict.
        let build = |luby_mode: bool| {
            let mut s = Solver::new();
            s.set_restart_luby(luby_mode);
            let mut p = vec![[Var(0); 4]; 5];
            for row in p.iter_mut() {
                for slot in row.iter_mut() {
                    *slot = s.new_var();
                }
            }
            for row in &p {
                let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
                s.add_clause(&lits);
            }
            for j in 0..4 {
                for a in 0..5 {
                    for b in (a + 1)..5 {
                        s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
                    }
                }
            }
            s
        };
        let mut geometric = build(false);
        let mut luby_mode = build(true);
        assert!(!geometric.solve());
        assert!(!luby_mode.solve());
        // reset_phases between queries never changes answers.
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s.solve_with(&[Lit::neg(v[0])]));
        s.reset_phases();
        assert!(s.solve_with(&[Lit::neg(v[1])]));
        s.reset_phases();
        assert!(!s.solve_with(&[Lit::neg(v[0]), Lit::neg(v[1])]));
    }

    #[test]
    fn clone_db_snapshots_answer_independently() {
        let mut state = 0xC10E_0001u64;
        let n_vars = 9usize;
        let clauses = random_3cnf(&mut state, n_vars, 30);
        let mut s = Solver::new();
        for _ in 0..n_vars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c);
        }
        let _ = s.solve_with(&[Lit::pos(Var(0))]); // leave residue state
        let mut a = s.clone_db();
        let mut b = s.clone_db();
        for q in 0..n_vars {
            let assumption = [Lit::neg(Var(q as u32))];
            assert_eq!(
                a.solve_with(&assumption),
                s.solve_with(&assumption),
                "clone diverges on query {q}"
            );
        }
        // The second clone is untouched by the first clone's queries.
        assert_eq!(b.solve(), s.solve());
    }

    #[test]
    fn arena_layout_matches_clause_count() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.n_clauses(), 2);
        // Two blocks: (1 header + 2 lits) + (1 header + 3 lits).
        assert_eq!(s.arena_words(), 3 + 4);
        assert!(s.solve());
    }

    #[test]
    fn learnt_clauses_grow_the_arena_only() {
        // A small unsat-core-rich instance: solving under failing
        // assumptions learns clauses into the same arena; the solver must
        // stay reusable afterwards.
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        for w in v.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        let before = s.arena_words();
        assert!(!s.solve_with(&[Lit::pos(v[0]), Lit::neg(v[5])]));
        assert!(s.solve_with(&[Lit::pos(v[0])]));
        assert_eq!(s.value(v[5]), Some(true));
        assert!(s.arena_words() >= before);
    }
}
