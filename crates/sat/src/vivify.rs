//! Clause vivification (distillation): shrink problem clauses by
//! re-propagating their literals under the level-0 trail.
//!
//! For a clause `C = l₁ ∨ … ∨ lₙ` (detached so it cannot propagate
//! itself), literals are probed in clause order against the rest of the
//! formula:
//!
//! * `lᵢ` false under the accumulated propagations — `F\C ∧ ¬prefix ⊢
//!   ¬lᵢ`, so `lᵢ` is redundant: drop it.
//! * `lᵢ` true — `F\C ∧ ¬prefix ⊢ lᵢ`, so `prefix ∨ lᵢ` is implied:
//!   replace `C` with it and stop.
//! * otherwise decide `¬lᵢ` and propagate; a conflict means `F\C ∧
//!   ¬prefix ∧ ¬lᵢ ⊢ ⊥`, the same strengthening: stop.
//!
//! Every rewrite replaces `C` by a clause that is implied by `F\C` and
//! implies `C`, so the formula stays *equivalent* (not merely
//! equisatisfiable) — no model reconstruction is needed, and verdicts
//! and witnesses are mathematically unchanged. Clauses satisfied at
//! level 0 are entailed by the permanent trail and removed outright
//! (level-0 reason clauses excepted, so reasons never dangle).
//! Shrinking happens
//! in place in the flat arena; the tail gap is disguised as a dead
//! pseudo-block and queued for the next compaction.
//!
//! Vivification runs exhaustively from [`Solver::simplify`] and on a
//! deterministic budget at assumption-free restart boundaries: every
//! [`RESTART_PERIOD`]-th restart probes [`RESTART_BUDGET`] clauses,
//! continuing round-robin from a persistent cursor (cloned with the
//! solver, so sharded sweeps stay bit-reproducible).

use crate::solver::{Solver, NO_CLAUSE};
use crate::Lit;

/// Restarts between budgeted in-solve vivification passes.
pub(crate) const RESTART_PERIOD: u32 = 16;
/// Clauses probed per in-solve pass.
const RESTART_BUDGET: usize = 128;

impl Solver {
    /// Removes `cr`'s two watch entries (positions 1 and 2 of its
    /// block). After this the clause is invisible to propagation; its
    /// arena block is still readable.
    pub(crate) fn detach(&mut self, cr: u32) {
        for k in 1..=2 {
            let code = self.arena[cr as usize + k] as usize;
            for i in 0..self.watches.len_of(code) {
                if self.watches.get(code, i) == cr {
                    self.watches.swap_remove(code, i);
                    break;
                }
            }
        }
    }

    /// The restart-boundary hook: counts down [`RESTART_PERIOD`]
    /// restarts, then runs one budgeted vivification pass. Caller
    /// guarantees an assumption-free, level-0 trail.
    pub(crate) fn vivify_at_restart(&mut self) {
        if self.vivify_countdown > 0 {
            self.vivify_countdown -= 1;
            return;
        }
        self.vivify_countdown = RESTART_PERIOD;
        self.vivify_round(RESTART_BUDGET);
    }

    /// Probes up to `budget` problem clauses (capped at the live count),
    /// round-robin from the persistent cursor. Must be called at
    /// decision level 0 with no pending propagations. May set `unsat`.
    pub(crate) fn vivify_round(&mut self, budget: usize) {
        debug_assert!(self.trail_lim.is_empty(), "vivify runs at level 0");
        if self.unsat {
            return;
        }
        let mut left = budget.min(self.clause_refs.len());
        let mut idx = self.vivify_head;
        while left > 0 && !self.clause_refs.is_empty() {
            if idx >= self.clause_refs.len() {
                idx = 0;
            }
            if self.vivify_one(idx) {
                idx += 1;
            }
            if self.unsat {
                return;
            }
            left -= 1;
        }
        self.vivify_head = idx;
    }

    /// Vivifies the clause at `clause_refs[idx]`. Returns `true` when
    /// the clause survives (cursor should advance), `false` when it was
    /// removed from the index.
    fn vivify_one(&mut self, idx: usize) -> bool {
        let cr = self.clause_refs[idx] as usize;
        let orig_len = self.arena[cr] as usize;
        let mut lits = std::mem::take(&mut self.viv_tmp);
        lits.clear();
        for k in 0..orig_len {
            lits.push(Lit::from_code(self.arena[cr + 1 + k]));
        }
        // Clauses satisfied at level 0 are entailed by the permanent
        // trail: drop them outright. On minterm-unrolled encodings the
        // row-input units satisfy most per-row clauses, so this is where
        // the bulk of the DB shrink comes from. The one exception is a
        // clause serving as a level-0 reason — removing it would dangle
        // `reason[]`, so it stays.
        if lits.iter().any(|&l| self.lit_value(l) == Some(true)) {
            if self.is_locked(cr as u32) {
                self.viv_tmp = lits;
                return true;
            }
            self.detach(cr as u32);
            self.n_vivified += 1;
            self.stat_literals_removed += orig_len as u64;
            self.remove_problem_clause(idx, cr as u32);
            self.viv_tmp = lits;
            return false;
        }
        // Detach so the clause cannot propagate against itself.
        self.detach(cr as u32);
        // Probe in clause order; `w` is the surviving prefix length.
        let mut w = 0usize;
        for i in 0..lits.len() {
            let l = lits[i];
            match self.lit_value(l) {
                Some(false) => {} // redundant: drop
                Some(true) => {
                    // prefix ∨ l is implied: stop and strengthen.
                    lits[w] = l;
                    w += 1;
                    break;
                }
                None => {
                    self.trail_lim.push(self.trail.len());
                    let ok = self.enqueue(!l, NO_CLAUSE);
                    debug_assert!(ok);
                    let conflict = self.propagate().is_some();
                    lits[w] = l;
                    w += 1;
                    if conflict {
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        lits.truncate(w);
        if w == orig_len {
            // Nothing learned: reattach the original watches.
            self.watches.push(lits[0].code(), cr as u32);
            self.watches.push(lits[1].code(), cr as u32);
            self.viv_tmp = lits;
            return true;
        }
        self.n_vivified += 1;
        self.stat_literals_removed += (orig_len - w) as u64;
        match w {
            0 => {
                // Every literal was level-0 false: the instance is
                // unsatisfiable (propagation would have found this; be
                // safe regardless).
                self.unsat = true;
                self.remove_problem_clause(idx, cr as u32);
                self.viv_tmp = lits;
                false
            }
            1 => {
                // Shrunk to a unit: assert it at level 0 and drop the
                // clause entirely.
                let unit = lits[0];
                self.remove_problem_clause(idx, cr as u32);
                if !self.enqueue(unit, NO_CLAUSE) || self.propagate().is_some() {
                    self.unsat = true;
                }
                self.viv_tmp = lits;
                false
            }
            _ => {
                // Rewrite the block in place; the tail gap becomes a
                // dead pseudo-block reclaimed by the next compaction.
                self.arena[cr] = w as u32;
                for (k, &l) in lits.iter().enumerate() {
                    self.arena[cr + 1 + k] = l.code() as u32;
                }
                let gap = orig_len - w;
                if gap > 0 {
                    let gap_ref = (cr + 1 + w) as u32;
                    self.arena[gap_ref as usize] = gap as u32 - 1;
                    self.dead_problem.push(gap_ref);
                }
                self.watches.push(lits[0].code(), cr as u32);
                self.watches.push(lits[1].code(), cr as u32);
                self.viv_tmp = lits;
                true
            }
        }
    }

    /// Drops the (already detached) problem clause `cr` at index
    /// position `idx`: unindexes it, queues its block for compaction
    /// and updates the counters.
    pub(crate) fn remove_problem_clause(&mut self, idx: usize, cr: u32) {
        debug_assert_eq!(self.clause_refs[idx], cr);
        self.clause_refs.remove(idx);
        self.dead_problem.push(cr);
        self.n_clauses -= 1;
        self.stat_clauses_removed += 1;
    }
}
