use std::fmt;
use std::ops::Not;

/// A propositional variable (0-based index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable or its negation.
///
/// # Example
///
/// ```
/// use mvf_sat::{Lit, Var};
///
/// let x = Var(3);
/// assert_eq!(!Lit::pos(x), Lit::neg(x));
/// assert_eq!(Lit::pos(x).var(), x);
/// assert!(Lit::neg(x).is_negative());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// A literal with explicit polarity (`true` = positive).
    pub fn with_polarity(v: Var, polarity: bool) -> Lit {
        if polarity {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` iff this is a negated literal.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Internal dense code (used for watch lists and the clause arena).
    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a literal from its dense code (inverse of [`Lit::code`]).
    pub(crate) fn from_code(code: u32) -> Lit {
        Lit(code)
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(!Lit::pos(v).is_negative());
        assert!(Lit::neg(v).is_negative());
        assert_eq!(!(!Lit::pos(v)), Lit::pos(v));
        assert_eq!(Lit::with_polarity(v, false), Lit::neg(v));
    }
}
