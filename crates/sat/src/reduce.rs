//! Learnt-DB reduction and flat-arena compaction.
//!
//! [`Solver::reduce_db`] drops cold learnt clauses once the live count
//! passes the reduction threshold, then compacts the arena in place.
//! Two ranking policies share the pass:
//!
//! * **Baseline** (`set_reduce_tiered(false)`): clauses ranked by (LBD
//!   descending, activity ascending, ref ascending) — the original
//!   "drop the cold half" heuristic, kept bit-identical for the
//!   equivalence corpora.
//! * **Tiered** (default): learnts live in three tiers assigned at learn
//!   time — core (LBD ≤ 2, never dropped), mid (LBD ≤ 6) and local —
//!   and locals are promoted to mid when they keep producing conflicts
//!   (see `Solver::bump_clause`). Reduction drops locals before mids,
//!   so a clause that proved itself outlives a one-conflict wonder of
//!   equal LBD.
//!
//! Both policies remove the same *number* of clauses from the same
//! candidate set (glue and locked clauses are never candidates); only
//! the order — which half is "cold" — differs.
//!
//! [`compact_arena`] is the shared back end: it slides live blocks over
//! dead ones with `copy_within` and remaps every clause reference —
//! watch lists, reasons, the problem-clause index and the learnt
//! metadata — through dead-block prefix sums. Vivification and variable
//! elimination queue their dead blocks (including shrink gaps disguised
//! as pseudo-clauses) in `dead_problem`; reduction and
//! [`Solver::simplify`] drain that queue here, so arena growth stays
//! bounded across arbitrarily long sweeps.
//!
//! [`compact_arena`]: Solver::compact_arena

use crate::solver::{Solver, NO_CLAUSE};

/// The learn-time tier of a clause with LBD `lbd`: 0 = core, 1 = mid,
/// 2 = local.
pub(crate) fn tier_of(lbd: u32) -> u8 {
    match lbd {
        0..=2 => 0,
        3..=6 => 1,
        _ => 2,
    }
}

impl Solver {
    /// Learnt-DB reduction: drops the cold half of the learnt clauses
    /// (ranked per the active policy, see the [module docs](self)) and
    /// compacts the flat arena in place, draining any dead problem
    /// blocks queued by inprocessing. Safe at any decision level.
    pub(crate) fn reduce_db(&mut self) {
        let n = self.learnt_refs.len();
        if n == 0 {
            return;
        }
        // Rank the removable learnts worst-first. Glue (learn-time
        // LBD ≤ 2 ⟺ tier 0) and locked clauses are never candidates, so
        // the candidate *set* is identical in both policies.
        let tiered = self.tiered_reduce;
        let mut cand = std::mem::take(&mut self.rank_tmp);
        cand.clear();
        for i in 0..n {
            if self.learnt_lbd[i] > 2 && !self.is_locked(self.learnt_refs[i]) {
                cand.push(i as u32);
            }
        }
        cand.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            let by_tier = if tiered {
                self.learnt_tier[b].cmp(&self.learnt_tier[a])
            } else {
                std::cmp::Ordering::Equal
            };
            by_tier
                .then(self.learnt_lbd[b].cmp(&self.learnt_lbd[a]))
                .then(self.learnt_act[a].total_cmp(&self.learnt_act[b]))
                .then(self.learnt_refs[a].cmp(&self.learnt_refs[b]))
        });
        let n_remove = cand.len().min(n / 2);
        if n_remove == 0 {
            // Everything is glue or locked: raise the threshold so the
            // trigger does not fire on every conflict.
            self.max_learnts += self.max_learnts / 2 + 1;
            self.rank_tmp = cand;
            return;
        }
        // Dead refs ascending: the dropped learnts plus any problem
        // blocks inprocessing already detached.
        let mut dead = std::mem::take(&mut self.dead_refs);
        dead.clear();
        dead.extend(
            cand[..n_remove]
                .iter()
                .map(|&i| self.learnt_refs[i as usize]),
        );
        dead.append(&mut self.dead_problem);
        dead.sort_unstable();
        self.dead_refs = dead;
        self.rank_tmp = cand;
        self.compact_arena();
        self.n_clauses -= n_remove;
        self.n_reductions += 1;
        if self.learnt_limit == 0 {
            // Adaptive mode grows the threshold geometrically; a user cap
            // stays fixed so long sweeps remain bounded — snap back any
            // transient slack the all-glue escape path above granted.
            self.max_learnts += self.max_learnts / 10 + 1;
        } else {
            self.max_learnts = self.learnt_limit;
        }
    }

    /// Compacts the arena over the dead blocks listed (sorted ascending,
    /// non-empty, duplicate-free) in `self.dead_refs`, then remaps every
    /// clause reference: watch lists, reasons, the problem-clause index
    /// and the learnt metadata (entries for dead refs are dropped).
    /// Dead blocks must already be fully detached. Safe at any decision
    /// level. `n_clauses` is the caller's business.
    pub(crate) fn compact_arena(&mut self) {
        let dead = std::mem::take(&mut self.dead_refs);
        if dead.is_empty() {
            self.dead_refs = dead;
            return;
        }
        debug_assert!(dead.windows(2).all(|w| w[0] < w[1]), "dead refs sorted");
        // Cumulative word shifts: a live ref `r` moves to
        // `r - shift[#dead blocks before r]`.
        let mut shift = std::mem::take(&mut self.dead_shift);
        shift.clear();
        let mut acc = 0u32;
        for &d in &dead {
            acc += self.arena[d as usize] + 1;
            shift.push(acc);
        }
        // Slide the live spans between dead blocks down in place. Each
        // destination range ends strictly before the next dead header, so
        // headers are always read before they can be overwritten.
        {
            let mut write = dead[0] as usize;
            let mut read = write + self.arena[write] as usize + 1;
            for &d in &dead[1..] {
                let d = d as usize;
                let span = d - read;
                self.arena.copy_within(read..d, write);
                write += span;
                read = d + self.arena[d] as usize + 1;
            }
            let len = self.arena.len();
            self.arena.copy_within(read..len, write);
            self.arena.truncate(write + (len - read));
        }
        let remap = |r: u32| -> u32 {
            let i = dead.partition_point(|&d| d < r);
            if i == 0 {
                r
            } else {
                r - shift[i - 1]
            }
        };
        // Watch lists: drop watchers of dead clauses, remap the rest
        // (this pass also compacts the CSR watch pool).
        self.watches.retain_map(|r| {
            if dead.binary_search(&r).is_ok() {
                None
            } else {
                Some(remap(r))
            }
        });
        // Reasons: locked learnts are never dropped and dead problem
        // blocks are never reasons (a level-0 reason clause is level-0
        // satisfied, which inprocessing skips), so every reason stays
        // live.
        for r in &mut self.reason {
            if *r != NO_CLAUSE {
                debug_assert!(dead.binary_search(r).is_err(), "reason clause dropped");
                *r = remap(*r);
            }
        }
        // Problem-clause index: inprocessing removes its dead entries
        // eagerly, so this is a pure remap (order is preserved).
        for r in &mut self.clause_refs {
            debug_assert!(dead.binary_search(r).is_err(), "dead ref still indexed");
            *r = remap(*r);
        }
        // Learnt metadata: drop dead entries, remap the rest. The dead
        // list interleaves problem blocks, so membership is a binary
        // search rather than a two-pointer sweep.
        let mut w = 0usize;
        for i in 0..self.learnt_refs.len() {
            let r = self.learnt_refs[i];
            if dead.binary_search(&r).is_ok() {
                continue;
            }
            self.learnt_refs[w] = remap(r);
            self.learnt_act[w] = self.learnt_act[i];
            self.learnt_lbd[w] = self.learnt_lbd[i];
            self.learnt_tier[w] = self.learnt_tier[i];
            w += 1;
        }
        self.learnt_refs.truncate(w);
        self.learnt_act.truncate(w);
        self.learnt_lbd.truncate(w);
        self.learnt_tier.truncate(w);
        self.dead_refs = dead;
        self.dead_shift = shift;
    }
}
