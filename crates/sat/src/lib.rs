//! A CDCL SAT solver and circuit-to-CNF encoding.
//!
//! This is the decision-procedure substrate for the adversary model of the
//! paper's §I: deciding whether a candidate function is plausible for a
//! camouflaged netlist reduces to satisfiability over the doping-
//! configuration variables (see the `mvf-attack` crate). The solver is a
//! compact conflict-driven clause-learning implementation with two-watched
//! literals, first-UIP learning, VSIDS-style activities and geometric
//! restarts.
//!
//! # Example
//!
//! ```
//! use mvf_sat::{Lit, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert!(s.solve());
//! assert_eq!(s.value(b), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod eliminate;
mod reduce;
mod restart;
mod solver;
mod tseitin;
mod vivify;

pub use cnf::{Lit, Var};
pub use solver::{SimplifyStats, Solver};
pub use tseitin::{encode_netlist, CircuitCnf};
