//! Input-unrolled CNF encoding of (possibly camouflaged) netlists.
//!
//! The adversary's plausibility test is a two-level problem:
//! *does there exist* a doping configuration such that *for all* inputs
//! the circuit equals a candidate function ([14] in the paper solves the
//! analogous problem as QBF). For the block sizes in question (4–6 data
//! inputs) the universal quantifier is cheap to unroll: the encoder
//! instantiates the netlist once per input minterm, sharing one set of
//! configuration-selector variables across all rows. Satisfiability over
//! the selectors then decides plausibility exactly.

use std::collections::HashMap;

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::TruthTable;
use mvf_netlist::{CellId, CellRef, Netlist};

use crate::{Lit, Solver, Var};

/// The unrolled encoding: one solver, per-cell configuration selectors and
/// per-row output variables.
#[derive(Debug)]
pub struct CircuitCnf {
    /// The solver holding the encoded constraints.
    pub solver: Solver,
    /// For each camouflaged instance, one selector variable per plausible
    /// function (in the library's `plausible()` order); exactly one is
    /// true in any model.
    pub config_vars: HashMap<CellId, Vec<Var>>,
    /// `row_outputs[m][o]`: the variable of output `o` when the primary
    /// inputs are the bits of minterm `m`.
    pub row_outputs: Vec<Vec<Var>>,
}

impl CircuitCnf {
    /// Freezes the encoding's interface against variable elimination:
    /// every configuration selector (read back as the witness) and every
    /// row-output variable (assumed on by plausibility queries). Call
    /// before [`Solver::simplify`]; the per-row input pins are level-0
    /// facts and need no protection.
    pub fn freeze_interface(&mut self) {
        for vars in self.config_vars.values() {
            for &v in vars {
                self.solver.set_frozen(v, true);
            }
        }
        for row in &self.row_outputs {
            for &v in row {
                self.solver.set_frozen(v, true);
            }
        }
    }
}

/// Encodes the netlist unrolled over all `2^n_inputs` input rows.
///
/// # Panics
///
/// Panics if the netlist has more than [`mvf_logic::MAX_VARS`] inputs
/// (the unrolling would be oversized) or is structurally invalid.
pub fn encode_netlist(nl: &Netlist, lib: &Library, camo: &CamoLibrary) -> CircuitCnf {
    let n_in = nl.inputs().len();
    assert!(
        n_in <= mvf_logic::MAX_VARS,
        "unrolled encoding limited to {} inputs",
        mvf_logic::MAX_VARS
    );
    nl.check_with_camo(lib, Some(camo)).expect("valid netlist");
    let mut solver = Solver::new();

    // Shared configuration selectors.
    let mut config_vars: HashMap<CellId, Vec<Var>> = HashMap::new();
    for (cid, c) in nl.cells() {
        if let CellRef::Camo(id) = c.cell {
            let cell = camo.cell(id);
            let vars: Vec<Var> = cell.plausible().iter().map(|_| solver.new_var()).collect();
            // At least one...
            let alo: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
            solver.add_clause(&alo);
            // ...and at most one.
            for i in 0..vars.len() {
                for j in (i + 1)..vars.len() {
                    solver.add_clause(&[Lit::neg(vars[i]), Lit::neg(vars[j])]);
                }
            }
            config_vars.insert(cid, vars);
        }
    }

    let topo = nl.topo_cells();
    let mut row_outputs = Vec::with_capacity(1 << n_in);
    for m in 0..(1usize << n_in) {
        // Net variables for this row.
        let mut net_var: HashMap<u32, Var> = HashMap::new();
        for (i, &pi) in nl.inputs().iter().enumerate() {
            let v = solver.new_var();
            let bit = m & (1 << i) != 0;
            solver.add_clause(&[Lit::with_polarity(v, bit)]);
            net_var.insert(pi.0, v);
        }
        for &cid in &topo {
            let c = nl.cell(cid);
            let y = solver.new_var();
            net_var.insert(c.output.0, y);
            let pins: Vec<Var> = c.inputs.iter().map(|p| net_var[&p.0]).collect();
            match c.cell {
                CellRef::Std(id) => {
                    encode_fixed(&mut solver, lib.cell(id).function(), &pins, y, None);
                }
                CellRef::Camo(id) => {
                    let cell = camo.cell(id);
                    let sels = &config_vars[&cid];
                    for (j, f) in cell.plausible().iter().enumerate() {
                        encode_fixed(&mut solver, f, &pins, y, Some(Lit::neg(sels[j])));
                    }
                }
            }
        }
        row_outputs.push(
            nl.outputs()
                .iter()
                .map(|(_, net)| net_var[&net.0])
                .collect(),
        );
    }
    CircuitCnf {
        solver,
        config_vars,
        row_outputs,
    }
}

/// Encodes `guard → (y ↔ f(pins))` row by row of `f`'s truth table.
fn encode_fixed(solver: &mut Solver, f: &TruthTable, pins: &[Var], y: Var, guard: Option<Lit>) {
    for m in 0..f.n_minterms() {
        let mut clause: Vec<Lit> = Vec::with_capacity(pins.len() + 2);
        if let Some(g) = guard {
            clause.push(g);
        }
        for (i, &p) in pins.iter().enumerate() {
            // Pin pattern: exclude assignments ≠ m.
            clause.push(Lit::with_polarity(p, m & (1 << i) == 0));
        }
        clause.push(Lit::with_polarity(y, f.get(m)));
        solver.add_clause(&clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_cells::CellKind;

    #[test]
    fn std_netlist_encoding_matches_semantics() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let nand = lib.cell_by_kind(CellKind::Nand(2)).unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (_, y) = nl.add_cell("u", nand.into(), vec![a, b]);
        nl.add_output("y", y);
        let mut cnf = encode_netlist(&nl, &lib, &camo);
        assert!(cnf.solver.solve());
        for m in 0..4usize {
            let v = cnf.row_outputs[m][0];
            assert_eq!(cnf.solver.value(v), Some(m != 3), "m={m}");
        }
    }

    #[test]
    fn camo_cell_selector_constrains_output() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let (nand_id, nand) = camo.iter().find(|(_, c)| c.name() == "NAND2").unwrap();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let (cid, y) = nl.add_cell("u", nand_id.into(), vec![a, b]);
        nl.add_output("y", y);
        let mut cnf = encode_netlist(&nl, &lib, &camo);
        // Force the output column to be exactly ¬a: must be satisfiable
        // (¬A is plausible for NAND2) and the model must select it.
        let mut assumptions = Vec::new();
        for m in 0..4usize {
            assumptions.push(Lit::with_polarity(cnf.row_outputs[m][0], m & 1 == 0));
        }
        assert!(cnf.solver.solve_with(&assumptions));
        let sels = &cnf.config_vars[&cid];
        let chosen: Vec<usize> = sels
            .iter()
            .enumerate()
            .filter(|(_, &v)| cnf.solver.value(v) == Some(true))
            .map(|(j, _)| j)
            .collect();
        assert_eq!(chosen.len(), 1);
        let f = &nand.plausible()[chosen[0]];
        assert_eq!(f, &mvf_logic::TruthTable::var(0, 2).not());

        // Forcing XOR must be unsatisfiable.
        let mut assumptions = Vec::new();
        for m in 0..4usize {
            let bit = (m & 1 == 1) ^ (m & 2 == 2);
            assumptions.push(Lit::with_polarity(cnf.row_outputs[m][0], bit));
        }
        assert!(!cnf.solver.solve_with(&assumptions));
    }
}
