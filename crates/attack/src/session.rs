//! Persistent, resumable sweep sessions.
//!
//! Three pieces turn the one-shot sweeps of the crate root into a
//! long-running audit service's building blocks:
//!
//! * [`SweepSession`] — one camouflaged netlist encoded **once** and kept
//!   hot: repeated sweeps against the same circuit reuse the flat clause
//!   arena, accumulate learnt clauses (warm starts), and share cached
//!   [`CamoScreen`](crate::CamoScreen) vector batches keyed by candidate batch.
//! * [`AnyIoJob`] — a stepped, pausable interpretation-freedom sweep: the
//!   work list is processed in caller-sized chunks, and the complete
//!   mutable state between chunks is a handful of integer vectors
//!   (position, witness bounds, query counts, and — under class sharing —
//!   the resolved orbit-function verdicts).
//! * [`AnyIoProgress`] — that state, exported for checkpointing and
//!   restored bit-identically.
//!
//! Every path here reuses the crate root's planning (`plan_any_io`) and
//! verdict stitching (`any_io_verdicts`), so the invariant the one-shot
//! sweeps establish — verdicts, witnesses and query counts are identical
//! for every execution split — extends to paused/resumed and
//! warm-started runs by construction: SAT answers are mathematically
//! determined (extra learnt clauses and reset phases never flip one),
//! and query counts depend only on the serially-built work list and the
//! `best` skip rule.

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::VectorFunction;
use mvf_netlist::fingerprint::Fnv64;
use mvf_netlist::Netlist;
use mvf_obfuscate::ObfuscationSpace;
use mvf_sat::{CircuitCnf, Solver, Var};

use crate::screen::{ConfigScreen, ScreenOutcome};
use crate::{
    any_io_verdicts, apply_orbit_point, candidate_assumptions, plan_any_io, unrank_orbit_index,
    AnyIoOptions, AnyIoPlan, AnyIoVerdict, SweepOptions, SweepVerdict, UID_SAT, UID_UNKNOWN,
    UID_UNSAT,
};

/// Cached screens kept per session (small: screens are per candidate
/// batch, and a service replays the same batches).
const MAX_CACHED_SCREENS: usize = 4;

/// Serial cursor over a planned work list — the resumable core shared by
/// [`AnyIoJob`] and [`SweepSession::sweep_any_io`]. Mirrors the striped
/// worker loop (`any_io_stripe`) with a stride of one, so driving a
/// cursor to completion issues exactly the queries of the serial sweep.
#[derive(Debug, Clone)]
struct AnyIoCursor {
    pos: usize,
    best: Vec<usize>,
    queries: Vec<usize>,
    /// Per-uid SAT verdict cache (the serial twin of the stripe workers'
    /// shared atomic cache) — this is what lets class sharing skip
    /// repeat queries across a pause/resume split too.
    resolved: Vec<u8>,
    last_cand: u32,
}

impl AnyIoCursor {
    fn new(plan: &AnyIoPlan) -> AnyIoCursor {
        AnyIoCursor {
            pos: 0,
            best: plan.best_init.clone(),
            queries: vec![0; plan.best_init.len()],
            resolved: vec![UID_UNKNOWN; plan.n_uids],
            last_cand: u32::MAX,
        }
    }

    /// Visits up to `max_items` work items (skips count as visits) and
    /// returns how many were visited.
    fn step(
        &mut self,
        plan: &AnyIoPlan,
        candidates: &[VectorFunction],
        solver: &mut Solver,
        row_outputs: &[Vec<Var>],
        max_items: usize,
    ) -> usize {
        let end = plan.work.len().min(self.pos.saturating_add(max_items));
        let start = self.pos;
        let (mut unrank_tmp, mut in_perm, mut out_perm) = (Vec::new(), Vec::new(), Vec::new());
        let mut permuted_in = VectorFunction::new(0, Vec::new());
        let mut permuted = VectorFunction::new(0, Vec::new());
        let mut assumptions = Vec::new();
        while self.pos < end {
            let (c, index, uid) = plan.work[self.pos];
            self.pos += 1;
            let cand = c as usize;
            if self.best[cand] < index as usize {
                continue; // a smaller witness is already known
            }
            match self.resolved[uid as usize] {
                UID_SAT => {
                    // A class sibling already proved this orbit function
                    // satisfiable; the verdict transfers without a query.
                    self.best[cand] = self.best[cand].min(index as usize);
                    continue;
                }
                UID_UNSAT => continue,
                _ => {}
            }
            if c != self.last_cand {
                // Saved phases are a per-candidate heuristic; do not let
                // one candidate's UNSAT proof steer the next candidate's
                // search. (A resumed cursor resets on its first item —
                // phases are heuristics, so answers cannot change.)
                solver.reset_phases();
                self.last_cand = c;
            }
            let f = &candidates[cand];
            let (in_neg, out_neg) = unrank_orbit_index(
                index,
                f.n_inputs(),
                f.n_outputs(),
                plan.npn,
                &mut unrank_tmp,
                &mut in_perm,
                &mut out_perm,
            );
            apply_orbit_point(
                f,
                &in_perm,
                in_neg,
                &out_perm,
                out_neg,
                &mut permuted_in,
                &mut permuted,
            );
            candidate_assumptions(row_outputs, &permuted, &mut assumptions);
            self.queries[cand] += 1;
            let sat = solver.solve_with(&assumptions);
            if plan.shared {
                // Without batch-wide uids the cache can never hit — skip
                // the store so checkpoints stay free of dead weight.
                self.resolved[uid as usize] = if sat { UID_SAT } else { UID_UNSAT };
            }
            if sat {
                self.best[cand] = self.best[cand].min(index as usize);
            }
        }
        self.pos - start
    }
}

/// Exported progress of an [`AnyIoJob`] — everything a checkpoint needs.
///
/// The plan itself (work list, screening results) is *not* part of the
/// progress: it is rebuilt deterministically from the same netlist and
/// candidate batch on resume, and [`AnyIoJob::restore`] re-attaches this
/// state to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnyIoProgress {
    /// Work items already visited (next item index).
    pub pos: usize,
    /// Per-candidate smallest known satisfying orbit index
    /// (`usize::MAX` = none yet).
    pub best: Vec<usize>,
    /// Per-candidate SAT queries issued so far.
    pub queries: Vec<usize>,
    /// Resolved orbit-function verdicts `(uid, satisfiable)`, ascending
    /// by uid — the class-sharing verdict cache. Empty whenever class
    /// sharing is off (every uid is then visited at most once, so there
    /// is nothing a later item could reuse) and on pre-NPN checkpoints,
    /// which restore exactly as before.
    pub resolved: Vec<(u32, bool)>,
}

/// A pausable interpretation-freedom sweep: the planned work list is
/// processed serially in caller-sized chunks via [`step`](Self::step),
/// progress snapshots out through [`progress`](Self::progress), and a
/// rebuilt job resumes bit-identically via [`restore`](Self::restore).
///
/// Driven to completion in one go, a job issues exactly the queries of
/// [`plausibility_sweep_any_io_with`](crate::plausibility_sweep_any_io_with)
/// with `shards = 1`, and returns identical verdicts — paused and
/// resumed anywhere, still identical: every answer is mathematically
/// determined, and the visit order plus the `best` skip rule fix the
/// query counts.
pub struct AnyIoJob {
    plan: AnyIoPlan,
    candidates: Vec<VectorFunction>,
    solver: Solver,
    row_outputs: Vec<Vec<Var>>,
    cursor: AnyIoCursor,
}

impl AnyIoJob {
    /// Plans and encodes a standalone job (cold start — no session).
    ///
    /// `opts.shards` is ignored: a job is a serial cursor by design (its
    /// point is checkpointability, and serial visits make the resumed
    /// query counts exact).
    ///
    /// # Panics
    ///
    /// As [`plausibility_sweep_any_io`](crate::plausibility_sweep_any_io):
    /// candidate shape mismatches or an oversized orbit.
    pub fn new(
        nl: &Netlist,
        lib: &Library,
        camo: &CamoLibrary,
        candidates: Vec<VectorFunction>,
        opts: &AnyIoOptions,
    ) -> AnyIoJob {
        AnyIoJob::new_in(
            &ObfuscationSpace::camouflage(lib, camo),
            nl,
            candidates,
            opts,
        )
    }

    /// [`AnyIoJob::new`] over any [`ObfuscationSpace`] — the scheme-
    /// generic cold start; locking audits plan their jobs through here.
    ///
    /// # Panics
    ///
    /// See [`AnyIoJob::new`].
    pub fn new_in(
        space: &ObfuscationSpace<'_>,
        nl: &Netlist,
        candidates: Vec<VectorFunction>,
        opts: &AnyIoOptions,
    ) -> AnyIoJob {
        let screen = opts
            .screen
            .then(|| ConfigScreen::build_in(space, nl, &candidates, opts.screen_vectors))
            .flatten();
        let plan = plan_any_io(nl, &candidates, opts, screen.as_ref());
        let mut cnf = space.encode(nl);
        if opts.inprocess {
            cnf.freeze_interface();
            cnf.solver.simplify();
        }
        AnyIoJob::from_parts(plan, candidates, cnf.solver, cnf.row_outputs)
    }

    /// The solver's pre/inprocessing counters — what vivification,
    /// variable elimination and learnt-DB reduction have done to this
    /// job's clause database (warm-started jobs inherit the session
    /// solver's counters through [`Solver::clone_db`]).
    pub fn sat_stats(&self) -> mvf_sat::SimplifyStats {
        self.solver.simplify_stats()
    }

    pub(crate) fn from_parts(
        plan: AnyIoPlan,
        candidates: Vec<VectorFunction>,
        solver: Solver,
        row_outputs: Vec<Vec<Var>>,
    ) -> AnyIoJob {
        let cursor = AnyIoCursor::new(&plan);
        AnyIoJob {
            plan,
            candidates,
            solver,
            row_outputs,
            cursor,
        }
    }

    /// Total planned work items (screen survivors).
    pub fn total_work(&self) -> usize {
        self.plan.work.len()
    }

    /// Work items already visited.
    pub fn position(&self) -> usize {
        self.cursor.pos
    }

    /// Whether every work item has been visited.
    pub fn is_done(&self) -> bool {
        self.cursor.pos >= self.plan.work.len()
    }

    /// Visits up to `max_items` further work items (skipped items count)
    /// and returns how many were visited — `0` exactly when the job is
    /// done. Chunk size never affects the outcome.
    pub fn step(&mut self, max_items: usize) -> usize {
        self.cursor.step(
            &self.plan,
            &self.candidates,
            &mut self.solver,
            &self.row_outputs,
            max_items,
        )
    }

    /// Snapshots the complete resumable state.
    pub fn progress(&self) -> AnyIoProgress {
        AnyIoProgress {
            pos: self.cursor.pos,
            best: self.cursor.best.clone(),
            queries: self.cursor.queries.clone(),
            resolved: self
                .cursor
                .resolved
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != UID_UNKNOWN)
                .map(|(uid, &v)| (uid as u32, v == UID_SAT))
                .collect(),
        }
    }

    /// Re-attaches checkpointed progress to a freshly rebuilt job.
    /// Stepping on resumes the uninterrupted run bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if the progress does not fit this job's plan (wrong
    /// candidate count or a position past the work list) — the usual
    /// cause is a checkpoint from a different workload.
    pub fn restore(&mut self, progress: &AnyIoProgress) {
        assert_eq!(
            progress.best.len(),
            self.candidates.len(),
            "checkpoint candidate count does not match the job"
        );
        assert_eq!(
            progress.queries.len(),
            self.candidates.len(),
            "checkpoint candidate count does not match the job"
        );
        assert!(
            progress.pos <= self.plan.work.len(),
            "checkpoint position is past the job's work list"
        );
        self.cursor.pos = progress.pos;
        self.cursor.best = progress.best.clone();
        self.cursor.queries = progress.queries.clone();
        self.cursor.resolved = vec![UID_UNKNOWN; self.plan.n_uids];
        for &(uid, sat) in &progress.resolved {
            let slot = self
                .cursor
                .resolved
                .get_mut(uid as usize)
                .expect("checkpoint uid is past the job's verdict cache");
            *slot = if sat { UID_SAT } else { UID_UNSAT };
        }
        // Force a phase reset on the first resumed item: the fresh
        // solver's phase state differs from the interrupted run's, but
        // phases are heuristics — answers, and therefore verdicts and
        // query counts, are unaffected.
        self.cursor.last_cand = u32::MAX;
    }

    /// Stitches the final verdicts.
    ///
    /// # Panics
    ///
    /// Panics if the job is not [`is_done`](Self::is_done).
    pub fn verdicts(&self) -> Vec<AnyIoVerdict> {
        assert!(self.is_done(), "job has unvisited work items");
        any_io_verdicts(&self.plan, &self.cursor.best, &self.cursor.queries)
    }
}

/// One obfuscated netlist kept encoded across submissions.
///
/// A session pins the circuit by content fingerprint
/// ([`ObfuscationSpace::fingerprint`] — netlist structure, both
/// libraries' content **and the scheme tag**, so camouflage and locking
/// audits of byte-identical netlists never share a session), encodes it
/// once, and serves repeated sweeps from the same solver: learnt
/// clauses accumulate across calls (warm starts), and screen vector
/// batches are cached per candidate batch. Warm results are identical
/// to cold ones — including query counts — because screens are
/// rebuilt-or-cached deterministically and SAT answers are
/// mathematically determined.
pub struct SweepSession {
    key: u64,
    cnf: CircuitCnf,
    /// Recently used screens, most recent last, keyed by candidate
    /// batch + vector count.
    screens: Vec<(u64, ConfigScreen)>,
}

impl SweepSession {
    /// [`SweepSession::new_in`] for the camouflage scheme — the
    /// historical signature.
    pub fn new(nl: &Netlist, lib: &Library, camo: &CamoLibrary) -> SweepSession {
        SweepSession::new_in(&ObfuscationSpace::camouflage(lib, camo), nl)
    }

    /// Encodes `nl` once and fingerprints the space's `(scheme,
    /// netlist, libraries)` content as the session key.
    ///
    /// The encoding is interface-frozen and simplified up front
    /// (vivification + bounded variable elimination), matching the
    /// default `inprocess` option of the one-shot sweeps — so warm
    /// starts served from this session (including
    /// [`SweepSession::any_io_job`] clones) are bit-identical to their
    /// cold counterparts, query counts included.
    pub fn new_in(space: &ObfuscationSpace<'_>, nl: &Netlist) -> SweepSession {
        let mut cnf = space.encode(nl);
        cnf.freeze_interface();
        cnf.solver.simplify();
        SweepSession {
            key: space.fingerprint(nl),
            cnf,
            screens: Vec::new(),
        }
    }

    /// The session solver's pre/inprocessing counters (see
    /// [`AnyIoJob::sat_stats`]).
    pub fn sat_stats(&self) -> mvf_sat::SimplifyStats {
        self.cnf.solver.simplify_stats()
    }

    /// The session's content fingerprint.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Whether this session was built from exactly this circuit under
    /// the camouflage scheme.
    pub fn matches(&self, nl: &Netlist, lib: &Library, camo: &CamoLibrary) -> bool {
        self.matches_in(&ObfuscationSpace::camouflage(lib, camo), nl)
    }

    /// Whether this session was built from exactly this circuit under
    /// exactly this space (scheme tag included).
    pub fn matches_in(&self, space: &ObfuscationSpace<'_>, nl: &Netlist) -> bool {
        self.key == space.fingerprint(nl)
    }

    /// Approximate heap footprint of the retained state (clause arena,
    /// watch lists, learnt metadata, cached screens), for cache byte
    /// budgets.
    pub fn db_bytes(&self) -> usize {
        self.cnf.solver.db_bytes() + self.screens.iter().map(|(_, s)| s.bytes()).sum::<usize>()
    }

    /// Identity-interpretation sweep on the session solver — the warm
    /// equivalent of
    /// [`plausibility_sweep_with`](crate::plausibility_sweep_with) with
    /// `shards = 1`; learnt clauses persist into later calls.
    ///
    /// # Panics
    ///
    /// Panics on candidate shape mismatches or a circuit that does not
    /// match the session fingerprint.
    pub fn sweep_identity(
        &mut self,
        nl: &Netlist,
        lib: &Library,
        camo: &CamoLibrary,
        candidates: &[VectorFunction],
        opts: &SweepOptions,
    ) -> Vec<SweepVerdict> {
        self.sweep_identity_in(
            &ObfuscationSpace::camouflage(lib, camo),
            nl,
            candidates,
            opts,
        )
    }

    /// [`SweepSession::sweep_identity`] over any [`ObfuscationSpace`].
    ///
    /// # Panics
    ///
    /// As [`SweepSession::sweep_identity`].
    pub fn sweep_identity_in(
        &mut self,
        space: &ObfuscationSpace<'_>,
        nl: &Netlist,
        candidates: &[VectorFunction],
        opts: &SweepOptions,
    ) -> Vec<SweepVerdict> {
        self.check(space, nl);
        for candidate in candidates {
            assert_eq!(
                candidate.n_inputs(),
                nl.inputs().len(),
                "input arity mismatch"
            );
            assert_eq!(
                candidate.n_outputs(),
                nl.outputs().len(),
                "output arity mismatch"
            );
        }
        let mut verdicts: Vec<Option<SweepVerdict>> = vec![None; candidates.len()];
        let mut pending: Vec<usize> = Vec::new();
        let screen = opts
            .screen
            .then(|| self.screen_for(space, nl, candidates, opts.screen_vectors))
            .flatten();
        if let Some(screen) = screen {
            for (j, candidate) in candidates.iter().enumerate() {
                match screen.classify_identity(candidate) {
                    ScreenOutcome::Refuted => {
                        verdicts[j] = Some(SweepVerdict {
                            plausible: false,
                            screened: true,
                        });
                    }
                    ScreenOutcome::Confirmed => {
                        verdicts[j] = Some(SweepVerdict {
                            plausible: true,
                            screened: true,
                        });
                    }
                    ScreenOutcome::Unknown => pending.push(j),
                }
            }
        } else {
            pending.extend(0..candidates.len());
        }
        let mut assumptions = Vec::new();
        for &j in &pending {
            // Per-candidate phase hygiene, exactly as the one-shot sweep.
            self.cnf.solver.reset_phases();
            candidate_assumptions(&self.cnf.row_outputs, &candidates[j], &mut assumptions);
            verdicts[j] = Some(SweepVerdict {
                plausible: self.cnf.solver.solve_with(&assumptions),
                screened: false,
            });
        }
        verdicts
            .into_iter()
            .map(|v| v.expect("every candidate is resolved by screen or solver"))
            .collect()
    }

    /// Interpretation-freedom sweep on the session solver — the warm
    /// equivalent of
    /// [`plausibility_sweep_any_io_with`](crate::plausibility_sweep_any_io_with)
    /// with `shards = 1` (`opts.shards` is ignored); learnt clauses
    /// persist into later calls.
    ///
    /// # Panics
    ///
    /// As [`plausibility_sweep_any_io`](crate::plausibility_sweep_any_io),
    /// plus a circuit that does not match the session fingerprint.
    pub fn sweep_any_io(
        &mut self,
        nl: &Netlist,
        lib: &Library,
        camo: &CamoLibrary,
        candidates: &[VectorFunction],
        opts: &AnyIoOptions,
    ) -> Vec<AnyIoVerdict> {
        self.sweep_any_io_in(
            &ObfuscationSpace::camouflage(lib, camo),
            nl,
            candidates,
            opts,
        )
    }

    /// [`SweepSession::sweep_any_io`] over any [`ObfuscationSpace`].
    ///
    /// # Panics
    ///
    /// As [`SweepSession::sweep_any_io`].
    pub fn sweep_any_io_in(
        &mut self,
        space: &ObfuscationSpace<'_>,
        nl: &Netlist,
        candidates: &[VectorFunction],
        opts: &AnyIoOptions,
    ) -> Vec<AnyIoVerdict> {
        self.check(space, nl);
        if candidates.is_empty() {
            return Vec::new();
        }
        let plan = self.plan(space, nl, candidates, opts);
        let mut cursor = AnyIoCursor::new(&plan);
        cursor.step(
            &plan,
            candidates,
            &mut self.cnf.solver,
            &self.cnf.row_outputs,
            usize::MAX,
        );
        any_io_verdicts(&plan, &cursor.best, &cursor.queries)
    }

    /// Plans a detachable [`AnyIoJob`] warm-started from this session:
    /// the job's solver is a [`Solver::clone_db`] clone, so it carries
    /// every learnt clause the session has accumulated, and the screen
    /// comes from the session cache. The session itself stays available.
    ///
    /// # Panics
    ///
    /// As [`sweep_any_io`](Self::sweep_any_io).
    pub fn any_io_job(
        &mut self,
        nl: &Netlist,
        lib: &Library,
        camo: &CamoLibrary,
        candidates: &[VectorFunction],
        opts: &AnyIoOptions,
    ) -> AnyIoJob {
        self.any_io_job_in(
            &ObfuscationSpace::camouflage(lib, camo),
            nl,
            candidates,
            opts,
        )
    }

    /// [`SweepSession::any_io_job`] over any [`ObfuscationSpace`].
    ///
    /// # Panics
    ///
    /// As [`SweepSession::any_io_job`].
    pub fn any_io_job_in(
        &mut self,
        space: &ObfuscationSpace<'_>,
        nl: &Netlist,
        candidates: &[VectorFunction],
        opts: &AnyIoOptions,
    ) -> AnyIoJob {
        self.check(space, nl);
        let plan = self.plan(space, nl, candidates, opts);
        AnyIoJob::from_parts(
            plan,
            candidates.to_vec(),
            self.cnf.solver.clone_db(),
            self.cnf.row_outputs.clone(),
        )
    }

    fn check(&self, space: &ObfuscationSpace<'_>, nl: &Netlist) {
        assert!(
            self.matches_in(space, nl),
            "circuit does not match the session fingerprint"
        );
    }

    fn plan(
        &mut self,
        space: &ObfuscationSpace<'_>,
        nl: &Netlist,
        candidates: &[VectorFunction],
        opts: &AnyIoOptions,
    ) -> AnyIoPlan {
        let screen = opts
            .screen
            .then(|| self.screen_for(space, nl, candidates, opts.screen_vectors))
            .flatten();
        plan_any_io(nl, candidates, opts, screen)
    }

    /// The cached screen for this candidate batch, building (and
    /// evicting the least recently used entry) on a miss. Sound because
    /// [`ConfigScreen::build_in`] is deterministic in `(circuit,
    /// candidates, n_vectors)` — a hit returns exactly what a rebuild
    /// would.
    fn screen_for(
        &mut self,
        space: &ObfuscationSpace<'_>,
        nl: &Netlist,
        candidates: &[VectorFunction],
        n_vectors: usize,
    ) -> Option<&ConfigScreen> {
        let key = screen_key(candidates, n_vectors);
        if let Some(i) = self.screens.iter().position(|(k, _)| *k == key) {
            let hit = self.screens.remove(i);
            self.screens.push(hit);
        } else {
            let built = ConfigScreen::build_in(space, nl, candidates, n_vectors)?;
            self.screens.push((key, built));
            if self.screens.len() > MAX_CACHED_SCREENS {
                self.screens.remove(0);
            }
        }
        Some(&self.screens.last().expect("just pushed or moved").1)
    }
}

/// Content key of a screen: the candidate batch's lookup tables plus the
/// requested vector count (both of which `CamoScreen::build` is a pure
/// function of, given the session's fixed circuit).
fn screen_key(candidates: &[VectorFunction], n_vectors: usize) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(n_vectors);
    h.write_usize(candidates.len());
    for c in candidates {
        h.write_usize(c.n_inputs());
        h.write_usize(c.n_outputs());
        for t in c.outputs() {
            for &w in t.words() {
                h.write_u64(w);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        plausibility_sweep_any_io_with, plausibility_sweep_with, random_camouflage, SweepOptions,
    };
    use mvf_sboxes::optimal_sboxes;

    fn setup() -> (Library, CamoLibrary) {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        (lib, camo)
    }

    #[test]
    fn session_identity_sweep_matches_one_shot_warm_and_cold() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let candidates = boxes[..5].to_vec();
        let opts = SweepOptions::default();
        let cold = plausibility_sweep_with(&circuit, &lib, &camo, &candidates, &opts);
        let mut session = SweepSession::new(&circuit, &lib, &camo);
        let first = session.sweep_identity(&circuit, &lib, &camo, &candidates, &opts);
        assert_eq!(first, cold, "cold session sweep differs from one-shot");
        // Second pass: warm solver, cached screen — identical verdicts.
        let second = session.sweep_identity(&circuit, &lib, &camo, &candidates, &opts);
        assert_eq!(second, cold, "warm session sweep differs from one-shot");
    }

    #[test]
    fn session_any_io_sweep_matches_one_shot_warm_and_cold() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let candidates = boxes[..3].to_vec();
        let opts = AnyIoOptions::default();
        let cold = plausibility_sweep_any_io_with(&circuit, &lib, &camo, &candidates, &opts);
        let mut session = SweepSession::new(&circuit, &lib, &camo);
        let first = session.sweep_any_io(&circuit, &lib, &camo, &candidates, &opts);
        assert_eq!(first, cold, "cold session sweep differs from one-shot");
        let second = session.sweep_any_io(&circuit, &lib, &camo, &candidates, &opts);
        assert_eq!(
            second, cold,
            "warm session sweep differs from one-shot (queries included)"
        );
    }

    #[test]
    fn job_run_to_completion_matches_serial_sweep() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let candidates = boxes[..3].to_vec();
        let opts = AnyIoOptions::default();
        let serial = plausibility_sweep_any_io_with(&circuit, &lib, &camo, &candidates, &opts);
        let mut job = AnyIoJob::new(&circuit, &lib, &camo, candidates, &opts);
        while job.step(7) > 0 {}
        assert!(job.is_done());
        assert_eq!(job.verdicts(), serial);
    }

    #[test]
    fn job_resumed_at_every_boundary_is_bit_identical() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let candidates = boxes[..2].to_vec();
        let opts = AnyIoOptions::default();
        let mut reference = AnyIoJob::new(&circuit, &lib, &camo, candidates.clone(), &opts);
        reference.step(usize::MAX);
        let expected = reference.verdicts();
        let total = reference.total_work();
        // Kill after every possible chunk boundary (chunk size 3), throw
        // the job away, rebuild from scratch, restore, finish.
        let mut killed = AnyIoJob::new(&circuit, &lib, &camo, candidates.clone(), &opts);
        let mut boundaries = 0;
        loop {
            let advanced = killed.step(3) > 0;
            boundaries += 1;
            let checkpoint = killed.progress();
            let mut resumed = AnyIoJob::new(&circuit, &lib, &camo, candidates.clone(), &opts);
            resumed.restore(&checkpoint);
            assert_eq!(resumed.position(), killed.position());
            resumed.step(usize::MAX);
            assert_eq!(
                resumed.verdicts(),
                expected,
                "resume at position {} of {total} diverged",
                checkpoint.pos
            );
            if !advanced {
                break;
            }
        }
        assert!(boundaries >= 2, "corpus too small to exercise resume");
    }

    #[test]
    fn warm_job_from_session_matches_cold_job() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let candidates = boxes[..2].to_vec();
        let opts = AnyIoOptions::default();
        let mut cold = AnyIoJob::new(&circuit, &lib, &camo, candidates.clone(), &opts);
        cold.step(usize::MAX);
        let mut session = SweepSession::new(&circuit, &lib, &camo);
        // Heat the session up first; the job still matches the cold run.
        session.sweep_identity(&circuit, &lib, &camo, &candidates, &SweepOptions::default());
        let mut warm = session.any_io_job(&circuit, &lib, &camo, &candidates, &opts);
        warm.step(usize::MAX);
        assert_eq!(warm.verdicts(), cold.verdicts());
    }

    #[test]
    fn session_rejects_a_different_circuit() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let other = random_camouflage(&boxes[1], &lib, &camo).unwrap();
        let mut session = SweepSession::new(&circuit, &lib, &camo);
        assert!(session.matches(&circuit, &lib, &camo));
        assert!(!session.matches(&other, &lib, &camo));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.sweep_identity(&other, &lib, &camo, &boxes[..1], &SweepOptions::default())
        }));
        assert!(result.is_err(), "mismatched circuit must be rejected");
    }

    #[test]
    fn session_reports_a_nonzero_footprint() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let mut session = SweepSession::new(&circuit, &lib, &camo);
        let fresh = session.db_bytes();
        assert!(fresh > 0);
        session.sweep_identity(&circuit, &lib, &camo, &boxes[..3], &SweepOptions::default());
        assert!(
            session.db_bytes() >= fresh,
            "sweeping must not shrink the accounted footprint"
        );
    }
}
