//! SAT-free probabilistic screening: the simulate-first half of the
//! screen-then-solve funnel.
//!
//! Before any plausibility query reaches the solver, the obfuscated
//! netlist is evaluated **once** on a batch of input vectors with every
//! enumerable configuration of its [`ObfuscationSpace`] carried as
//! extra word-parallel variables
//! ([`ObfuscationSpace::eval_vectors`]). A candidate is compared
//! against the cached per-config output words; a configuration that
//! disagrees on any sampled vector is cleared from the candidate's
//! surviving-config mask, and an **empty mask refutes the candidate
//! with zero SAT calls** — soundly, because the SAT encoding's
//! configuration space is exactly the per-site product the screen
//! enumerates (one independent exactly-one selector group per
//! obfuscated site). The screen never looks at what the sites *mean* —
//! doping-programmable camouflage cells and key gates screen through
//! the identical code path.
//!
//! Because circuit evaluation is permutation-independent, the same
//! cached batch serves every candidate of a sweep *and* every
//! `(in_perm, out_perm)` orbit point: comparing a permuted candidate is
//! a permuted-index gather against the cached words, not a re-simulation.
//!
//! Two regimes, both verdict-preserving:
//!
//! * **complete** — the vector batch covers all `2^n_in` minterms, so
//!   agreement on the batch *is* functional equality: the screen both
//!   refutes and confirms, and a confirmed orbit representative is the
//!   witness (every smaller representative was exactly refuted first);
//! * **sampling** — fewer vectors than minterms (deterministic SplitMix64
//!   stream seeded from the candidate batch): the screen only refutes,
//!   and surviving candidates fall through to SAT unchanged.
//!
//! When the configuration product exceeds [`MAX_SCREEN_CONFIGS`] (real
//! mapped circuits camouflage dozens of cells, each with 3–5 plausible
//! functions) the screen stands down and the sweep is SAT-only —
//! trivially bit-identical to screening disabled.

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::{VectorFunction, MAX_VARS};
use mvf_netlist::Netlist;
use mvf_obfuscate::ObfuscationSpace;

/// Hard cap on the enumerable configuration product: above this the
/// screen disables itself rather than enumerate an exponential space.
pub const MAX_SCREEN_CONFIGS: usize = 4096;

/// Default screening batch size (vectors per candidate comparison).
/// Overridable per sweep via the options structs and, for the bench
/// harness, the `MVF_SCREEN_VECTORS` env knob.
pub const DEFAULT_SCREEN_VECTORS: usize = 256;

/// One SplitMix64 step — the same generator the workload seeding uses,
/// so screening vectors are deterministic functions of their seed alone.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds the candidate batch's truth-table words into the stream seed:
/// the same sweep over the same candidates screens with the same
/// vectors, regardless of process or host.
fn batch_seed(candidates: &[VectorFunction]) -> u64 {
    let mut seed = 0x5EED_5C2E_E45C_2EE5u64;
    for f in candidates {
        for tt in f.outputs() {
            for &w in tt.words() {
                seed = splitmix64(seed ^ w);
            }
        }
    }
    seed
}

/// What the screen decided for one candidate (or orbit representative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScreenOutcome {
    /// Every enumerated configuration disagreed on a sampled vector:
    /// refuted, no SAT call needed. Sound in both regimes.
    Refuted,
    /// Some configuration agreed on *all* minterms (complete regime
    /// only): plausible, no SAT call needed.
    Confirmed,
    /// Survivors remain but the batch is sampled: the solver decides.
    Unknown,
}

/// The cached batch evaluation shared by every comparison of one sweep.
/// Scheme-generic: configurations come from the sweep's
/// [`ObfuscationSpace`], so the same screen serves camouflage and
/// locking alike.
pub struct ConfigScreen {
    /// `out_words[j][o][w]`: bit `b` is output `o` of the circuit under
    /// configuration `j` on input `vectors[64 w + b]`.
    out_words: Vec<Vec<Vec<u64>>>,
    /// The screening input vectors (each below `2^n_in`).
    vectors: Vec<u64>,
    /// Whether `vectors` covers every minterm (exact screening).
    complete: bool,
    n_out: usize,
}

/// The screen's historical (camouflage-era) name, kept as an alias so
/// existing call sites and test corpora compile unchanged.
pub type CamoScreen = ConfigScreen;

/// Per-candidate scratch for orbit screening: the permuted-index gather
/// is cached per input permutation, the candidate columns per
/// `(input permutation, input negation)` — output permutations only
/// re-select columns and output negations are compare-time XOR masks —
/// and everything is reset between candidates.
pub(crate) struct OrbitScreenScratch {
    /// `ys[m]`: the `in_perm`-gathered image of `vectors[m]` in the
    /// candidate's input frame (negation not yet applied).
    ys: Vec<usize>,
    /// `cols[i][w]`: bit `b` is `f.output(i)` evaluated at
    /// `ys[64 w + b] ^ cur_neg`.
    cols: Vec<Vec<u64>>,
    /// Flat orbit rank of the input permutation `ys` was built for
    /// (`u64::MAX` = none yet).
    cur_ip: u64,
    /// Input negation mask `cols` was built for (`u64::MAX` = none yet).
    cur_neg: u64,
    inv_op: Vec<usize>,
}

impl OrbitScreenScratch {
    pub(crate) fn new() -> Self {
        OrbitScreenScratch {
            ys: Vec::new(),
            cols: Vec::new(),
            cur_ip: u64::MAX,
            cur_neg: u64::MAX,
            inv_op: Vec::new(),
        }
    }

    /// Invalidates the caches (call between candidates).
    pub(crate) fn reset(&mut self) {
        self.cur_ip = u64::MAX;
        self.cur_neg = u64::MAX;
    }
}

impl ConfigScreen {
    /// [`ConfigScreen::build_in`] for the camouflage scheme — the
    /// historical signature, delegating through
    /// [`ObfuscationSpace::camouflage`].
    pub fn build(
        nl: &Netlist,
        lib: &Library,
        camo: &CamoLibrary,
        candidates: &[VectorFunction],
        n_vectors: usize,
    ) -> Option<ConfigScreen> {
        ConfigScreen::build_in(
            &ObfuscationSpace::camouflage(lib, camo),
            nl,
            candidates,
            n_vectors,
        )
    }

    /// Builds the screen for one sweep: enumerates the space's
    /// configuration product (bailing to `None` past
    /// [`MAX_SCREEN_CONFIGS`]), draws the vector batch — all minterms
    /// when they fit (`complete`), a SplitMix64 sample seeded from the
    /// candidate batch otherwise — and evaluates the netlist once for
    /// every `(configuration, vector)` pair.
    pub fn build_in(
        space: &ObfuscationSpace<'_>,
        nl: &Netlist,
        candidates: &[VectorFunction],
        n_vectors: usize,
    ) -> Option<ConfigScreen> {
        let n_in = nl.inputs().len();
        if n_in == 0 || n_in > MAX_VARS {
            return None;
        }
        let configs = space.enumerate_configs(nl, MAX_SCREEN_CONFIGS)?;
        // Normalize the batch size to the simulator's contract: a power
        // of two with at least one full word per configuration block.
        let requested = n_vectors.next_power_of_two().clamp(64, 1usize << MAX_VARS);
        let minterms = 1usize << n_in;
        let (complete, vectors): (bool, Vec<u64>) = if minterms <= requested {
            // Complete regime: cycle the minterms up to word granularity
            // so the batch stays as small as exactness allows.
            let v = minterms.max(64);
            (true, (0..v as u64).map(|m| m % minterms as u64).collect())
        } else {
            let mask = (1u64 << n_in) - 1;
            let seed = batch_seed(candidates);
            (
                false,
                (0..requested as u64)
                    .map(|i| splitmix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & mask)
                    .collect(),
            )
        };
        let out_words = space
            .eval_vectors(nl, &configs, &vectors)
            .expect("enumerated configurations are plausible by construction");
        Some(ConfigScreen {
            out_words,
            vectors,
            complete,
            n_out: nl.outputs().len(),
        })
    }

    /// The surviving-config mask of `candidate` under the identity
    /// interpretation: `mask[j]` is `true` iff configuration `j` agrees
    /// with the candidate on every screening vector. Configurations are
    /// indexed over the camouflaged cells in netlist topological order —
    /// the last cell varying fastest — with each cell's plausible set in
    /// its sorted order. Exposed so tests can cross-check the mask
    /// against exhaustive per-configuration circuit evaluation.
    pub fn survivors(&self, candidate: &VectorFunction) -> Vec<bool> {
        let want = self.identity_columns(candidate);
        self.out_words
            .iter()
            .map(|per_cfg| per_cfg.iter().zip(&want).all(|(got, w)| got == w))
            .collect()
    }

    /// Screens `candidate` under the identity interpretation.
    pub(crate) fn classify_identity(&self, candidate: &VectorFunction) -> ScreenOutcome {
        let want = self.identity_columns(candidate);
        self.classify_against(&want)
    }

    /// Screens the NPN orbit point `(in_perm, in_neg, out_perm,
    /// out_neg)` of `candidate`: equivalent to
    /// [`classify_identity`](Self::classify_identity) on
    /// `candidate.negate_inputs(in_neg).permute_inputs(ip)
    /// .permute_outputs(op).negate_outputs(out_neg)`, but served from
    /// the cached batch. The permuted-index gather is cached per
    /// `ip_rank`, candidate columns per `(ip_rank, in_neg)`; output
    /// permutations re-select columns and output negations are
    /// compare-time XOR masks, so polarity points cost no re-evaluation
    /// of the batch.
    pub(crate) fn classify_orbit(
        &self,
        candidate: &VectorFunction,
        ip_rank: u64,
        in_perm: &[usize],
        in_neg: u32,
        out_perm: &[usize],
        out_neg: u32,
        scratch: &mut OrbitScreenScratch,
    ) -> ScreenOutcome {
        let wpv = self.vectors.len() / 64;
        if scratch.cur_ip != ip_rank {
            // h = f.permute_inputs(ip) means h(x) = f(y) with bit v of
            // y equal to bit ip[v] of x — gather once per in-perm.
            scratch.ys.clear();
            scratch.ys.extend(self.vectors.iter().map(|&x| {
                let mut y = 0usize;
                for (v, &src) in in_perm.iter().enumerate() {
                    y |= (((x >> src) & 1) as usize) << v;
                }
                y
            }));
            scratch.cur_ip = ip_rank;
            scratch.cur_neg = u64::MAX;
        }
        if scratch.cur_neg != u64::from(in_neg) {
            // The gathered y is already in the candidate's input frame,
            // which is exactly where the (pre-permutation) negation
            // mask lives — apply it as a plain XOR and evaluate all
            // outputs in one pass.
            if scratch.cols.len() == self.n_out {
                for col in &mut scratch.cols {
                    col.clear();
                    col.resize(wpv, 0);
                }
            } else {
                scratch.cols.clear();
                scratch.cols.resize_with(self.n_out, || vec![0u64; wpv]);
            }
            for (m, &y) in scratch.ys.iter().enumerate() {
                let e = candidate.eval(y ^ in_neg as usize);
                for (i, col) in scratch.cols.iter_mut().enumerate() {
                    col[m / 64] |= u64::from((e >> i) & 1) << (m % 64);
                }
            }
            scratch.cur_neg = u64::from(in_neg);
        }
        // Output permutation: output o of the permuted candidate is
        // original output inv_op[o], a pure column re-selection.
        scratch.inv_op.clear();
        scratch.inv_op.resize(out_perm.len(), 0);
        for (i, &dst) in out_perm.iter().enumerate() {
            scratch.inv_op[dst] = i;
        }
        // Output negation flips the whole column; the batch is always a
        // whole number of fully-populated 64-bit words, so an XOR with
        // all-ones is exact.
        let survivor = self.out_words.iter().any(|per_cfg| {
            per_cfg.iter().enumerate().all(|(o, got)| {
                let col = &scratch.cols[scratch.inv_op[o]];
                let flip = if out_neg >> o & 1 == 1 { !0u64 } else { 0 };
                got.iter().zip(col).all(|(&g, &c)| g == c ^ flip)
            })
        });
        self.outcome(survivor)
    }

    /// Approximate heap footprint of the cached evaluation batch in
    /// bytes, for session-cache accounting.
    pub fn bytes(&self) -> usize {
        let words: usize = self
            .out_words
            .iter()
            .map(|cfg| cfg.iter().map(Vec::len).sum::<usize>())
            .sum();
        (words + self.vectors.len()) * std::mem::size_of::<u64>()
    }

    /// Whether the batch covers every minterm (the screen is exact).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Vectors per comparison (the batch length).
    pub fn n_vectors(&self) -> usize {
        self.vectors.len()
    }

    /// The candidate's per-output column words on the screening batch.
    fn identity_columns(&self, candidate: &VectorFunction) -> Vec<Vec<u64>> {
        let wpv = self.vectors.len() / 64;
        let mut cols = vec![vec![0u64; wpv]; self.n_out];
        for (m, &x) in self.vectors.iter().enumerate() {
            let e = candidate.eval(x as usize);
            for (i, col) in cols.iter_mut().enumerate() {
                col[m / 64] |= u64::from((e >> i) & 1) << (m % 64);
            }
        }
        cols
    }

    fn classify_against(&self, want: &[Vec<u64>]) -> ScreenOutcome {
        let survivor = self
            .out_words
            .iter()
            .any(|per_cfg| per_cfg.iter().zip(want).all(|(got, w)| got == w));
        self.outcome(survivor)
    }

    fn outcome(&self, survivor: bool) -> ScreenOutcome {
        match (survivor, self.complete) {
            (false, _) => ScreenOutcome::Refuted,
            (true, true) => ScreenOutcome::Confirmed,
            (true, false) => ScreenOutcome::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_stream_is_deterministic_and_batch_seeded() {
        let f = VectorFunction::from_lookup_table(3, 3, &[1, 0, 3, 2, 5, 7, 6, 4]).unwrap();
        let g = VectorFunction::from_lookup_table(3, 3, &[0, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        let one_f = std::slice::from_ref(&f);
        assert_eq!(batch_seed(one_f), batch_seed(one_f));
        assert_ne!(batch_seed(one_f), batch_seed(std::slice::from_ref(&g)));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn config_enumeration_caps_the_product() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        // An empty netlist has product 1: exactly one (empty) config.
        let mut nl = Netlist::new("wire".to_string());
        let a = nl.add_input("a".to_string());
        nl.add_output("y".to_string(), a);
        let space = ObfuscationSpace::camouflage(&lib, &camo);
        let configs = space.enumerate_configs(&nl, MAX_SCREEN_CONFIGS).unwrap();
        assert_eq!(configs.len(), 1);
        assert!(configs[0].is_empty());
    }
}
