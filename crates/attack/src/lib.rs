//! The adversary of the paper's §I: plausibility testing of viable
//! functions against a camouflaged netlist.
//!
//! The attacker has imaged the delayered chip, identified every cell
//! (including the camouflaged look-alikes and their plausible-function
//! sets) and knows a list of viable functions. For each viable function
//! she asks: *is there a doping configuration under which the circuit
//! implements it?* — an ∃∀ query (ref. \[14\]'s QBF formulation) decided
//! here by input-unrolled SAT over the configuration selectors
//! ([`is_plausible`]).
//!
//! Because the designer is also free to permute I/O pins — and to route
//! any pin through an inverter — the adversary must consider a function
//! plausible if **some** input/output interpretation works
//! ([`is_plausible_any_io`]). At scale that search runs as
//! [`plausibility_sweep_any_io`] / [`plausibility_sweep_any_io_sharded`]:
//! one encoding, a lazily enumerated interpretation orbit pruned by
//! canonical candidate signatures (pin symmetries collapse whole
//! interpretation classes to one query), and the surviving queries
//! striped over cloned solvers — with verdicts and witness
//! interpretations bit-identical for every shard count. The orbit is the
//! permutation group `n_in!·n_out!` by default and the full NPN group
//! `n_in!·2^n_in·n_out!·2^n_out` with [`AnyIoOptions::npn`]; with
//! [`AnyIoOptions::class_share`] the batch is additionally grouped into
//! NPN classes so orbit functions shared between candidates are screened
//! and SAT-queried once per batch instead of once per candidate.
//!
//! Every sweep runs behind a **screen-then-solve funnel** ([`screen`]
//! module): one word-parallel batch evaluation of the netlist over all
//! enumerable doping configurations refutes the obvious chaff — and, when
//! the batch covers every minterm, confirms witnesses — before a single
//! SAT query is issued. Screening never changes a verdict or a witness,
//! only the [`AnyIoVerdict::queries`] count; [`AnyIoVerdict::screened`]
//! reports how much the solver never saw.
//!
//! [`random_camouflage`] builds the paper's strawman — camouflage every
//! gate of a single-function circuit — whose plausible set, while
//! exponentially large, almost never contains the *other* viable
//! functions. The integration tests demonstrate exactly that separation.
//!
//! # Example
//!
//! ```
//! use mvf_attack::{is_plausible, random_camouflage};
//! use mvf_cells::{CamoLibrary, Library};
//! use mvf_sboxes::optimal_sboxes;
//!
//! let lib = Library::standard();
//! let camo = CamoLibrary::from_library(&lib);
//! let f0 = &optimal_sboxes()[0];
//! let circuit = random_camouflage(f0, &lib, &camo)?;
//! // The true function is always plausible for its own camouflaged
//! // netlist.
//! assert!(is_plausible(&circuit, &lib, &camo, f0));
//! # Ok::<(), mvf_attack::AttackError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod screen;
pub mod session;

pub use screen::{CamoScreen, ConfigScreen, DEFAULT_SCREEN_VECTORS};
use screen::{OrbitScreenScratch, ScreenOutcome};
pub use session::{AnyIoJob, AnyIoProgress, SweepSession};

pub use mvf_obfuscate::{ObfuscationSpace, SchemeKind};
pub use mvf_sat::SimplifyStats;

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::npn::{NegationMasks, Permutations};
use mvf_logic::{IoInterpretation, VectorFunction};
use mvf_netlist::{CellRef, Netlist};
use mvf_sat::{Lit, Solver, Var};

/// Rebuilds `out` with the assumptions forcing the encoded circuit to
/// equal `candidate` on every input row: output `o` of row `m` is pinned
/// to bit `o` of `candidate(m)`. Shared by every plausibility query so
/// the encoding contract lives in one place.
pub(crate) fn candidate_assumptions(
    row_outputs: &[Vec<Var>],
    candidate: &VectorFunction,
    out: &mut Vec<Lit>,
) {
    out.clear();
    for (m, row) in row_outputs.iter().enumerate() {
        let want = candidate.eval(m);
        for (o, &v) in row.iter().enumerate() {
            out.push(Lit::with_polarity(v, (want >> o) & 1 == 1));
        }
    }
}

/// Errors from attack-model construction.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// Building the reference circuit failed.
    Build(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Build(e) => write!(f, "building attack target failed: {e}"),
        }
    }
}

impl Error for AttackError {}

/// Decides whether `candidate` is plausible for the camouflaged netlist
/// under the *fixed* (identity) pin interpretation: does some doping
/// configuration make the circuit equal `candidate` on every input?
///
/// Routed through the sweep machinery ([`plausibility_sweep`]) so the
/// single-candidate helper shares the batched path's encoding contract
/// and screen-then-solve funnel instead of re-implementing them.
///
/// # Panics
///
/// Panics if the candidate's shape does not match the netlist.
pub fn is_plausible(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidate: &VectorFunction,
) -> bool {
    plausibility_sweep(nl, lib, camo, std::slice::from_ref(candidate))[0]
}

/// Decides plausibility under the paper's interpretation freedom: the
/// adversary does not know which wire carries which logical signal, so
/// `candidate` is plausible if it is plausible under **some** input and
/// output permutation.
///
/// This is the single-candidate form of [`plausibility_sweep_any_io`]:
/// one encoding, a lazily enumerated `(in_perm, out_perm)` orbit pruned
/// by canonical candidate signatures, and incremental SAT calls for the
/// surviving representatives.
///
/// # Panics
///
/// Panics if the candidate's shape does not match the netlist, or if
/// the `n_in!·n_out!` orbit overflows the sweep's `u32` indices (the
/// enumeration is exhaustive, so far smaller orbits are the practical
/// limit anyway).
pub fn is_plausible_any_io(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidate: &VectorFunction,
) -> bool {
    plausibility_sweep_any_io(nl, lib, camo, std::slice::from_ref(candidate))[0].plausible
}

/// Options for the interpretation-freedom sweep
/// ([`plausibility_sweep_any_io_with`]).
#[derive(Debug, Clone)]
pub struct AnyIoOptions {
    /// Worker shards striping the permutation space over
    /// [`mvf_sat::Solver::clone_db`] clones. `0` uses the available
    /// hardware parallelism; `<= 1` runs serially. Verdicts and witness
    /// permutations are bit-identical for every value.
    pub shards: usize,
    /// Prunes the orbit with canonical candidate signatures: two
    /// permutation pairs yielding the same permuted truth-table vector
    /// are queried once (the first pair in enumeration order represents
    /// the whole class, so a refutation of the representative refutes
    /// every member). Never changes a verdict or a witness; `false` is
    /// the brute-force baseline for tests and benches.
    pub prune: bool,
    /// Runs the SAT-free screen in front of the solver
    /// ([`CamoScreen`]): one word-parallel batch evaluation over all
    /// enumerable doping configurations refutes (and, in the complete
    /// regime, confirms) orbit representatives before any SAT query.
    /// Never changes a verdict or a witness; automatically stands down
    /// when the configuration product is too large to enumerate.
    pub screen: bool,
    /// Screening batch size (normalized to a power of two in
    /// `64 ..= 2^16`); when the batch covers every input minterm the
    /// screen is exact. Larger batches refute more chaff per build at
    /// higher screening cost. Defaults to [`DEFAULT_SCREEN_VECTORS`].
    pub screen_vectors: usize,
    /// Freezes the encoding's interface and runs
    /// [`mvf_sat::Solver::simplify`] (vivification + bounded variable
    /// elimination) once after encoding, so every query of the orbit
    /// amortizes the simplified clause database. Never changes a
    /// verdict or a witness (verdicts are mathematically determined);
    /// `false` is the unsimplified baseline for tests and benches.
    pub inprocess: bool,
    /// Extends the interpretation orbit from the permutation subgroup
    /// (`n_in!·n_out!`) to the full NPN group
    /// (`n_in!·2^n_in·n_out!·2^n_out`): the adversary also considers
    /// every input/output polarity flip. Polarity points are enumerated
    /// in Gray-code order as in-place single-bit flips, and the screen
    /// handles them as XOR masks on its cached word-parallel batches, so
    /// the walk stays allocation-free and SAT-free up front. Witnesses
    /// remain the orbit-minimal satisfying index (identity first).
    pub npn: bool,
    /// Shares orbit work across the candidate batch by NPN/P class:
    /// candidates that are interpretations of one another walk the same
    /// set of orbit *functions*, so each distinct function is screened
    /// once and SAT-queried once per batch, with verdicts served from a
    /// shared cache afterwards. Verdicts and witnesses are identical to
    /// the unshared sweep (every candidate still walks its own orbit
    /// order); only `queries`/`screened` drop — by about the class
    /// duplication factor. Requires `prune` (ignored without it).
    pub class_share: bool,
}

impl Default for AnyIoOptions {
    fn default() -> Self {
        AnyIoOptions {
            shards: 1,
            prune: true,
            screen: true,
            screen_vectors: DEFAULT_SCREEN_VECTORS,
            inprocess: true,
            npn: false,
            class_share: false,
        }
    }
}

/// The per-candidate result of an interpretation-freedom sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnyIoVerdict {
    /// Whether some input/output interpretation makes the candidate
    /// plausible.
    pub plausible: bool,
    /// The witness interpretation when plausible: the orbit-minimal
    /// point (input permutation major; see the orbit layout on
    /// [`AnyIoOptions::npn`]) under which [`is_plausible`] holds for the
    /// transformed candidate. Both polarity masks are `0` when the sweep
    /// runs on the permutation subgroup. Deterministic for every shard
    /// count and for class sharing on/off.
    pub witness: Option<IoInterpretation>,
    /// Size of the full interpretation orbit: `n_in!·n_out!`, or
    /// `n_in!·2^n_in·n_out!·2^n_out` under [`AnyIoOptions::npn`].
    pub orbit: usize,
    /// Orbit representatives after signature pruning — the queries a
    /// full refutation needs. Equals `orbit` when pruning is off or the
    /// candidate has no pin symmetries.
    pub unique: usize,
    /// Representatives the SAT-free screen settled (refuted, or — in the
    /// complete regime — confirmed as the witness) before any solver
    /// call. `0` when screening is off or stood down. Deterministic for
    /// every shard count: screening runs serially up front. Under
    /// [`AnyIoOptions::class_share`] only *fresh* classifications count;
    /// representatives served from another class member's screen result
    /// are free.
    pub screened: usize,
    /// SAT queries actually issued. For an implausible candidate this is
    /// exactly `unique - screened` (minus cache hits under
    /// [`AnyIoOptions::class_share`]); when a witness exists, early exit
    /// cuts it short and the count may vary with the shard count (the
    /// *verdict* never does).
    pub queries: usize,
    /// The candidate's interpretation-equivalence class within this
    /// batch (dense ids in first-appearance order). Without
    /// [`AnyIoOptions::class_share`] every candidate is its own class.
    pub class: usize,
    /// How many candidates of this batch share [`AnyIoVerdict::class`] —
    /// the duplication factor class sharing removes.
    pub class_size: usize,
}

/// The orbit size — `n_in!·n_out!`, times `2^n_in·2^n_out` under NPN —
/// when it fits the sweep's `u32` orbit indices, `None` otherwise.
fn checked_orbit(n_in: usize, n_out: usize, npn: bool) -> Option<u64> {
    let factorial = |n: usize| (1..=n as u64).try_fold(1u64, u64::checked_mul);
    let negations = if npn {
        1u64.checked_shl(n_in as u32 + n_out as u32)?
    } else {
        1
    };
    factorial(n_in)?
        .checked_mul(factorial(n_out)?)?
        .checked_mul(negations)
        .filter(|&o| o <= u64::from(u32::MAX))
}

/// Enumerates the candidate's interpretation orbit lazily and calls
/// `visit` with every point's flat index and lookup-table signature, in
/// index order. Returns the full orbit size.
///
/// The enumeration nests input permutation (major) → input negation →
/// output permutation → input-permuted scratch copy → output negation,
/// with both negation layers in Gray-code order: each polarity step is a
/// single in-place `flip_var`/complement on the working function, never a
/// rebuild. Input-negation steps flip variable `ip[v]` of the *permuted*
/// working copy — negating before permuting equals permuting first and
/// flipping the permuted wire. With `npn == false` both negation layers
/// degenerate to the single empty mask and the indices coincide with the
/// historical `ip_rank·n_out! + op_rank` layout.
fn walk_orbit(candidate: &VectorFunction, npn: bool, mut visit: impl FnMut(u32, &[u16])) -> usize {
    let n_in = candidate.n_inputs();
    let n_out = candidate.n_outputs();
    let mut sig: Vec<u16> = Vec::with_capacity(1 << n_in);
    let mut permuted_in = VectorFunction::new(0, Vec::new());
    let mut permuted = VectorFunction::new(0, Vec::new());
    let mut index = 0u32;
    let mut in_perms = Permutations::new(n_in);
    let mut in_negs = NegationMasks::new(if npn { n_in } else { 0 });
    let mut out_perms = Permutations::new(n_out);
    let mut out_negs = NegationMasks::new(if npn { n_out } else { 0 });
    while let Some(ip) = in_perms.next() {
        candidate
            .permute_inputs_into(ip, &mut permuted_in)
            .expect("orbit permutation is valid");
        in_negs.reset();
        while let Some((_, in_flip)) = in_negs.next() {
            if let Some(v) = in_flip {
                permuted_in.negate_input_assign(ip[v]);
            }
            out_perms.reset();
            while let Some(op) = out_perms.next() {
                permuted_in
                    .permute_outputs_into(op, &mut permuted)
                    .expect("orbit permutation is valid");
                out_negs.reset();
                while let Some((_, out_flip)) = out_negs.next() {
                    if let Some(o) = out_flip {
                        permuted.negate_output_assign(o);
                    }
                    sig.clear();
                    sig.extend((0..1usize << n_in).map(|m| permuted.eval(m)));
                    visit(index, &sig);
                    index += 1;
                }
            }
        }
    }
    index as usize
}

/// One representative (as a bare flat orbit index) per distinct
/// transformed function, in enumeration order, plus the full orbit size.
#[cfg(test)]
fn orbit_representatives(candidate: &VectorFunction, prune: bool, npn: bool) -> (Vec<u32>, usize) {
    if !prune {
        let orbit = checked_orbit(candidate.n_inputs(), candidate.n_outputs(), npn)
            .expect("orbit checked by caller") as usize;
        return ((0..orbit as u32).collect(), orbit);
    }
    let mut reps = Vec::new();
    let mut seen: HashSet<Vec<u16>> = HashSet::new();
    let orbit = walk_orbit(candidate, npn, |index, sig| {
        if !seen.contains(sig) {
            seen.insert(sig.to_vec());
            reps.push(index);
        }
    });
    (reps, orbit)
}

/// Lexicographic permutation unranking (factorial number system): rank 0
/// is the identity, rank `n! - 1` the descending permutation — exactly
/// the order [`Permutations`] streams, so ranks and stream positions
/// coincide.
fn unrank_perm(mut rank: u64, n: usize, scratch: &mut Vec<usize>, out: &mut Vec<usize>) {
    scratch.clear();
    scratch.extend(0..n);
    out.clear();
    let mut fact: u64 = (1..n as u64).product(); // (n-1)!, empty product = 1
    for i in (1..=n).rev() {
        let d = (rank / fact) as usize;
        rank %= fact;
        out.push(scratch.remove(d));
        if i > 1 {
            fact /= (i - 1) as u64;
        }
    }
}

/// Splits a flat orbit index back into its interpretation parts: fills
/// the permutations and returns the `(in_neg, out_neg)` polarity masks
/// (always `0` when `npn` is off).
///
/// The mixed-radix layout is input-permutation major,
/// `((ip_rank·2^n_in + ig_pos)·n_out! + op_rank)·2^n_out + og_pos`, with
/// both negation positions Gray-decoded (`mask = gray_code(pos)`) to
/// match [`walk_orbit`]'s in-place flips; with `npn` off both negation
/// radices are 1 and the layout degenerates to the historical
/// `ip_rank·n_out! + op_rank`.
pub(crate) fn unrank_orbit_index(
    index: u32,
    n_in: usize,
    n_out: usize,
    npn: bool,
    scratch: &mut Vec<usize>,
    in_perm: &mut Vec<usize>,
    out_perm: &mut Vec<usize>,
) -> (u32, u32) {
    let out_fact: u64 = (1..=n_out as u64).product();
    let mut rest = u64::from(index);
    let out_neg = if npn {
        let pos = rest % (1 << n_out);
        rest >>= n_out;
        mvf_logic::npn::gray_code(pos) as u32
    } else {
        0
    };
    unrank_perm(rest % out_fact, n_out, scratch, out_perm);
    rest /= out_fact;
    let in_neg = if npn {
        let pos = rest % (1 << n_in);
        rest >>= n_in;
        mvf_logic::npn::gray_code(pos) as u32
    } else {
        0
    };
    unrank_perm(rest, n_in, scratch, in_perm);
    (in_neg, out_neg)
}

/// Materializes the orbit point `(in_perm, in_neg, out_perm, out_neg)`
/// of `f` into `permuted` (using `permuted_in` as intermediate scratch),
/// allocation-free once the scratch functions are warm. The input
/// negation mask is in `f`'s pre-permutation frame, so it is applied as
/// flips of the already-permuted wires `in_perm[v]`.
pub(crate) fn apply_orbit_point(
    f: &VectorFunction,
    in_perm: &[usize],
    in_neg: u32,
    out_perm: &[usize],
    out_neg: u32,
    permuted_in: &mut VectorFunction,
    permuted: &mut VectorFunction,
) {
    f.permute_inputs_into(in_perm, permuted_in)
        .expect("orbit permutation is valid");
    let mut mask = in_neg;
    while mask != 0 {
        let v = mask.trailing_zeros() as usize;
        permuted_in.negate_input_assign(in_perm[v]);
        mask &= mask - 1;
    }
    permuted_in
        .permute_outputs_into(out_perm, permuted)
        .expect("orbit permutation is valid");
    permuted.negate_outputs_assign(out_neg);
}

/// SAT verdict of a distinct orbit function, shared across the batch
/// under class sharing: `0` unknown, `1` satisfiable, `2` unsatisfiable.
pub(crate) const UID_UNKNOWN: u8 = 0;
pub(crate) const UID_SAT: u8 = 1;
pub(crate) const UID_UNSAT: u8 = 2;

/// Answers one worker's stripe of the `(candidate, orbit index, uid)`
/// work list on `solver`. `best[c]` carries the smallest known satisfying
/// orbit index of candidate `c` (`usize::MAX` = none yet): stripes skip
/// representatives past a known witness, and because a skip requires an
/// already-found *smaller* satisfying index, the final `fetch_min` result
/// is exactly the orbit's minimal satisfying representative — for any
/// stripe count, including 1.
///
/// `resolved[uid]` is the shared SAT-verdict cache over distinct orbit
/// functions: a cache hit applies the recorded verdict (a satisfiable uid
/// still lowers `best`) without a query. Because a verdict is a
/// mathematical fact of the transformed function, a cache hit and a
/// fresh query are interchangeable — witnesses cannot move. Without
/// class sharing every uid is unique, the cache never hits, and the
/// behavior is exactly the historical per-candidate sweep.
#[allow(clippy::too_many_arguments)]
fn any_io_stripe(
    solver: &mut Solver,
    row_outputs: &[Vec<Var>],
    candidates: &[VectorFunction],
    work: &[(u32, u32, u32)],
    npn: bool,
    worker: usize,
    stride: usize,
    best: &[AtomicUsize],
    queries: &[AtomicUsize],
    resolved: &[AtomicU8],
) {
    let (mut unrank_tmp, mut in_perm, mut out_perm) = (Vec::new(), Vec::new(), Vec::new());
    let mut permuted_in = VectorFunction::new(0, Vec::new());
    let mut permuted = VectorFunction::new(0, Vec::new());
    let mut assumptions = Vec::new();
    let mut last_cand = u32::MAX;
    for &(c, index, uid) in work.iter().skip(worker).step_by(stride) {
        let cand = c as usize;
        if best[cand].load(Ordering::Relaxed) < index as usize {
            continue; // a smaller witness is already known
        }
        match resolved[uid as usize].load(Ordering::Relaxed) {
            UID_SAT => {
                best[cand].fetch_min(index as usize, Ordering::Relaxed);
                continue;
            }
            UID_UNSAT => continue,
            _ => {}
        }
        if c != last_cand {
            // Saved phases are a per-candidate heuristic; do not let one
            // candidate's UNSAT proof steer the next candidate's search.
            solver.reset_phases();
            last_cand = c;
        }
        let f = &candidates[cand];
        let (in_neg, out_neg) = unrank_orbit_index(
            index,
            f.n_inputs(),
            f.n_outputs(),
            npn,
            &mut unrank_tmp,
            &mut in_perm,
            &mut out_perm,
        );
        apply_orbit_point(
            f,
            &in_perm,
            in_neg,
            &out_perm,
            out_neg,
            &mut permuted_in,
            &mut permuted,
        );
        candidate_assumptions(row_outputs, &permuted, &mut assumptions);
        queries[cand].fetch_add(1, Ordering::Relaxed);
        let sat = solver.solve_with(&assumptions);
        resolved[uid as usize].store(if sat { UID_SAT } else { UID_UNSAT }, Ordering::Relaxed);
        if sat {
            best[cand].fetch_min(index as usize, Ordering::Relaxed);
        }
    }
}

/// Sweeps a list of viable functions against one camouflaged netlist
/// under the paper's full adversary: `result[j]` reports whether
/// `candidates[j]` is plausible under **some** input/output pin
/// interpretation, with the witness permutation when one exists.
///
/// The netlist is encoded **once**; each candidate's `(in_perm,
/// out_perm)` orbit is enumerated lazily and pruned by canonical
/// candidate signatures (permutation pairs that produce the same
/// permuted truth-table vector collapse to one query, so a refuted
/// representative rules out its entire class). The serial entry point —
/// see [`plausibility_sweep_any_io_sharded`] for the striped parallel
/// form, which is bit-identical.
///
/// # Panics
///
/// Panics if any candidate's shape does not match the netlist, or if
/// the `n_in!·n_out!` orbit overflows the sweep's `u32` indices.
pub fn plausibility_sweep_any_io(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidates: &[VectorFunction],
) -> Vec<AnyIoVerdict> {
    plausibility_sweep_any_io_with(nl, lib, camo, candidates, &AnyIoOptions::default())
}

/// [`plausibility_sweep_any_io`] striped over worker threads: the encoded
/// solver is cloned per shard ([`mvf_sat::Solver::clone_db`] — a handful
/// of `memcpy`s thanks to the flat clause arena and CSR watch pool) and
/// the surviving `(candidate, representative)` work list is striped over
/// the clones. Workers share per-candidate witness bounds, so
/// representatives past a known witness are skipped cooperatively, and
/// results are stitched as the orbit-minimal satisfying index — verdicts
/// **and** witness permutations are bit-identical for every shard count.
///
/// `shards = 0` uses the available hardware parallelism; `shards <= 1`
/// runs the serial sweep.
///
/// # Panics
///
/// Panics if any candidate's shape does not match the netlist, or if
/// the `n_in!·n_out!` orbit overflows the sweep's `u32` indices.
pub fn plausibility_sweep_any_io_sharded(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidates: &[VectorFunction],
    shards: usize,
) -> Vec<AnyIoVerdict> {
    plausibility_sweep_any_io_with(
        nl,
        lib,
        camo,
        candidates,
        &AnyIoOptions {
            shards,
            ..AnyIoOptions::default()
        },
    )
}

/// The fully configurable interpretation-freedom sweep behind
/// [`plausibility_sweep_any_io`] / [`plausibility_sweep_any_io_sharded`]
/// (notably [`AnyIoOptions::prune`], the brute-force toggle the
/// equivalence corpus exercises).
///
/// # Panics
///
/// See [`plausibility_sweep_any_io`].
pub fn plausibility_sweep_any_io_with(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidates: &[VectorFunction],
    opts: &AnyIoOptions,
) -> Vec<AnyIoVerdict> {
    plausibility_sweep_any_io_in(
        &ObfuscationSpace::camouflage(lib, camo),
        nl,
        candidates,
        opts,
    )
}

/// The scheme-generic interpretation-freedom sweep: identical to
/// [`plausibility_sweep_any_io_with`] but over any [`ObfuscationSpace`]
/// — per-cell camouflage and logic locking run through this one body.
/// Nothing here inspects the scheme: the space supplies the
/// configuration odometer for the screen and the selector-encoded CNF
/// for the solver, and everything downstream is pure choice-product
/// machinery.
///
/// # Panics
///
/// See [`plausibility_sweep_any_io`].
pub fn plausibility_sweep_any_io_in(
    space: &ObfuscationSpace<'_>,
    nl: &Netlist,
    candidates: &[VectorFunction],
    opts: &AnyIoOptions,
) -> Vec<AnyIoVerdict> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let screen = opts
        .screen
        .then(|| ConfigScreen::build_in(space, nl, candidates, opts.screen_vectors))
        .flatten();
    let plan = plan_any_io(nl, candidates, opts, screen.as_ref());
    let mut cnf = space.encode(nl);
    if opts.inprocess {
        cnf.freeze_interface();
        cnf.solver.simplify();
    }
    run_any_io_plan(&plan, &mut cnf.solver, &cnf.row_outputs, candidates, opts)
}

/// The deterministic prelude of an interpretation-freedom sweep: orbit
/// representatives, class grouping, screening, and the surviving
/// `(candidate, orbit index, uid)` work list. Built serially, so
/// everything downstream — `screened` counts, initial witness bounds,
/// work order — is identical for every shard count and every
/// pause/resume split.
pub(crate) struct AnyIoPlan {
    pub(crate) n_in: usize,
    pub(crate) n_out: usize,
    /// Whether orbit indices use the NPN mixed-radix layout.
    pub(crate) npn: bool,
    /// Surviving work items in enumeration order. The third component is
    /// the distinct-orbit-function id keying the shared verdict cache.
    pub(crate) work: Vec<(u32, u32, u32)>,
    /// Number of distinct orbit-function ids across the batch — the
    /// verdict-cache size.
    pub(crate) n_uids: usize,
    /// Whether uids were assigned batch-wide (class sharing on): only
    /// then can the verdict cache ever hit, so only then is it worth
    /// checkpointing.
    pub(crate) shared: bool,
    /// Initial per-candidate witness bound (`usize::MAX` = none; set by
    /// a complete-regime screen confirmation).
    pub(crate) best_init: Vec<usize>,
    pub(crate) screened: Vec<usize>,
    pub(crate) orbits: Vec<usize>,
    pub(crate) uniques: Vec<usize>,
    /// Per-candidate batch class id (dense, first-appearance order).
    pub(crate) classes: Vec<usize>,
    /// Per-candidate size of its class.
    pub(crate) class_sizes: Vec<usize>,
}

pub(crate) fn plan_any_io(
    nl: &Netlist,
    candidates: &[VectorFunction],
    opts: &AnyIoOptions,
    screen: Option<&CamoScreen>,
) -> AnyIoPlan {
    let n_in = nl.inputs().len();
    let n_out = nl.outputs().len();
    let npn = opts.npn;
    // The only structural requirement is that flat orbit indices fit the
    // u32 bookkeeping; asymmetric arities (e.g. 7-in/2-out, orbit
    // 10,080) stay exhaustive-search territory exactly as before.
    assert!(
        checked_orbit(n_in, n_out, npn).is_some(),
        "interpretation-freedom orbit of {n_in} inputs, {n_out} outputs (npn: {npn}) \
         exceeds the supported size"
    );
    for candidate in candidates {
        assert_eq!(candidate.n_inputs(), n_in, "input arity mismatch");
        assert_eq!(candidate.n_outputs(), n_out, "output arity mismatch");
    }
    // Class sharing rides on the signature walk of the pruner; without
    // pruning every point is its own representative and there is nothing
    // to share.
    let share = opts.class_share && opts.prune;
    // Representative lists are pure CPU (truth-table transforms), so
    // they are built serially up front — which also makes them, and
    // everything derived from them, deterministic by construction.
    //
    // `sig_to_uid` assigns one dense id per distinct transformed
    // function. With class sharing it spans the whole batch: two
    // candidates in the same interpretation class walk the same set of
    // orbit functions, so a later class member resolves every one of its
    // representatives to an already-known uid and the screen/SAT caches
    // keyed by uid do its work for free. Without sharing the map is
    // reset per candidate (uid numbering continues, so caches can never
    // hit across candidates) and the sweep degenerates to the historical
    // per-candidate behavior.
    let mut sig_to_uid: HashMap<Vec<u16>, u32> = HashMap::new();
    let mut uid_class: Vec<u32> = Vec::new();
    let mut n_classes = 0u32;
    let mut all_reps: Vec<Vec<(u32, u32)>> = Vec::with_capacity(candidates.len());
    let mut orbits = Vec::with_capacity(candidates.len());
    let mut classes = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        if !share {
            sig_to_uid.clear();
        }
        // A candidate joins an existing class iff its identity signature
        // already appears among earlier candidates' orbit functions
        // (group orbits are equal or disjoint, so one point decides).
        let class = match sig_to_uid.get(&candidate.to_lookup_table()) {
            Some(&uid) if share => uid_class[uid as usize],
            _ => {
                let k = n_classes;
                n_classes += 1;
                k
            }
        };
        classes.push(class as usize);
        let mut reps: Vec<(u32, u32)> = Vec::new();
        let orbit = if opts.prune {
            let mut local_seen: HashSet<u32> = HashSet::new();
            walk_orbit(candidate, npn, |index, sig| {
                let uid = match sig_to_uid.get(sig) {
                    Some(&uid) => uid,
                    None => {
                        let uid = uid_class.len() as u32;
                        sig_to_uid.insert(sig.to_vec(), uid);
                        uid_class.push(class);
                        uid
                    }
                };
                if local_seen.insert(uid) {
                    reps.push((index, uid));
                }
            })
        } else {
            // Brute force keeps every orbit point as its own fresh uid;
            // no need to materialize the transformed functions just to
            // discard them.
            let orbit = checked_orbit(n_in, n_out, npn).expect("orbit checked above") as usize;
            reps.reserve(orbit);
            for index in 0..orbit as u32 {
                let uid = uid_class.len() as u32;
                uid_class.push(class);
                reps.push((index, uid));
            }
            orbit
        };
        orbits.push(orbit);
        all_reps.push(reps);
    }
    let mut class_counts = vec![0usize; n_classes as usize];
    for &k in &classes {
        class_counts[k] += 1;
    }
    let class_sizes: Vec<usize> = classes.iter().map(|&k| class_counts[k]).collect();
    let n_uids = uid_class.len();
    // The SAT-free screen runs serially up front, so `screened` counts —
    // and the surviving work list — are identical for every shard count.
    // Screen outcomes are cached per uid: a classification is a property
    // of the transformed function alone, so a class member inherits its
    // owner's refutations (and confirmations) without a fresh pass, and
    // only fresh classifications count toward `screened`.
    let mut screened = vec![0usize; candidates.len()];
    let mut best_init = vec![usize::MAX; candidates.len()];
    let work: Vec<(u32, u32, u32)> = if let Some(screen) = screen {
        let mut uid_screen: Vec<Option<ScreenOutcome>> = vec![None; n_uids];
        let mut scratch = OrbitScreenScratch::new();
        let (mut unrank_tmp, mut ip, mut op) = (Vec::new(), Vec::new(), Vec::new());
        let mut work = Vec::new();
        for (c, reps) in all_reps.iter().enumerate() {
            scratch.reset();
            for &(index, uid) in reps {
                let outcome = match uid_screen[uid as usize] {
                    Some(cached) => cached,
                    None => {
                        let (in_neg, out_neg) = unrank_orbit_index(
                            index,
                            n_in,
                            n_out,
                            npn,
                            &mut unrank_tmp,
                            &mut ip,
                            &mut op,
                        );
                        let outcome = screen.classify_orbit(
                            &candidates[c],
                            u64::from(index) / ip_period(n_in, n_out, npn),
                            &ip,
                            in_neg,
                            &op,
                            out_neg,
                            &mut scratch,
                        );
                        uid_screen[uid as usize] = Some(outcome);
                        if outcome != ScreenOutcome::Unknown {
                            screened[c] += 1;
                        }
                        outcome
                    }
                };
                match outcome {
                    ScreenOutcome::Refuted => {}
                    ScreenOutcome::Confirmed => {
                        // Complete regime: every smaller representative
                        // was exactly refuted, so this index is the
                        // orbit-minimal witness — done with zero queries.
                        best_init[c] = index as usize;
                        break;
                    }
                    ScreenOutcome::Unknown => work.push((c as u32, index, uid)),
                }
            }
        }
        work
    } else {
        all_reps
            .iter()
            .enumerate()
            .flat_map(|(c, reps)| reps.iter().map(move |&(index, uid)| (c as u32, index, uid)))
            .collect()
    };
    AnyIoPlan {
        n_in,
        n_out,
        npn,
        work,
        n_uids,
        shared: share,
        best_init,
        screened,
        orbits,
        uniques: all_reps.iter().map(Vec::len).collect(),
        classes,
        class_sizes,
    }
}

/// How many consecutive flat orbit indices share one input permutation:
/// the divisor extracting `ip_rank` from an index.
fn ip_period(n_in: usize, n_out: usize, npn: bool) -> u64 {
    let out_fact: u64 = (1..=n_out as u64).product();
    if npn {
        out_fact << (n_in + n_out)
    } else {
        out_fact
    }
}

/// Folds final per-candidate `best` witness bounds and query counts into
/// [`AnyIoVerdict`]s.
pub(crate) fn any_io_verdicts(
    plan: &AnyIoPlan,
    best: &[usize],
    queries: &[usize],
) -> Vec<AnyIoVerdict> {
    let mut unrank_tmp = Vec::new();
    (0..plan.screened.len())
        .map(|j| {
            let found = best[j];
            let witness = (found != usize::MAX).then(|| {
                let (mut ip, mut op) = (Vec::new(), Vec::new());
                let (in_neg, out_neg) = unrank_orbit_index(
                    found as u32,
                    plan.n_in,
                    plan.n_out,
                    plan.npn,
                    &mut unrank_tmp,
                    &mut ip,
                    &mut op,
                );
                IoInterpretation {
                    in_perm: ip,
                    in_neg,
                    out_perm: op,
                    out_neg,
                }
            });
            AnyIoVerdict {
                plausible: found != usize::MAX,
                witness,
                orbit: plan.orbits[j],
                unique: plan.uniques[j],
                screened: plan.screened[j],
                queries: queries[j],
                class: plan.classes[j],
                class_size: plan.class_sizes[j],
            }
        })
        .collect()
}

/// Executes a planned sweep on an encoded solver, serial or sharded.
fn run_any_io_plan(
    plan: &AnyIoPlan,
    solver: &mut Solver,
    row_outputs: &[Vec<Var>],
    candidates: &[VectorFunction],
    opts: &AnyIoOptions,
) -> Vec<AnyIoVerdict> {
    let shards = match opts.shards {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(plan.work.len())
    .max(1);
    let best: Vec<AtomicUsize> = plan
        .best_init
        .iter()
        .map(|&b| AtomicUsize::new(b))
        .collect();
    let queries: Vec<AtomicUsize> = candidates.iter().map(|_| AtomicUsize::new(0)).collect();
    let resolved: Vec<AtomicU8> = (0..plan.n_uids)
        .map(|_| AtomicU8::new(UID_UNKNOWN))
        .collect();
    if shards <= 1 {
        any_io_stripe(
            solver,
            row_outputs,
            candidates,
            &plan.work,
            plan.npn,
            0,
            1,
            &best,
            &queries,
            &resolved,
        );
    } else {
        let solver_ref = &*solver;
        let work_ref = &plan.work;
        let npn = plan.npn;
        let (best_ref, queries_ref, resolved_ref) = (&best, &queries, &resolved);
        std::thread::scope(|scope| {
            for w in 0..shards {
                scope.spawn(move || {
                    let mut local = solver_ref.clone_db();
                    any_io_stripe(
                        &mut local,
                        row_outputs,
                        candidates,
                        work_ref,
                        npn,
                        w,
                        shards,
                        best_ref,
                        queries_ref,
                        resolved_ref,
                    );
                });
            }
        });
    }
    let best: Vec<usize> = best.iter().map(|b| b.load(Ordering::Relaxed)).collect();
    let queries: Vec<usize> = queries.iter().map(|q| q.load(Ordering::Relaxed)).collect();
    any_io_verdicts(plan, &best, &queries)
}

/// Sweeps a whole list of viable functions against one camouflaged
/// netlist: `result[j]` is `true` iff `candidates[j]` is plausible under
/// the identity pin interpretation.
///
/// Unlike calling [`is_plausible`] per candidate, the netlist is encoded
/// **once** and one incremental solver answers every query under
/// per-candidate assumptions — the batched attacker-sweep primitive for
/// red-team evaluations over many suspected functions.
///
/// For wide candidate lists on multi-core machines, see
/// [`plausibility_sweep_sharded`], which answers the same queries from
/// cloned solvers in parallel.
///
/// # Panics
///
/// Panics if any candidate's shape does not match the netlist.
pub fn plausibility_sweep(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidates: &[VectorFunction],
) -> Vec<bool> {
    plausibility_sweep_sharded(nl, lib, camo, candidates, 1)
}

/// Options for the identity-interpretation sweep
/// ([`plausibility_sweep_with`]).
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker shards striping the SAT-pending candidates over
    /// [`mvf_sat::Solver::clone_db`] clones. `0` uses the available
    /// hardware parallelism; `<= 1` runs serially. Verdicts are
    /// bit-identical for every value.
    pub shards: usize,
    /// Runs the SAT-free screen ([`CamoScreen`]) in front of the
    /// solver. Never changes a verdict; stands down automatically when
    /// the configuration product is too large to enumerate.
    pub screen: bool,
    /// Screening batch size — see [`AnyIoOptions::screen_vectors`].
    pub screen_vectors: usize,
    /// Freezes the interface and runs [`mvf_sat::Solver::simplify`]
    /// once after encoding — see [`AnyIoOptions::inprocess`]. Never
    /// changes a verdict.
    pub inprocess: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            shards: 1,
            screen: true,
            screen_vectors: DEFAULT_SCREEN_VECTORS,
            inprocess: true,
        }
    }
}

/// The per-candidate result of an identity-interpretation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepVerdict {
    /// Whether some doping configuration makes the circuit equal the
    /// candidate under the identity pin interpretation.
    pub plausible: bool,
    /// Whether the SAT-free screen settled the verdict on its own
    /// (refuted, or confirmed in the complete regime) — `false` means
    /// the solver was consulted.
    pub screened: bool,
}

/// The fully configurable identity-interpretation sweep behind
/// [`plausibility_sweep`] / [`plausibility_sweep_sharded`]: candidates
/// the screen settles never reach the solver; the rest are answered by
/// one incremental encoding, serial or striped over cloned solvers.
///
/// # Panics
///
/// Panics if any candidate's shape does not match the netlist.
pub fn plausibility_sweep_with(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidates: &[VectorFunction],
    opts: &SweepOptions,
) -> Vec<SweepVerdict> {
    plausibility_sweep_in(
        &ObfuscationSpace::camouflage(lib, camo),
        nl,
        candidates,
        opts,
    )
}

/// The scheme-generic identity-interpretation sweep: identical to
/// [`plausibility_sweep_with`] but over any [`ObfuscationSpace`].
///
/// # Panics
///
/// Panics if any candidate's shape does not match the netlist.
pub fn plausibility_sweep_in(
    space: &ObfuscationSpace<'_>,
    nl: &Netlist,
    candidates: &[VectorFunction],
    opts: &SweepOptions,
) -> Vec<SweepVerdict> {
    for candidate in candidates {
        assert_eq!(
            candidate.n_inputs(),
            nl.inputs().len(),
            "input arity mismatch"
        );
        assert_eq!(
            candidate.n_outputs(),
            nl.outputs().len(),
            "output arity mismatch"
        );
    }
    if candidates.is_empty() {
        return Vec::new();
    }
    let screen = opts
        .screen
        .then(|| ConfigScreen::build_in(space, nl, candidates, opts.screen_vectors))
        .flatten();
    let mut verdicts: Vec<Option<SweepVerdict>> = vec![None; candidates.len()];
    let mut pending: Vec<usize> = Vec::new();
    if let Some(screen) = &screen {
        for (j, candidate) in candidates.iter().enumerate() {
            match screen.classify_identity(candidate) {
                ScreenOutcome::Refuted => {
                    verdicts[j] = Some(SweepVerdict {
                        plausible: false,
                        screened: true,
                    });
                }
                ScreenOutcome::Confirmed => {
                    verdicts[j] = Some(SweepVerdict {
                        plausible: true,
                        screened: true,
                    });
                }
                ScreenOutcome::Unknown => pending.push(j),
            }
        }
    } else {
        pending.extend(0..candidates.len());
    }
    if !pending.is_empty() {
        let mut cnf = space.encode(nl);
        if opts.inprocess {
            cnf.freeze_interface();
            cnf.solver.simplify();
        }
        let shards = match opts.shards {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(pending.len());
        if shards <= 1 {
            let mut assumptions = Vec::new();
            for &j in &pending {
                // Saved phases are a per-candidate heuristic: polarities
                // a long UNSAT proof settled into would otherwise leak
                // into the next candidate's query and steer it wrong.
                cnf.solver.reset_phases();
                candidate_assumptions(&cnf.row_outputs, &candidates[j], &mut assumptions);
                verdicts[j] = Some(SweepVerdict {
                    plausible: cnf.solver.solve_with(&assumptions),
                    screened: false,
                });
            }
        } else {
            // One cloned solver per shard; pending candidates striped
            // (worker w answers pending[w], pending[w + shards], ...) so
            // expensive candidates spread out. Results are re-stitched
            // by index, preserving input order exactly.
            let row_outputs = &cnf.row_outputs;
            let solver = &cnf.solver;
            let pending_ref = &pending;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut local = solver.clone_db();
                            let mut assumptions = Vec::new();
                            pending_ref
                                .iter()
                                .skip(w)
                                .step_by(shards)
                                .map(|&j| {
                                    local.reset_phases();
                                    candidate_assumptions(
                                        row_outputs,
                                        &candidates[j],
                                        &mut assumptions,
                                    );
                                    (j, local.solve_with(&assumptions))
                                })
                                .collect::<Vec<(usize, bool)>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (j, plausible) in h.join().expect("sweep shard panicked") {
                        verdicts[j] = Some(SweepVerdict {
                            plausible,
                            screened: false,
                        });
                    }
                }
            });
        }
    }
    verdicts
        .into_iter()
        .map(|v| v.expect("every candidate is resolved by screen or solver"))
        .collect()
}

/// [`plausibility_sweep`] sharded across worker threads: the netlist is
/// encoded once, the encoded solver (clause arena, watch lists, VSIDS
/// state) is cloned per shard via [`mvf_sat::Solver::clone_db`], and the
/// candidate list is striped over the shards. Verdicts are stitched back
/// in input order.
///
/// Each verdict is the mathematically determined answer of its query, so
/// the result is **bit-identical to the serial sweep for every shard
/// count** — sharding only changes which learnt clauses each solver
/// accumulates along the way, never an answer.
///
/// `shards = 0` uses the available hardware parallelism; `shards <= 1`
/// (or a candidate list shorter than two) runs the serial sweep.
///
/// # Panics
///
/// Panics if any candidate's shape does not match the netlist.
pub fn plausibility_sweep_sharded(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidates: &[VectorFunction],
    shards: usize,
) -> Vec<bool> {
    plausibility_sweep_with(
        nl,
        lib,
        camo,
        candidates,
        &SweepOptions {
            shards,
            ..SweepOptions::default()
        },
    )
    .into_iter()
    .map(|v| v.plausible)
    .collect()
}

/// Builds the paper's baseline: synthesize a *single* function, map it to
/// the standard library, then blindly replace every gate with its
/// camouflaged look-alike. The result has exponentially many plausible
/// functions — but, as the paper argues, almost surely not the *other*
/// viable functions.
///
/// # Errors
///
/// Returns [`AttackError::Build`] if synthesis or mapping fails.
pub fn random_camouflage(
    function: &VectorFunction,
    lib: &Library,
    camo: &CamoLibrary,
) -> Result<Netlist, AttackError> {
    partial_camouflage(function, lib, camo, 1)
}

/// [`random_camouflage`] with a stride: synthesize `function`, map it to
/// the standard library, then replace every `period`-th gate (in
/// topological order) with its camouflaged look-alike. `period == 1`
/// camouflages everything; larger periods leave standard gates between
/// the camouflaged ones — the mixed shape real camouflage-mapped merged
/// circuits have, and the shape SAT preprocessing bites hardest on
/// (standard gates downstream of camouflaged ones keep free pin
/// variables that bounded variable elimination can resolve away).
///
/// # Errors
///
/// Returns [`AttackError::Build`] if synthesis or mapping fails.
///
/// # Panics
///
/// Panics if `period` is zero.
pub fn partial_camouflage(
    function: &VectorFunction,
    lib: &Library,
    camo: &CamoLibrary,
    period: usize,
) -> Result<Netlist, AttackError> {
    assert!(period > 0, "camouflage period must be at least 1");
    let funcs = vec![function.clone()];
    let assignment = mvf_merge::PinAssignment::identity(&funcs);
    let merged = mvf_merge::build_merged(&funcs, &assignment)
        .map_err(|e| AttackError::Build(e.to_string()))?;
    let synthesized = mvf_aig::Script::fast().run(&merged.aig);
    let subject = mvf_netlist::subject_graph::from_aig(&synthesized, lib);
    let plain = mvf_techmap::map_standard(&subject, lib, &mvf_techmap::MapOptions::default())
        .map_err(|e| AttackError::Build(e.to_string()))?;
    // Replace the selected gates by their look-alike camouflaged variant.
    let suffix = if period == 1 {
        "randcamo".to_string()
    } else {
        format!("camo{period}")
    };
    let mut out = Netlist::new(format!("{}_{suffix}", plain.name()));
    let mut net_map = std::collections::HashMap::new();
    for &pi in plain.inputs() {
        net_map.insert(pi, out.add_input(plain.net_name(pi).to_string()));
    }
    for (i, cid) in plain.topo_cells().into_iter().enumerate() {
        let c = plain.cell(cid);
        let pins: Vec<_> = c.inputs.iter().map(|p| net_map[p]).collect();
        let cell_ref = match c.cell {
            CellRef::Std(id) if i.is_multiple_of(period) => {
                let name = lib.cell(id).name().to_string();
                match camo.iter().find(|(_, cc)| cc.name() == name) {
                    Some((camo_id, _)) => CellRef::Camo(camo_id),
                    None => CellRef::Std(id), // tie cells stay standard
                }
            }
            other => other,
        };
        let (_, y) = out.add_cell(c.name.clone(), cell_ref, pins);
        net_map.insert(c.output, y);
    }
    for (name, net) in plain.outputs() {
        out.add_output(name.clone(), net_map[net]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_sboxes::optimal_sboxes;

    fn setup() -> (Library, CamoLibrary) {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        (lib, camo)
    }

    #[test]
    fn true_function_is_plausible_for_its_own_circuit() {
        let (lib, camo) = setup();
        let f0 = &optimal_sboxes()[0];
        let circuit = random_camouflage(f0, &lib, &camo).unwrap();
        assert!(is_plausible(&circuit, &lib, &camo, f0));
    }

    #[test]
    fn sweep_agrees_with_per_candidate_queries() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let candidates = boxes[..4].to_vec();
        let swept = plausibility_sweep(&circuit, &lib, &camo, &candidates);
        assert_eq!(swept.len(), candidates.len());
        for (f, &v) in candidates.iter().zip(&swept) {
            assert_eq!(v, is_plausible(&circuit, &lib, &camo, f));
        }
        assert!(swept[0], "the true function is always plausible");
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_serial() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let candidates = boxes[..5].to_vec();
        let serial = plausibility_sweep(&circuit, &lib, &camo, &candidates);
        for shards in [0usize, 1, 2, 3, 4, 8] {
            let sharded = plausibility_sweep_sharded(&circuit, &lib, &camo, &candidates, shards);
            assert_eq!(serial, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn random_camouflage_does_not_cover_other_viable_functions() {
        // The paper's core observation (§I): random camouflaging leaves
        // the other viable functions implausible, so the adversary rules
        // them out without resolving a single cell.
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let mut ruled_out = 0;
        for other in &boxes[1..4] {
            if !is_plausible(&circuit, &lib, &camo, other) {
                ruled_out += 1;
            }
        }
        assert!(
            ruled_out >= 2,
            "random camouflage should rule out most other S-boxes ({ruled_out}/3 ruled out)"
        );
    }

    #[test]
    fn designed_circuit_keeps_all_viable_functions_plausible() {
        // The flow's guarantee, checked through the adversary's own
        // decision procedure.
        let (lib, camo) = setup();
        let funcs = optimal_sboxes()[..2].to_vec();
        let assignment = mvf_merge::PinAssignment::identity(&funcs);
        let merged = mvf_merge::build_merged(&funcs, &assignment).unwrap();
        let synthesized = mvf_aig::Script::fast().run(&merged.aig);
        let subject = mvf_netlist::subject_graph::from_aig(&synthesized, &lib);
        let mapped = mvf_techmap::map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &mvf_techmap::CamoMapOptions::default(),
        )
        .unwrap();
        for (j, f) in merged.functions.iter().enumerate() {
            assert!(
                is_plausible(&mapped.netlist, &lib, &camo, f),
                "viable function {j} must be plausible"
            );
        }
    }

    #[test]
    fn io_permutation_freedom_widens_plausibility() {
        let (lib, camo) = setup();
        let f0 = &optimal_sboxes()[0];
        let circuit = random_camouflage(f0, &lib, &camo).unwrap();
        // A pin-permuted variant of the true function: implausible under
        // the identity interpretation, plausible when the adversary
        // searches interpretations.
        let permuted = f0
            .permute_inputs(&[1, 0, 2, 3])
            .unwrap()
            .permute_outputs(&[0, 1, 3, 2])
            .unwrap();
        if !is_plausible(&circuit, &lib, &camo, &permuted) {
            assert!(is_plausible_any_io(&circuit, &lib, &camo, &permuted));
        }
    }

    #[test]
    fn orbit_representatives_collapse_symmetric_candidates() {
        use mvf_logic::TruthTable;
        // Fully symmetric outputs: every input permutation fixes the
        // function, so only the output permutations survive pruning.
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        let and3 = a.and(&b).and(&c);
        let xor3 = a.xor(&b).xor(&c);
        let maj = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let sym = VectorFunction::new(3, vec![and3, xor3, maj]);
        let (reps, orbit) = orbit_representatives(&sym, true, false);
        assert_eq!(orbit, 36, "3! · 3!");
        assert_eq!(reps.len(), 6, "input symmetry leaves only out-perms");
        let (unpruned, _) = orbit_representatives(&sym, false, false);
        assert_eq!(unpruned.len(), 36);
        // An asymmetric bijection keeps its whole orbit.
        let f = VectorFunction::from_lookup_table(3, 3, &[1, 0, 3, 2, 5, 7, 6, 4]).unwrap();
        let (reps, orbit) = orbit_representatives(&f, true, false);
        assert_eq!(orbit, 36);
        assert_eq!(reps.len(), 36);
        // The NPN orbit squares in the polarity dimensions.
        let (_, npn_orbit) = orbit_representatives(&f, true, true);
        assert_eq!(npn_orbit, 36 * 8 * 8, "3!·2³·3!·2³");
    }

    #[test]
    fn npn_walk_matches_interpretation_unranking() {
        // The walk's in-place Gray flips and the index unranking must
        // describe the same orbit point: re-deriving the transformed
        // function from the unranked interpretation reproduces the
        // walk's signature at every one of the 2304 indices.
        let f = VectorFunction::from_lookup_table(3, 3, &[1, 0, 3, 2, 5, 7, 6, 4]).unwrap();
        let (mut unrank_tmp, mut ip, mut op) = (Vec::new(), Vec::new(), Vec::new());
        let mut permuted_in = VectorFunction::new(0, Vec::new());
        let mut permuted = VectorFunction::new(0, Vec::new());
        let mut count = 0usize;
        let orbit = walk_orbit(&f, true, |index, sig| {
            let (in_neg, out_neg) =
                unrank_orbit_index(index, 3, 3, true, &mut unrank_tmp, &mut ip, &mut op);
            apply_orbit_point(
                &f,
                &ip,
                in_neg,
                &op,
                out_neg,
                &mut permuted_in,
                &mut permuted,
            );
            assert_eq!(permuted.to_lookup_table(), sig, "index {index}");
            // And the public interpretation type agrees with the
            // internal allocation-free pipeline.
            let interp = IoInterpretation {
                in_perm: ip.clone(),
                in_neg,
                out_perm: op.clone(),
                out_neg,
            };
            assert_eq!(interp.apply(&f).unwrap(), permuted, "index {index}");
            count += 1;
        });
        assert_eq!(orbit, 2304);
        assert_eq!(count, 2304);
        // Index 0 is always the identity interpretation.
        let (in_neg, out_neg) =
            unrank_orbit_index(0, 3, 3, true, &mut unrank_tmp, &mut ip, &mut op);
        assert_eq!((in_neg, out_neg), (0, 0));
        assert!(IoInterpretation {
            in_perm: ip.clone(),
            in_neg,
            out_perm: op.clone(),
            out_neg,
        }
        .is_identity());
    }

    #[test]
    fn unranking_matches_the_permutation_stream() {
        // Orbit indices are defined by the Permutations stream order;
        // unranking must reproduce position r exactly, for every r.
        for n in 0..=5usize {
            let mut perms = Permutations::new(n);
            let (mut scratch, mut out) = (Vec::new(), Vec::new());
            let mut rank = 0u64;
            while let Some(p) = perms.next() {
                unrank_perm(rank, n, &mut scratch, &mut out);
                assert_eq!(out, p, "n = {n}, rank = {rank}");
                rank += 1;
            }
        }
    }

    #[test]
    fn any_io_supports_asymmetric_arities() {
        // 7-in/2-out: orbit 7!·2! = 10,080. The sweep must accept it
        // (only orbits overflowing u32 indices are rejected); the true
        // function early-exits at the identity interpretation, so the
        // run costs one SAT query, not ten thousand.
        let (lib, camo) = setup();
        let table: Vec<u16> = (0..128u16).map(|m| (m * 37 + 11) % 4).collect();
        let f = VectorFunction::from_lookup_table(7, 2, &table).unwrap();
        let circuit = random_camouflage(&f, &lib, &camo).unwrap();
        let verdicts = plausibility_sweep_any_io(&circuit, &lib, &camo, &[f]);
        assert!(verdicts[0].plausible);
        assert_eq!(verdicts[0].orbit, 10_080);
        assert_eq!(
            verdicts[0].witness,
            Some(IoInterpretation::from_perms(
                vec![0, 1, 2, 3, 4, 5, 6],
                vec![0, 1]
            ))
        );
        // And the guard itself: factorials that overflow u32 indices.
        assert!(checked_orbit(7, 2, false).is_some());
        assert!(checked_orbit(7, 2, true).is_some(), "5.2M still fits u32");
        assert!(checked_orbit(12, 12, false).is_none());
        assert!(checked_orbit(6, 6, true).is_some(), "2.1B is the NPN edge");
        assert!(checked_orbit(7, 7, true).is_none());
    }

    #[test]
    fn any_io_sweep_agrees_with_single_queries_and_reports_witnesses() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let scrambled = boxes[0]
            .permute_inputs(&[2, 0, 3, 1])
            .unwrap()
            .permute_outputs(&[1, 3, 0, 2])
            .unwrap();
        let candidates = vec![boxes[0].clone(), scrambled, boxes[1].clone()];
        let verdicts = plausibility_sweep_any_io(&circuit, &lib, &camo, &candidates);
        assert_eq!(verdicts.len(), candidates.len());
        // The true function is plausible under the identity
        // interpretation, which is orbit index 0 — so it must also be
        // the reported witness.
        assert!(verdicts[0].plausible);
        assert_eq!(verdicts[0].witness, Some(IoInterpretation::identity(4, 4)));
        // A scrambled copy of the true function is plausible under some
        // interpretation by construction.
        assert!(verdicts[1].plausible);
        // Every witness actually satisfies the identity-interpretation
        // test once applied to the candidate.
        for (f, v) in candidates.iter().zip(&verdicts) {
            assert_eq!(v.orbit, 576, "4! · 4!");
            assert!(v.unique <= v.orbit);
            // Without class sharing every candidate is its own class.
            assert_eq!(v.class_size, 1);
            if let Some(interp) = &v.witness {
                let g = interp.apply(f).unwrap();
                assert!(is_plausible(&circuit, &lib, &camo, &g), "witness must hold");
            }
        }
        assert_eq!(
            verdicts.iter().map(|v| v.class).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
