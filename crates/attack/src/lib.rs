//! The adversary of the paper's §I: plausibility testing of viable
//! functions against a camouflaged netlist.
//!
//! The attacker has imaged the delayered chip, identified every cell
//! (including the camouflaged look-alikes and their plausible-function
//! sets) and knows a list of viable functions. For each viable function
//! she asks: *is there a doping configuration under which the circuit
//! implements it?* — an ∃∀ query (ref. \[14\]'s QBF formulation) decided
//! here by input-unrolled SAT over the configuration selectors
//! ([`is_plausible`]).
//!
//! Because the designer is also free to permute I/O pins, the adversary
//! must consider a function plausible if **some** input/output
//! interpretation works ([`is_plausible_any_io`]).
//!
//! [`random_camouflage`] builds the paper's strawman — camouflage every
//! gate of a single-function circuit — whose plausible set, while
//! exponentially large, almost never contains the *other* viable
//! functions. The integration tests demonstrate exactly that separation.
//!
//! # Example
//!
//! ```
//! use mvf_attack::{is_plausible, random_camouflage};
//! use mvf_cells::{CamoLibrary, Library};
//! use mvf_sboxes::optimal_sboxes;
//!
//! let lib = Library::standard();
//! let camo = CamoLibrary::from_library(&lib);
//! let f0 = &optimal_sboxes()[0];
//! let circuit = random_camouflage(f0, &lib, &camo)?;
//! // The true function is always plausible for its own camouflaged
//! // netlist.
//! assert!(is_plausible(&circuit, &lib, &camo, f0));
//! # Ok::<(), mvf_attack::AttackError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::VectorFunction;
use mvf_netlist::{CellRef, Netlist};
use mvf_sat::{encode_netlist, Lit, Var};

/// Rebuilds `out` with the assumptions forcing the encoded circuit to
/// equal `candidate` on every input row: output `o` of row `m` is pinned
/// to bit `o` of `candidate(m)`. Shared by every plausibility query so
/// the encoding contract lives in one place.
fn candidate_assumptions(row_outputs: &[Vec<Var>], candidate: &VectorFunction, out: &mut Vec<Lit>) {
    out.clear();
    for (m, row) in row_outputs.iter().enumerate() {
        let want = candidate.eval(m);
        for (o, &v) in row.iter().enumerate() {
            out.push(Lit::with_polarity(v, (want >> o) & 1 == 1));
        }
    }
}

/// Errors from attack-model construction.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// Building the reference circuit failed.
    Build(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Build(e) => write!(f, "building attack target failed: {e}"),
        }
    }
}

impl Error for AttackError {}

/// Decides whether `candidate` is plausible for the camouflaged netlist
/// under the *fixed* (identity) pin interpretation: does some doping
/// configuration make the circuit equal `candidate` on every input?
///
/// # Panics
///
/// Panics if the candidate's shape does not match the netlist.
pub fn is_plausible(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidate: &VectorFunction,
) -> bool {
    assert_eq!(
        candidate.n_inputs(),
        nl.inputs().len(),
        "input arity mismatch"
    );
    assert_eq!(
        candidate.n_outputs(),
        nl.outputs().len(),
        "output arity mismatch"
    );
    let mut cnf = encode_netlist(nl, lib, camo);
    let mut assumptions = Vec::new();
    candidate_assumptions(&cnf.row_outputs, candidate, &mut assumptions);
    cnf.solver.solve_with(&assumptions)
}

/// Decides plausibility under the paper's interpretation freedom: the
/// adversary does not know which wire carries which logical signal, so
/// `candidate` is plausible if it is plausible under **some** input and
/// output permutation.
///
/// The search re-uses one encoding and tries permutations as assumption
/// sets, so the cost is `n_in! · n_out!` incremental SAT calls — fine for
/// the 4-bit blocks of the paper.
pub fn is_plausible_any_io(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidate: &VectorFunction,
) -> bool {
    let n_in = nl.inputs().len();
    let n_out = nl.outputs().len();
    assert_eq!(candidate.n_inputs(), n_in, "input arity mismatch");
    assert_eq!(candidate.n_outputs(), n_out, "output arity mismatch");
    let mut cnf = encode_netlist(nl, lib, camo);
    let mut assumptions = Vec::new();
    for in_perm in mvf_logic::npn::all_permutations(n_in) {
        let permuted_in = match candidate.permute_inputs(&in_perm) {
            Ok(p) => p,
            Err(_) => continue,
        };
        for out_perm in mvf_logic::npn::all_permutations(n_out) {
            let permuted = match permuted_in.permute_outputs(&out_perm) {
                Ok(p) => p,
                Err(_) => continue,
            };
            candidate_assumptions(&cnf.row_outputs, &permuted, &mut assumptions);
            if cnf.solver.solve_with(&assumptions) {
                return true;
            }
        }
    }
    false
}

/// Sweeps a whole list of viable functions against one camouflaged
/// netlist: `result[j]` is `true` iff `candidates[j]` is plausible under
/// the identity pin interpretation.
///
/// Unlike calling [`is_plausible`] per candidate, the netlist is encoded
/// **once** and one incremental solver answers every query under
/// per-candidate assumptions — the batched attacker-sweep primitive for
/// red-team evaluations over many suspected functions.
///
/// For wide candidate lists on multi-core machines, see
/// [`plausibility_sweep_sharded`], which answers the same queries from
/// cloned solvers in parallel.
///
/// # Panics
///
/// Panics if any candidate's shape does not match the netlist.
pub fn plausibility_sweep(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidates: &[VectorFunction],
) -> Vec<bool> {
    plausibility_sweep_sharded(nl, lib, camo, candidates, 1)
}

/// [`plausibility_sweep`] sharded across worker threads: the netlist is
/// encoded once, the encoded solver (clause arena, watch lists, VSIDS
/// state) is cloned per shard via [`mvf_sat::Solver::clone_db`], and the
/// candidate list is striped over the shards. Verdicts are stitched back
/// in input order.
///
/// Each verdict is the mathematically determined answer of its query, so
/// the result is **bit-identical to the serial sweep for every shard
/// count** — sharding only changes which learnt clauses each solver
/// accumulates along the way, never an answer.
///
/// `shards = 0` uses the available hardware parallelism; `shards <= 1`
/// (or a candidate list shorter than two) runs the serial sweep.
///
/// # Panics
///
/// Panics if any candidate's shape does not match the netlist.
pub fn plausibility_sweep_sharded(
    nl: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidates: &[VectorFunction],
    shards: usize,
) -> Vec<bool> {
    for candidate in candidates {
        assert_eq!(
            candidate.n_inputs(),
            nl.inputs().len(),
            "input arity mismatch"
        );
        assert_eq!(
            candidate.n_outputs(),
            nl.outputs().len(),
            "output arity mismatch"
        );
    }
    let mut cnf = encode_netlist(nl, lib, camo);
    let shards = match shards {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(candidates.len());
    if shards <= 1 {
        let mut verdicts = Vec::with_capacity(candidates.len());
        let mut assumptions = Vec::new();
        for candidate in candidates {
            candidate_assumptions(&cnf.row_outputs, candidate, &mut assumptions);
            verdicts.push(cnf.solver.solve_with(&assumptions));
        }
        return verdicts;
    }
    // One cloned solver per shard; candidates striped (worker w answers
    // j = w, w + shards, ...) so expensive candidates spread out. Results
    // are re-stitched by index, preserving input order exactly.
    let mut verdicts = vec![false; candidates.len()];
    let row_outputs = &cnf.row_outputs;
    let solver = &cnf.solver;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|w| {
                scope.spawn(move || {
                    let mut local = solver.clone_db();
                    let mut assumptions = Vec::new();
                    candidates
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(shards)
                        .map(|(j, candidate)| {
                            candidate_assumptions(row_outputs, candidate, &mut assumptions);
                            (j, local.solve_with(&assumptions))
                        })
                        .collect::<Vec<(usize, bool)>>()
                })
            })
            .collect();
        for h in handles {
            for (j, v) in h.join().expect("sweep shard panicked") {
                verdicts[j] = v;
            }
        }
    });
    verdicts
}

/// Builds the paper's baseline: synthesize a *single* function, map it to
/// the standard library, then blindly replace every gate with its
/// camouflaged look-alike. The result has exponentially many plausible
/// functions — but, as the paper argues, almost surely not the *other*
/// viable functions.
///
/// # Errors
///
/// Returns [`AttackError::Build`] if synthesis or mapping fails.
pub fn random_camouflage(
    function: &VectorFunction,
    lib: &Library,
    camo: &CamoLibrary,
) -> Result<Netlist, AttackError> {
    let funcs = vec![function.clone()];
    let assignment = mvf_merge::PinAssignment::identity(&funcs);
    let merged = mvf_merge::build_merged(&funcs, &assignment)
        .map_err(|e| AttackError::Build(e.to_string()))?;
    let synthesized = mvf_aig::Script::fast().run(&merged.aig);
    let subject = mvf_netlist::subject_graph::from_aig(&synthesized, lib);
    let plain = mvf_techmap::map_standard(&subject, lib, &mvf_techmap::MapOptions::default())
        .map_err(|e| AttackError::Build(e.to_string()))?;
    // Replace every gate by the look-alike camouflaged variant.
    let mut out = Netlist::new(format!("{}_randcamo", plain.name()));
    let mut net_map = std::collections::HashMap::new();
    for &pi in plain.inputs() {
        net_map.insert(pi, out.add_input(plain.net_name(pi).to_string()));
    }
    for cid in plain.topo_cells() {
        let c = plain.cell(cid);
        let pins: Vec<_> = c.inputs.iter().map(|p| net_map[p]).collect();
        let cell_ref = match c.cell {
            CellRef::Std(id) => {
                let name = lib.cell(id).name().to_string();
                match camo.iter().find(|(_, cc)| cc.name() == name) {
                    Some((camo_id, _)) => CellRef::Camo(camo_id),
                    None => CellRef::Std(id), // tie cells stay standard
                }
            }
            CellRef::Camo(id) => CellRef::Camo(id),
        };
        let (_, y) = out.add_cell(c.name.clone(), cell_ref, pins);
        net_map.insert(c.output, y);
    }
    for (name, net) in plain.outputs() {
        out.add_output(name.clone(), net_map[net]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_sboxes::optimal_sboxes;

    fn setup() -> (Library, CamoLibrary) {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        (lib, camo)
    }

    #[test]
    fn true_function_is_plausible_for_its_own_circuit() {
        let (lib, camo) = setup();
        let f0 = &optimal_sboxes()[0];
        let circuit = random_camouflage(f0, &lib, &camo).unwrap();
        assert!(is_plausible(&circuit, &lib, &camo, f0));
    }

    #[test]
    fn sweep_agrees_with_per_candidate_queries() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let candidates = boxes[..4].to_vec();
        let swept = plausibility_sweep(&circuit, &lib, &camo, &candidates);
        assert_eq!(swept.len(), candidates.len());
        for (f, &v) in candidates.iter().zip(&swept) {
            assert_eq!(v, is_plausible(&circuit, &lib, &camo, f));
        }
        assert!(swept[0], "the true function is always plausible");
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_serial() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let candidates = boxes[..5].to_vec();
        let serial = plausibility_sweep(&circuit, &lib, &camo, &candidates);
        for shards in [0usize, 1, 2, 3, 4, 8] {
            let sharded = plausibility_sweep_sharded(&circuit, &lib, &camo, &candidates, shards);
            assert_eq!(serial, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn random_camouflage_does_not_cover_other_viable_functions() {
        // The paper's core observation (§I): random camouflaging leaves
        // the other viable functions implausible, so the adversary rules
        // them out without resolving a single cell.
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let mut ruled_out = 0;
        for other in &boxes[1..4] {
            if !is_plausible(&circuit, &lib, &camo, other) {
                ruled_out += 1;
            }
        }
        assert!(
            ruled_out >= 2,
            "random camouflage should rule out most other S-boxes ({ruled_out}/3 ruled out)"
        );
    }

    #[test]
    fn designed_circuit_keeps_all_viable_functions_plausible() {
        // The flow's guarantee, checked through the adversary's own
        // decision procedure.
        let (lib, camo) = setup();
        let funcs = optimal_sboxes()[..2].to_vec();
        let assignment = mvf_merge::PinAssignment::identity(&funcs);
        let merged = mvf_merge::build_merged(&funcs, &assignment).unwrap();
        let synthesized = mvf_aig::Script::fast().run(&merged.aig);
        let subject = mvf_netlist::subject_graph::from_aig(&synthesized, &lib);
        let mapped = mvf_techmap::map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &mvf_techmap::CamoMapOptions::default(),
        )
        .unwrap();
        for (j, f) in merged.functions.iter().enumerate() {
            assert!(
                is_plausible(&mapped.netlist, &lib, &camo, f),
                "viable function {j} must be plausible"
            );
        }
    }

    #[test]
    fn io_permutation_freedom_widens_plausibility() {
        let (lib, camo) = setup();
        let f0 = &optimal_sboxes()[0];
        let circuit = random_camouflage(f0, &lib, &camo).unwrap();
        // A pin-permuted variant of the true function: implausible under
        // the identity interpretation, plausible when the adversary
        // searches interpretations.
        let permuted = f0
            .permute_inputs(&[1, 0, 2, 3])
            .unwrap()
            .permute_outputs(&[0, 1, 3, 2])
            .unwrap();
        if !is_plausible(&circuit, &lib, &camo, &permuted) {
            assert!(is_plausible_any_io(&circuit, &lib, &camo, &permuted));
        }
    }
}
