//! Phase I: multi-function merged-circuit construction.
//!
//! Given the set of viable functions `F = (f₀ … fₙ₋₁)`, the designer builds
//! one circuit that computes all of them behind output multiplexers driven
//! by `⌈log₂ n⌉` select inputs (paper Fig. 2). The input and output pins of
//! each function may first be permuted — the degree of freedom Phase II
//! optimizes — because the adversary cannot know which physical wire
//! carries which logical signal.
//!
//! # Example
//!
//! ```
//! use mvf_merge::{build_merged, PinAssignment};
//! use mvf_sboxes::optimal_sboxes;
//!
//! let funcs = &optimal_sboxes()[..2];
//! let assignment = PinAssignment::identity(funcs);
//! let merged = build_merged(funcs, &assignment)?;
//! assert_eq!(merged.n_selects, 1);
//! merged.check()?; // every select value realizes its function
//! # Ok::<(), mvf_merge::MergeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use mvf_aig::{build, Aig, Lit};
use mvf_logic::VectorFunction;

/// Errors from merged-circuit construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeError {
    /// The viable-function list was empty.
    NoFunctions,
    /// The functions disagree in input or output arity.
    ShapeMismatch,
    /// A pin permutation was malformed.
    BadAssignment,
    /// A merged-circuit output did not match its function (internal
    /// consistency check).
    Mismatch {
        /// Which function failed.
        function: usize,
        /// Which output bit failed.
        output: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoFunctions => write!(f, "no viable functions supplied"),
            MergeError::ShapeMismatch => {
                write!(f, "viable functions must share input/output arity")
            }
            MergeError::BadAssignment => write!(f, "pin assignment is not a permutation"),
            MergeError::Mismatch { function, output } => {
                write!(
                    f,
                    "merged circuit disagrees with function {function} output {output}"
                )
            }
        }
    }
}

impl Error for MergeError {}

/// The Phase-II genotype: per-function input and output pin permutations.
///
/// `input_perms[j][v] = w` wires logical input `v` of function `j` to
/// merged-circuit input wire `w`; `output_perms[j][o] = p` places logical
/// output `o` of function `j` on merged output `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinAssignment {
    /// Per-function input permutations.
    pub input_perms: Vec<Vec<usize>>,
    /// Per-function output permutations.
    pub output_perms: Vec<Vec<usize>>,
}

impl PinAssignment {
    /// The identity assignment for the given function list.
    pub fn identity(functions: &[VectorFunction]) -> Self {
        PinAssignment {
            input_perms: functions
                .iter()
                .map(|f| (0..f.n_inputs()).collect())
                .collect(),
            output_perms: functions
                .iter()
                .map(|f| (0..f.n_outputs()).collect())
                .collect(),
        }
    }

    /// Validates shape against a function list.
    fn check(&self, functions: &[VectorFunction]) -> Result<(), MergeError> {
        if self.input_perms.len() != functions.len() || self.output_perms.len() != functions.len() {
            return Err(MergeError::BadAssignment);
        }
        for (f, (ip, op)) in functions
            .iter()
            .zip(self.input_perms.iter().zip(&self.output_perms))
        {
            if !is_permutation(ip, f.n_inputs()) || !is_permutation(op, f.n_outputs()) {
                return Err(MergeError::BadAssignment);
            }
        }
        Ok(())
    }
}

fn is_permutation(p: &[usize], n: usize) -> bool {
    if p.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &x in p {
        if x >= n || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

/// A merged multi-function circuit (paper Fig. 2).
#[derive(Debug, Clone)]
pub struct MergedCircuit {
    /// The circuit: inputs are the shared data wires followed by the
    /// select wires; outputs are the muxed function outputs.
    pub aig: Aig,
    /// Number of shared data inputs.
    pub n_data_inputs: usize,
    /// Number of binary select inputs (`⌈log₂ n⌉`).
    pub n_selects: usize,
    /// Input indices (into `aig` inputs) of the select wires.
    pub select_indices: Vec<usize>,
    /// The pin-permuted viable functions: `functions[j]` is what the
    /// circuit computes when the select value is `j`.
    pub functions: Vec<VectorFunction>,
}

impl MergedCircuit {
    /// Verifies that for every select value `j` the circuit computes
    /// `functions[j]` (exhaustive check).
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::Mismatch`] on the first disagreement.
    pub fn check(&self) -> Result<(), MergeError> {
        let outs = self.aig.output_functions();
        for (j, g) in self.functions.iter().enumerate() {
            for (o, expect) in g.outputs().iter().enumerate() {
                // Fix the selects to j and compare over the data inputs.
                let mut t = outs[o].clone();
                for (b, &si) in self.select_indices.iter().enumerate() {
                    t = t.cofactor(si, j & (1 << b) != 0);
                }
                let t = t.project(&(0..self.n_data_inputs).collect::<Vec<_>>());
                if &t != expect {
                    return Err(MergeError::Mismatch {
                        function: j,
                        output: o,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Builds the merged circuit of Fig. 2 for the given viable functions and
/// pin assignment.
///
/// Inputs `0..n_inputs` are the shared data wires (named `i*`), followed
/// by `⌈log₂ n⌉` select wires (named `sel*`). Outputs are named `o*`.
///
/// # Errors
///
/// Returns a [`MergeError`] when the function list is empty, shapes
/// disagree, or the assignment is malformed.
pub fn build_merged(
    functions: &[VectorFunction],
    assignment: &PinAssignment,
) -> Result<MergedCircuit, MergeError> {
    let Some(first) = functions.first() else {
        return Err(MergeError::NoFunctions);
    };
    let n_in = first.n_inputs();
    let n_out = first.n_outputs();
    if functions
        .iter()
        .any(|f| f.n_inputs() != n_in || f.n_outputs() != n_out)
    {
        return Err(MergeError::ShapeMismatch);
    }
    assignment.check(functions)?;

    let n_funcs = functions.len();
    let n_sel = if n_funcs <= 1 {
        0
    } else {
        (usize::BITS - (n_funcs - 1).leading_zeros()) as usize
    };
    let permuted: Vec<VectorFunction> = functions
        .iter()
        .zip(assignment.input_perms.iter().zip(&assignment.output_perms))
        .map(|(f, (ip, op))| {
            f.permute_inputs(ip)
                .and_then(|g| g.permute_outputs(op))
                .map_err(|_| MergeError::BadAssignment)
        })
        .collect::<Result<_, _>>()?;

    let mut aig = Aig::new(n_in + n_sel);
    for i in 0..n_in {
        aig.set_input_name(i, format!("i{i}"));
    }
    for s in 0..n_sel {
        aig.set_input_name(n_in + s, format!("sel{s}"));
    }
    let data_leaves: Vec<Lit> = (0..n_in + n_sel).map(|i| aig.input(i)).collect();
    let sel_lits: Vec<Lit> = (0..n_sel).map(|s| aig.input(n_in + s)).collect();

    for o in 0..n_out {
        let mut taps = Vec::with_capacity(n_funcs);
        for g in &permuted {
            let tt = g.output(o).extend(n_in + n_sel);
            taps.push(build::tt_to_aig(&mut aig, &tt, &data_leaves));
        }
        let y = build::mux_tree(&mut aig, &sel_lits, &taps);
        aig.add_output(format!("o{o}"), y);
    }

    Ok(MergedCircuit {
        aig,
        n_data_inputs: n_in,
        n_selects: n_sel,
        select_indices: (n_in..n_in + n_sel).collect(),
        functions: permuted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_sboxes::{des_sboxes, optimal_sboxes, present_sbox};

    #[test]
    fn single_function_has_no_selects() {
        let funcs = vec![present_sbox()];
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        assert_eq!(merged.n_selects, 0);
        merged.check().unwrap();
    }

    #[test]
    fn two_functions_one_select() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        assert_eq!(merged.n_selects, 1);
        assert_eq!(merged.aig.n_inputs(), 5);
        merged.check().unwrap();
    }

    #[test]
    fn sixteen_functions_four_selects() {
        let funcs = optimal_sboxes();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        assert_eq!(merged.n_selects, 4);
        merged.check().unwrap();
    }

    #[test]
    fn three_functions_round_up_selects() {
        let funcs = optimal_sboxes()[..3].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        assert_eq!(merged.n_selects, 2);
        merged.check().unwrap();
    }

    #[test]
    fn des_functions_merge() {
        let funcs = des_sboxes()[..2].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        assert_eq!(merged.n_data_inputs, 6);
        assert_eq!(merged.aig.n_outputs(), 4);
        merged.check().unwrap();
    }

    #[test]
    fn permuted_assignment_checks_out() {
        let funcs = optimal_sboxes()[..4].to_vec();
        let mut a = PinAssignment::identity(&funcs);
        a.input_perms[1] = vec![2, 0, 3, 1];
        a.input_perms[3] = vec![3, 2, 1, 0];
        a.output_perms[2] = vec![1, 0, 3, 2];
        let merged = build_merged(&funcs, &a).unwrap();
        merged.check().unwrap();
        // The permuted function 1 is the permutation of the original.
        let expect = funcs[1].permute_inputs(&a.input_perms[1]).unwrap();
        assert_eq!(merged.functions[1], expect);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(
            build_merged(
                &[],
                &PinAssignment {
                    input_perms: vec![],
                    output_perms: vec![]
                }
            )
            .unwrap_err(),
            MergeError::NoFunctions
        );
        let funcs = vec![present_sbox(), des_sboxes()[0].clone()];
        let a = PinAssignment::identity(&funcs);
        assert_eq!(
            build_merged(&funcs, &a).unwrap_err(),
            MergeError::ShapeMismatch
        );

        let funcs = optimal_sboxes()[..2].to_vec();
        let mut a = PinAssignment::identity(&funcs);
        a.input_perms[0] = vec![0, 0, 1, 2];
        assert_eq!(
            build_merged(&funcs, &a).unwrap_err(),
            MergeError::BadAssignment
        );
    }

    #[test]
    fn io_names_follow_convention() {
        let funcs = optimal_sboxes()[..2].to_vec();
        let merged = build_merged(&funcs, &PinAssignment::identity(&funcs)).unwrap();
        assert_eq!(merged.aig.input_name(0), "i0");
        assert_eq!(merged.aig.input_name(4), "sel0");
        assert_eq!(merged.aig.outputs()[0].0, "o0");
    }
}
