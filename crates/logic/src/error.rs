use std::error::Error;
use std::fmt;

/// Errors produced by Boolean-function operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A variable count outside `0..=MAX_VARS` was requested.
    TooManyVars(usize),
    /// A variable index was out of range for the function's arity.
    VarOutOfRange {
        /// The offending variable index.
        var: usize,
        /// The function's number of variables.
        n_vars: usize,
    },
    /// Two functions of different arity were combined.
    ArityMismatch(usize, usize),
    /// A permutation was malformed (wrong length or not a bijection).
    BadPermutation,
    /// A lookup table had a length that is not a power of two.
    BadTableLength(usize),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::TooManyVars(n) => {
                write!(f, "requested {n} variables, maximum is {}", crate::MAX_VARS)
            }
            LogicError::VarOutOfRange { var, n_vars } => {
                write!(
                    f,
                    "variable {var} out of range for {n_vars}-variable function"
                )
            }
            LogicError::ArityMismatch(a, b) => {
                write!(f, "arity mismatch: {a} vs {b} variables")
            }
            LogicError::BadPermutation => write!(f, "permutation is not a bijection"),
            LogicError::BadTableLength(n) => {
                write!(f, "lookup table length {n} is not a power of two")
            }
        }
    }
}

impl Error for LogicError {}
