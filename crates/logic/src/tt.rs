use std::fmt;

use crate::{LogicError, MAX_VARS};

/// Bit patterns of the first six variables inside a single 64-bit word.
///
/// Bit `m` of `WORD_VAR[v]` is set iff bit `v` of the minterm index `m` is 1.
const WORD_VAR: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Applies `f` word-by-word: `dst[i] = f(dst[i], src[i])`, unrolled in
/// 8-wide `[u64; 8]` blocks.
///
/// The multi-word tables the word-parallel validator produces (≥ 10
/// inputs plus config variables) spend their time in these straight-line
/// word loops; the explicit 8-wide unrolling gives the backend a full
/// 512-bit block of independent operations to schedule (and is the
/// stepping stone to `std::simd` lanes once that stabilizes) without
/// changing a single result bit — the scalar tail loop handles the
/// remainder words identically.
#[inline(always)]
fn zip2_words(dst: &mut [u64], src: &[u64], f: impl Fn(u64, u64) -> u64) {
    let n = dst.len().min(src.len());
    let n8 = n & !7;
    let (dc, dr) = dst[..n].split_at_mut(n8);
    let (sc, sr) = src[..n].split_at(n8);
    for (d8, s8) in dc.chunks_exact_mut(8).zip(sc.chunks_exact(8)) {
        d8[0] = f(d8[0], s8[0]);
        d8[1] = f(d8[1], s8[1]);
        d8[2] = f(d8[2], s8[2]);
        d8[3] = f(d8[3], s8[3]);
        d8[4] = f(d8[4], s8[4]);
        d8[5] = f(d8[5], s8[5]);
        d8[6] = f(d8[6], s8[6]);
        d8[7] = f(d8[7], s8[7]);
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d = f(*d, *s);
    }
}

/// Three-address variant: `dst[i] = f(a[i], b[i])`, unrolled 8-wide.
#[inline(always)]
fn zip3_words(dst: &mut [u64], a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64) {
    let n = dst.len().min(a.len()).min(b.len());
    let n8 = n & !7;
    let (dc, dr) = dst[..n].split_at_mut(n8);
    let (ac, ar) = a[..n].split_at(n8);
    let (bc, br) = b[..n].split_at(n8);
    for ((d8, a8), b8) in dc
        .chunks_exact_mut(8)
        .zip(ac.chunks_exact(8))
        .zip(bc.chunks_exact(8))
    {
        d8[0] = f(a8[0], b8[0]);
        d8[1] = f(a8[1], b8[1]);
        d8[2] = f(a8[2], b8[2]);
        d8[3] = f(a8[3], b8[3]);
        d8[4] = f(a8[4], b8[4]);
        d8[5] = f(a8[5], b8[5]);
        d8[6] = f(a8[6], b8[6]);
        d8[7] = f(a8[7], b8[7]);
    }
    for ((d, a), b) in dr.iter_mut().zip(ar).zip(br) {
        *d = f(*a, *b);
    }
}

/// Unary in-place variant: `w[i] = f(w[i])`, unrolled 8-wide.
#[inline(always)]
fn map_words(words: &mut [u64], f: impl Fn(u64) -> u64) {
    let n8 = words.len() & !7;
    let (c, r) = words.split_at_mut(n8);
    for w8 in c.chunks_exact_mut(8) {
        w8[0] = f(w8[0]);
        w8[1] = f(w8[1]);
        w8[2] = f(w8[2]);
        w8[3] = f(w8[3]);
        w8[4] = f(w8[4]);
        w8[5] = f(w8[5]);
        w8[6] = f(w8[6]);
        w8[7] = f(w8[7]);
    }
    for w in r {
        *w = f(*w);
    }
}

/// A complete truth table of a Boolean function over up to [`MAX_VARS`]
/// variables, packed 64 minterms per word.
///
/// Minterm `m` encodes the input assignment where variable `v` takes the
/// value of bit `v` of `m`. The table stores exactly `2^n` meaningful bits;
/// any unused bits of the last word are kept at zero (an internal invariant
/// restored after every complementing operation).
///
/// # Example
///
/// ```
/// use mvf_logic::TruthTable;
///
/// let maj = TruthTable::from_fn(3, |m| (m.count_ones() >= 2));
/// assert_eq!(maj.count_ones(), 4);
/// assert!(maj.get(0b011));
/// assert!(!maj.get(0b100));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    n_vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// Number of 64-bit words needed for an `n`-variable table.
    fn word_count(n_vars: usize) -> usize {
        if n_vars <= 6 {
            1
        } else {
            1 << (n_vars - 6)
        }
    }

    /// Mask of the meaningful bits in the (single) word of a small table.
    fn tail_mask(n_vars: usize) -> u64 {
        if n_vars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1usize << n_vars)) - 1
        }
    }

    fn assert_vars(n_vars: usize) {
        assert!(
            n_vars <= MAX_VARS,
            "too many variables: {n_vars} > {MAX_VARS}"
        );
    }

    /// The constant-0 function of `n_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > MAX_VARS`.
    pub fn zero(n_vars: usize) -> Self {
        Self::assert_vars(n_vars);
        TruthTable {
            n_vars,
            words: vec![0; Self::word_count(n_vars)],
        }
    }

    /// The constant-1 function of `n_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > MAX_VARS`.
    pub fn one(n_vars: usize) -> Self {
        Self::assert_vars(n_vars);
        let mut words = vec![u64::MAX; Self::word_count(n_vars)];
        *words.last_mut().expect("at least one word") &= Self::tail_mask(n_vars);
        if n_vars < 6 {
            words[0] = Self::tail_mask(n_vars);
        }
        TruthTable { n_vars, words }
    }

    /// A constant function with the given value.
    pub fn constant(n_vars: usize, value: bool) -> Self {
        if value {
            Self::one(n_vars)
        } else {
            Self::zero(n_vars)
        }
    }

    /// The projection function of variable `var` in an `n_vars`-variable space.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars` or `n_vars > MAX_VARS`.
    pub fn var(var: usize, n_vars: usize) -> Self {
        Self::assert_vars(n_vars);
        let mut t = Self::zero(n_vars);
        fill_var(&mut t.words, var, n_vars);
        t
    }

    /// Builds a table by evaluating `f` on every minterm.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > MAX_VARS`.
    pub fn from_fn<F: FnMut(usize) -> bool>(n_vars: usize, mut f: F) -> Self {
        Self::assert_vars(n_vars);
        let mut t = Self::zero(n_vars);
        for m in 0..(1usize << n_vars) {
            if f(m) {
                t.set(m, true);
            }
        }
        t
    }

    /// Builds a small (≤ 6 variables) table directly from its word value.
    ///
    /// Bits above `2^n_vars` are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyVars`] if `n_vars > 6`.
    pub fn from_word(n_vars: usize, bits: u64) -> Result<Self, LogicError> {
        if n_vars > 6 {
            return Err(LogicError::TooManyVars(n_vars));
        }
        Ok(TruthTable {
            n_vars,
            words: vec![bits & Self::tail_mask(n_vars)],
        })
    }

    /// The number of variables of the function.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The number of minterms (`2^n_vars`).
    pub fn n_minterms(&self) -> usize {
        1usize << self.n_vars
    }

    /// The backing words (64 minterms per word, low bits first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// For tables of at most 6 variables, the table as a single word.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than 6 variables.
    pub fn as_word(&self) -> u64 {
        assert!(self.n_vars <= 6, "as_word requires <= 6 variables");
        self.words[0]
    }

    /// The value of the function on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^n_vars`.
    pub fn get(&self, m: usize) -> bool {
        assert!(m < self.n_minterms(), "minterm {m} out of range");
        (self.words[m >> 6] >> (m & 63)) & 1 == 1
    }

    /// Sets the value of the function on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^n_vars`.
    pub fn set(&mut self, m: usize, value: bool) {
        assert!(m < self.n_minterms(), "minterm {m} out of range");
        if value {
            self.words[m >> 6] |= 1u64 << (m & 63);
        } else {
            self.words[m >> 6] &= !(1u64 << (m & 63));
        }
    }

    fn check_arity(&self, other: &Self) {
        assert_eq!(
            self.n_vars, other.n_vars,
            "arity mismatch: {} vs {}",
            self.n_vars, other.n_vars
        );
    }

    /// Bitwise AND of two functions of equal arity.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn and(&self, other: &Self) -> Self {
        self.check_arity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        TruthTable {
            n_vars: self.n_vars,
            words,
        }
    }

    /// Bitwise OR of two functions of equal arity.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn or(&self, other: &Self) -> Self {
        self.check_arity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        TruthTable {
            n_vars: self.n_vars,
            words,
        }
    }

    /// Bitwise XOR of two functions of equal arity.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn xor(&self, other: &Self) -> Self {
        self.check_arity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a ^ b)
            .collect();
        TruthTable {
            n_vars: self.n_vars,
            words,
        }
    }

    /// Complement of the function.
    pub fn not(&self) -> Self {
        let mut words: Vec<u64> = self.words.iter().map(|a| !a).collect();
        *words.last_mut().expect("at least one word") &= Self::tail_mask(self.n_vars);
        TruthTable {
            n_vars: self.n_vars,
            words,
        }
    }

    /// AND with the complement of `other` (`self ∧ ¬other`).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn and_not(&self, other: &Self) -> Self {
        self.check_arity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & !b)
            .collect();
        TruthTable {
            n_vars: self.n_vars,
            words,
        }
    }

    /// If-then-else: `(self ∧ t) ∨ (¬self ∧ e)`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn ite(&self, t: &Self, e: &Self) -> Self {
        let mut out = self.and(t);
        let mut else_branch = e.clone();
        else_branch.and_not_assign(self);
        out.or_assign(&else_branch);
        out
    }

    /// In-place AND: `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn and_assign(&mut self, other: &Self) {
        self.check_arity(other);
        zip2_words(&mut self.words, &other.words, |a, b| a & b);
    }

    /// In-place OR: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn or_assign(&mut self, other: &Self) {
        self.check_arity(other);
        zip2_words(&mut self.words, &other.words, |a, b| a | b);
    }

    /// In-place XOR: `self ^= other`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn xor_assign(&mut self, other: &Self) {
        self.check_arity(other);
        zip2_words(&mut self.words, &other.words, |a, b| a ^ b);
    }

    /// In-place complement: `self = ¬self`.
    pub fn not_assign(&mut self) {
        map_words(&mut self.words, |w| !w);
        *self.words.last_mut().expect("at least one word") &= Self::tail_mask(self.n_vars);
    }

    /// In-place AND-NOT: `self &= ¬other`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn and_not_assign(&mut self, other: &Self) {
        self.check_arity(other);
        zip2_words(&mut self.words, &other.words, |a, b| a & !b);
    }

    /// Ternary buffer-reuse AND: `dst = a ∧ b` without allocating (the
    /// destination's buffer is resized only if its arity differs).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch between `a` and `b`.
    pub fn and_into(dst: &mut Self, a: &Self, b: &Self) {
        a.check_arity(b);
        dst.n_vars = a.n_vars;
        dst.words.resize(a.words.len(), 0);
        zip3_words(&mut dst.words, &a.words, &b.words, |x, y| x & y);
    }

    /// Ternary buffer-reuse AND-NOT: `dst = a ∧ ¬b` without allocating.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch between `a` and `b`.
    pub fn and_not_into(dst: &mut Self, a: &Self, b: &Self) {
        a.check_arity(b);
        dst.n_vars = a.n_vars;
        dst.words.resize(a.words.len(), 0);
        zip3_words(&mut dst.words, &a.words, &b.words, |x, y| x & !y);
    }

    /// `true` iff the function is constant 0.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` iff the function is constant 1.
    pub fn is_one(&self) -> bool {
        *self == Self::one(self.n_vars)
    }

    /// `true` iff the function is constant (either polarity).
    pub fn is_const(&self) -> bool {
        self.is_zero() || self.is_one()
    }

    /// Number of satisfying minterms.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Cofactor with respect to `var = value`. The result has the same
    /// arity but no longer depends on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        assert!(var < self.n_vars, "variable {var} out of range");
        let mut out = self.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let mask = WORD_VAR[var];
            for w in &mut out.words {
                if value {
                    let x = *w & mask;
                    *w = x | (x >> shift);
                } else {
                    let x = *w & !mask;
                    *w = x | (x << shift);
                }
            }
            if self.n_vars < 6 {
                out.words[0] &= Self::tail_mask(self.n_vars);
            }
        } else {
            let block = 1usize << (var - 6);
            let n_words = out.words.len();
            let mut i = 0;
            while i < n_words {
                for j in 0..block {
                    let src = if value { i + block + j } else { i + j };
                    let w = out.words[src];
                    out.words[i + j] = w;
                    out.words[i + block + j] = w;
                }
                i += 2 * block;
            }
        }
        out
    }

    /// `true` iff the function depends on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// Bitmask of the variables the function depends on.
    pub fn support_mask(&self) -> u32 {
        let mut m = 0;
        for v in 0..self.n_vars {
            if self.depends_on(v) {
                m |= 1 << v;
            }
        }
        m
    }

    /// Indices of the variables the function depends on, in ascending order.
    pub fn support(&self) -> Vec<usize> {
        (0..self.n_vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Negates an input: returns `g` with `g(x) = f(x ⊕ e_var)`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn flip_var(&self, var: usize) -> Self {
        let mut out = self.clone();
        out.flip_var_assign(var);
        out
    }

    /// In-place form of [`flip_var`](Self::flip_var): `f(x) ← f(x ⊕ e_var)`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn flip_var_assign(&mut self, var: usize) {
        assert!(var < self.n_vars, "variable {var} out of range");
        if var < 6 {
            let shift = 1u32 << var;
            let mask = WORD_VAR[var];
            for w in &mut self.words {
                let hi = *w & mask;
                let lo = *w & !mask;
                *w = (hi >> shift) | (lo << shift);
            }
            if self.n_vars < 6 {
                self.words[0] &= Self::tail_mask(self.n_vars);
            }
        } else {
            let block = 1usize << (var - 6);
            let n_words = self.words.len();
            let mut i = 0;
            while i < n_words {
                for j in 0..block {
                    self.words.swap(i + j, i + block + j);
                }
                i += 2 * block;
            }
        }
    }

    /// Existential quantification: `f|var=0 ∨ f|var=1`.
    pub fn exists(&self, var: usize) -> Self {
        self.cofactor(var, false).or(&self.cofactor(var, true))
    }

    /// Universal quantification: `f|var=0 ∧ f|var=1`.
    pub fn forall(&self, var: usize) -> Self {
        self.cofactor(var, false).and(&self.cofactor(var, true))
    }

    /// Re-expresses the function over `n_new >= n_vars` variables; existing
    /// variables keep their indices and the function is independent of the
    /// new ones.
    ///
    /// # Panics
    ///
    /// Panics if `n_new < n_vars` or `n_new > MAX_VARS`.
    pub fn extend(&self, n_new: usize) -> Self {
        assert!(n_new >= self.n_vars, "extend cannot shrink");
        Self::assert_vars(n_new);
        if n_new == self.n_vars {
            return self.clone();
        }
        let mut out = Self::zero(n_new);
        if self.n_vars <= 6 && n_new <= 6 {
            // Replicate the low 2^n bits across the wider word.
            let src = self.words[0];
            let chunk = 1usize << self.n_vars;
            let mut w = 0u64;
            let mut off = 0;
            while off < (1usize << n_new) {
                w |= src << off;
                off += chunk;
            }
            out.words[0] = w & Self::tail_mask(n_new);
        } else if self.n_vars <= 6 {
            // First widen to a full word, then replicate the word.
            let full = self.extend(6);
            for w in &mut out.words {
                *w = full.words[0];
            }
        } else {
            let n_src = self.words.len();
            for (i, w) in out.words.iter_mut().enumerate() {
                *w = self.words[i % n_src];
            }
        }
        out
    }

    /// Applies a variable permutation: variable `v` of `self` becomes
    /// variable `perm[v]` of the result.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadPermutation`] if `perm` is not a
    /// permutation of `0..n_vars`.
    pub fn permute(&self, perm: &[usize]) -> Result<Self, LogicError> {
        let mut out = Self::zero(self.n_vars);
        self.permute_into(perm, &mut out)?;
        Ok(out)
    }

    /// [`TruthTable::permute`] into a caller-provided table, reusing its
    /// word storage — the allocation-free step of permutation-orbit
    /// walks. `out` is reshaped to this table's arity.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadPermutation`] if `perm` is not a
    /// permutation of `0..n_vars`; `out` is unspecified (but valid) on
    /// error.
    pub fn permute_into(&self, perm: &[usize], out: &mut TruthTable) -> Result<(), LogicError> {
        if perm.len() != self.n_vars {
            return Err(LogicError::BadPermutation);
        }
        // Bit-set validation: variable counts are tiny (≤ MAX_VARS ≤ 64).
        let mut seen = 0u64;
        for &p in perm {
            if p >= self.n_vars || seen & (1 << p) != 0 {
                return Err(LogicError::BadPermutation);
            }
            seen |= 1 << p;
        }
        out.n_vars = self.n_vars;
        out.words.resize(Self::word_count(self.n_vars), 0);
        out.words.fill(0);
        for m in 0..self.n_minterms() {
            if self.get(m) {
                let mut m2 = 0usize;
                for (v, &p) in perm.iter().enumerate() {
                    if m & (1 << v) != 0 {
                        m2 |= 1 << p;
                    }
                }
                out.set(m2, true);
            }
        }
        Ok(())
    }

    /// Overwrites this table with a copy of `src`, reusing the word
    /// allocation (a `clone_from` that never reallocates once warm).
    pub fn copy_from(&mut self, src: &TruthTable) {
        self.n_vars = src.n_vars;
        self.words.clear();
        self.words.extend_from_slice(&src.words);
    }

    /// Projects the function onto the listed variables: old variable
    /// `vars[i]` becomes variable `i` of the result, which has exactly
    /// `vars.len()` variables.
    ///
    /// # Panics
    ///
    /// Panics if the function depends on a variable not in `vars`, or if
    /// `vars` contains duplicates / out-of-range indices.
    pub fn project(&self, vars: &[usize]) -> Self {
        let mut pos = vec![usize::MAX; self.n_vars];
        for (i, &v) in vars.iter().enumerate() {
            assert!(v < self.n_vars, "variable {v} out of range");
            assert!(pos[v] == usize::MAX, "duplicate variable {v}");
            pos[v] = i;
        }
        for v in 0..self.n_vars {
            if pos[v] == usize::MAX {
                assert!(
                    !self.depends_on(v),
                    "cannot project: function depends on dropped variable {v}"
                );
            }
        }
        let mut out = Self::zero(vars.len());
        for m2 in 0..out.n_minterms() {
            // Build a representative minterm of the original space.
            let mut m = 0usize;
            for (i, &v) in vars.iter().enumerate() {
                if m2 & (1 << i) != 0 {
                    m |= 1 << v;
                }
            }
            if self.get(m) {
                out.set(m2, true);
            }
        }
        out
    }

    /// Evaluates the function on an input assignment given as a bitmask.
    ///
    /// Alias of [`TruthTable::get`] with intent-revealing naming.
    pub fn eval(&self, assignment: usize) -> bool {
        self.get(assignment)
    }

    /// A compact hex rendering (most significant word first).
    pub fn to_hex(&self) -> String {
        let digits = self.n_minterms().div_ceil(4).max(1);
        let mut full = String::new();
        for w in self.words.iter().rev() {
            full.push_str(&format!("{w:016x}"));
        }
        full[full.len() - digits..].to_string()
    }
}

/// Writes the projection pattern of `var` into a word buffer sized for
/// `n_vars` variables.
///
/// # Panics
///
/// Panics if `var >= n_vars`.
fn fill_var(words: &mut [u64], var: usize, n_vars: usize) {
    assert!(
        var < n_vars,
        "variable {var} out of range for {n_vars} vars"
    );
    if var < 6 {
        let pat = WORD_VAR[var] & TruthTable::tail_mask(n_vars);
        for w in words.iter_mut() {
            *w = pat;
        }
    } else {
        let block = 1usize << (var - 6);
        for (i, w) in words.iter_mut().enumerate() {
            *w = if (i / block) % 2 == 1 { u64::MAX } else { 0 };
        }
    }
}

/// A flat arena of equally-sized truth tables packed into one contiguous
/// word buffer.
///
/// Exhaustive circuit simulation needs one table per node; allocating each
/// as an individual [`TruthTable`] costs a heap allocation per node and
/// scatters the tables across memory. The arena instead makes a **single**
/// allocation for all slots up front and provides fused, complement-aware
/// bitwise operations between slots, so a whole-circuit simulation runs
/// with O(1) heap traffic and linear memory access.
///
/// Slots are addressed by index in `0..n_slots`; all slots share the same
/// variable count. Binary operations take the complement of each operand
/// as a flag, which removes the temporary `not()` tables the naive
/// evaluation style materializes.
///
/// # Example
///
/// ```
/// use mvf_logic::{TtArena, TruthTable};
///
/// let mut arena = TtArena::new(3, 3);
/// arena.write_var(0, 0);
/// arena.write_var(1, 1);
/// // slot2 = ¬slot0 ∧ slot1
/// arena.and2(2, 0, true, 1, false);
/// let expect = TruthTable::var(0, 3).not().and(&TruthTable::var(1, 3));
/// assert_eq!(arena.to_table(2), expect);
/// ```
#[derive(Clone)]
pub struct TtArena {
    n_vars: usize,
    words_per_slot: usize,
    tail: u64,
    words: Vec<u64>,
}

impl TtArena {
    /// Creates an arena of `n_slots` zeroed tables over `n_vars` variables
    /// in one contiguous allocation.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > MAX_VARS`.
    pub fn new(n_vars: usize, n_slots: usize) -> Self {
        TruthTable::assert_vars(n_vars);
        let words_per_slot = TruthTable::word_count(n_vars);
        TtArena {
            n_vars,
            words_per_slot,
            tail: TruthTable::tail_mask(n_vars),
            words: vec![0u64; words_per_slot * n_slots],
        }
    }

    /// Reconfigures the arena to `n_slots` zeroed tables over `n_vars`
    /// variables, reusing the backing allocation when it is large enough.
    ///
    /// This is the reuse hook for callers that evaluate many small cones
    /// of varying arity (cut functions, fitness evaluation): one arena
    /// lives across calls and only grows, instead of being reallocated
    /// per cone.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > MAX_VARS`.
    pub fn reset(&mut self, n_vars: usize, n_slots: usize) {
        TruthTable::assert_vars(n_vars);
        self.n_vars = n_vars;
        self.words_per_slot = TruthTable::word_count(n_vars);
        self.tail = TruthTable::tail_mask(n_vars);
        let need = self.words_per_slot * n_slots;
        self.words.clear();
        self.words.resize(need, 0);
    }

    /// Grows the arena to at least `n_slots` slots (same arity),
    /// zero-filling the new slots and preserving existing contents.
    ///
    /// This is the on-demand growth hook for callers that discover their
    /// slot count while evaluating (cone evaluation over a subtree whose
    /// size is only known at the end).
    pub fn ensure_slots(&mut self, n_slots: usize) {
        let need = self.words_per_slot * n_slots;
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// The number of variables of every slot.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The number of slots.
    pub fn n_slots(&self) -> usize {
        // `words_per_slot` is at least 1 by construction.
        self.words.len() / self.words_per_slot
    }

    /// The number of 64-bit words backing each slot.
    pub fn words_per_slot(&self) -> usize {
        self.words_per_slot
    }

    /// The backing words of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_slots`.
    pub fn slot(&self, i: usize) -> &[u64] {
        &self.words[i * self.words_per_slot..(i + 1) * self.words_per_slot]
    }

    fn slot_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.words[i * self.words_per_slot..(i + 1) * self.words_per_slot]
    }

    /// Disjoint mutable/shared access to a destination and a source slot.
    ///
    /// # Panics
    ///
    /// Panics if `dst == src`.
    fn pair(&mut self, dst: usize, src: usize) -> (&mut [u64], &[u64]) {
        assert_ne!(dst, src, "in-place op requires distinct slots");
        let w = self.words_per_slot;
        if dst < src {
            let (lo, hi) = self.words.split_at_mut(src * w);
            (&mut lo[dst * w..(dst + 1) * w], &hi[..w])
        } else {
            let (lo, hi) = self.words.split_at_mut(dst * w);
            (&mut hi[..w], &lo[src * w..(src + 1) * w])
        }
    }

    /// Sets slot `i` to constant 0.
    pub fn write_zero(&mut self, i: usize) {
        self.slot_mut(i).fill(0);
    }

    /// Sets slot `i` to constant 1.
    pub fn write_one(&mut self, i: usize) {
        let tail = self.tail;
        let s = self.slot_mut(i);
        s.fill(u64::MAX);
        *s.last_mut().expect("at least one word") &= tail;
    }

    /// Sets slot `i` to the projection of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn write_var(&mut self, i: usize, var: usize) {
        let n = self.n_vars;
        fill_var(self.slot_mut(i), var, n);
    }

    /// Copies a table into slot `i`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn write_table(&mut self, i: usize, t: &TruthTable) {
        assert_eq!(t.n_vars(), self.n_vars, "arity mismatch");
        self.slot_mut(i).copy_from_slice(t.words());
    }

    /// Overwrites slot `i` with `pattern` repeated cyclically
    /// (`slot[w] = pattern[w % pattern.len()]`), masking the unused tail
    /// bits of the last word.
    ///
    /// This is the raw-bit entry point of the vector-batch simulator: a
    /// sampled input column (one bit per random vector) is written once
    /// and replicated across every configuration block of the widened
    /// table, where it is *not* the projection of any arena variable.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty or `i >= n_slots`.
    pub fn write_pattern(&mut self, i: usize, pattern: &[u64]) {
        assert!(!pattern.is_empty(), "empty pattern");
        let tail = self.tail;
        let s = self.slot_mut(i);
        for (w, dst) in s.iter_mut().enumerate() {
            *dst = pattern[w % pattern.len()];
        }
        *s.last_mut().expect("at least one word") &= tail;
    }

    /// Fused binary AND with per-operand complement flags:
    /// `dst = (a ⊕ ca) ∧ (b ⊕ cb)`.
    ///
    /// This is the simulation workhorse: one pass over the words, no
    /// temporaries, and the unused tail bits restored for free. `a` and
    /// `b` may alias each other (and `dst`, in which case the operand is
    /// read pre-update only when `dst` equals it — pass distinct slots for
    /// the conventional three-address form).
    ///
    /// # Panics
    ///
    /// Panics if a slot index is out of range.
    pub fn and2(&mut self, dst: usize, a: usize, ca: bool, b: usize, cb: bool) {
        let w = self.words_per_slot;
        let ma = if ca { u64::MAX } else { 0 };
        let mb = if cb { u64::MAX } else { 0 };
        let (da, aa, ba) = (dst * w, a * w, b * w);
        if dst > a && dst > b {
            // The common topological case (destination after both
            // operands): disjoint slices let the word loop run as a
            // straight-line 8-wide chunked kernel without per-access
            // bounds checks.
            let (src, rest) = self.words.split_at_mut(da);
            let d = &mut rest[..w];
            let sa = &src[aa..aa + w];
            let sb = &src[ba..ba + w];
            zip3_words(d, sa, sb, |x, y| (x ^ ma) & (y ^ mb));
        } else {
            assert!(da + w <= self.words.len(), "slot {dst} out of range");
            for k in 0..w {
                let x = (self.words[aa + k] ^ ma) & (self.words[ba + k] ^ mb);
                self.words[da + k] = x;
            }
        }
        self.words[da + w - 1] &= self.tail;
    }

    /// In-place complement-aware AND: `dst &= (src ⊕ compl)`.
    ///
    /// # Panics
    ///
    /// Panics if `dst == src` or a slot index is out of range.
    pub fn and_in_place(&mut self, dst: usize, src: usize, compl: bool) {
        let m = if compl { u64::MAX } else { 0 };
        let tail = self.tail;
        let (d, s) = self.pair(dst, src);
        zip2_words(d, s, |x, y| x & (y ^ m));
        *d.last_mut().expect("at least one word") &= tail;
    }

    /// In-place OR: `dst |= src`.
    ///
    /// # Panics
    ///
    /// Panics if `dst == src` or a slot index is out of range.
    pub fn or_in_place(&mut self, dst: usize, src: usize) {
        let (d, s) = self.pair(dst, src);
        zip2_words(d, s, |x, y| x | y);
    }

    /// Copies slot `src` into `dst`, complementing when `compl` is set.
    ///
    /// # Panics
    ///
    /// Panics if `dst == src` or a slot index is out of range.
    pub fn copy(&mut self, dst: usize, src: usize, compl: bool) {
        let m = if compl { u64::MAX } else { 0 };
        let tail = self.tail;
        let (d, s) = self.pair(dst, src);
        zip2_words(d, s, |_, y| y ^ m);
        *d.last_mut().expect("at least one word") &= tail;
    }

    /// The value of slot `i` on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `m` is out of range.
    pub fn get(&self, i: usize, m: usize) -> bool {
        assert!(m < (1usize << self.n_vars), "minterm {m} out of range");
        (self.slot(i)[m >> 6] >> (m & 63)) & 1 == 1
    }

    /// Extracts slot `i` as an owned [`TruthTable`].
    pub fn to_table(&self, i: usize) -> TruthTable {
        TruthTable {
            n_vars: self.n_vars,
            words: self.slot(i).to_vec(),
        }
    }

    /// Extracts slot `i`, complemented when `compl` is set.
    pub fn to_table_compl(&self, i: usize, compl: bool) -> TruthTable {
        let mut t = self.to_table(i);
        if compl {
            t.not_assign();
        }
        t
    }

    /// `true` iff slots `a` and `b` hold identical tables.
    pub fn slots_equal(&self, a: usize, b: usize) -> bool {
        self.slot(a) == self.slot(b)
    }
}

impl Default for TtArena {
    /// An empty arena (no slots); [`TtArena::reset`] gives it a shape.
    fn default() -> Self {
        TtArena::new(0, 0)
    }
}

impl fmt::Debug for TtArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TtArena({} slots × {}v)", self.n_slots(), self.n_vars)
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({}v, 0x{})", self.n_vars, self.to_hex())
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        for n in 0..=8 {
            let z = TruthTable::zero(n);
            let o = TruthTable::one(n);
            assert!(z.is_zero());
            assert!(o.is_one());
            assert_eq!(z.count_ones(), 0);
            assert_eq!(o.count_ones(), 1 << n);
            assert_eq!(z.not(), o);
            assert_eq!(o.not(), z);
        }
    }

    #[test]
    fn var_patterns_small() {
        let a = TruthTable::var(0, 2);
        assert_eq!(a.as_word(), 0b1010);
        let b = TruthTable::var(1, 2);
        assert_eq!(b.as_word(), 0b1100);
        let f = a.and(&b);
        assert_eq!(f.as_word(), 0b1000);
    }

    #[test]
    fn var_patterns_large() {
        for n in [7, 9] {
            for v in 0..n {
                let t = TruthTable::var(v, n);
                for m in 0..(1usize << n) {
                    assert_eq!(t.get(m), m & (1 << v) != 0, "n={n} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn shannon_expansion() {
        // f = x ? f1 : f0 for every variable.
        let f = TruthTable::from_fn(8, |m| (m * 2654435761usize) & 0x10 != 0);
        for v in 0..8 {
            let x = TruthTable::var(v, 8);
            let f0 = f.cofactor(v, false);
            let f1 = f.cofactor(v, true);
            assert_eq!(x.ite(&f1, &f0), f, "var {v}");
            assert!(!f0.depends_on(v));
            assert!(!f1.depends_on(v));
        }
    }

    #[test]
    fn cofactor_small_tables() {
        // NAND over 2 vars: cofactors are the Fig. 1b plausible set.
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let nand = a.and(&b).not();
        assert_eq!(nand.cofactor(0, false), TruthTable::one(2));
        assert_eq!(nand.cofactor(0, true), b.not());
        assert_eq!(nand.cofactor(1, false), TruthTable::one(2));
        assert_eq!(nand.cofactor(1, true), a.not());
        assert_eq!(
            nand.cofactor(0, true).cofactor(1, true),
            TruthTable::zero(2)
        );
    }

    #[test]
    fn support_and_quantifiers() {
        let f = TruthTable::var(2, 5).xor(&TruthTable::var(4, 5));
        assert_eq!(f.support(), vec![2, 4]);
        assert_eq!(f.support_mask(), 0b10100);
        assert!(f.exists(2).is_one());
        assert!(f.forall(2).is_zero());
    }

    #[test]
    fn permute_roundtrip() {
        let f = TruthTable::from_fn(4, |m| m.count_ones() % 3 == 1);
        let perm = vec![2, 0, 3, 1];
        let g = f.permute(&perm).unwrap();
        let mut inv = vec![0; 4];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        assert_eq!(g.permute(&inv).unwrap(), f);
        // Semantics check: g(y) = f(x) with y[perm[v]] = x[v].
        for m in 0..16 {
            let mut m2 = 0usize;
            for v in 0..4 {
                if m & (1 << v) != 0 {
                    m2 |= 1 << perm[v];
                }
            }
            assert_eq!(f.get(m), g.get(m2));
        }
    }

    #[test]
    fn permute_rejects_non_bijections() {
        let f = TruthTable::one(3);
        assert!(f.permute(&[0, 0, 1]).is_err());
        assert!(f.permute(&[0, 1]).is_err());
        assert!(f.permute(&[0, 1, 3]).is_err());
    }

    #[test]
    fn extend_preserves_semantics() {
        let f = TruthTable::from_fn(3, |m| m == 5 || m == 2);
        for n_new in 3..=9 {
            let g = f.extend(n_new);
            assert_eq!(g.n_vars(), n_new);
            for m in 0..(1usize << n_new) {
                assert_eq!(g.get(m), f.get(m & 7), "n_new={n_new} m={m}");
            }
        }
    }

    #[test]
    fn project_inverse_of_extend() {
        let f = TruthTable::from_fn(4, |m| (m ^ (m >> 1)) & 1 == 1);
        let g = f.extend(9);
        let back = g.project(&[0, 1, 2, 3]);
        assert_eq!(back, f);
    }

    #[test]
    fn project_with_reordering() {
        // f depends on vars 1 and 3 of a 5-var space.
        let f = TruthTable::var(1, 5).and(&TruthTable::var(3, 5).not());
        let p = f.project(&[3, 1]);
        // New var 0 = old var 3, new var 1 = old var 1: p = ¬v0 ∧ v1.
        let expect = TruthTable::var(1, 2).and(&TruthTable::var(0, 2).not());
        assert_eq!(p, expect);
    }

    #[test]
    #[should_panic(expected = "depends on dropped variable")]
    fn project_rejects_lossy_drop() {
        let f = TruthTable::var(0, 3);
        let _ = f.project(&[1, 2]);
    }

    #[test]
    fn zero_variable_tables() {
        let z = TruthTable::zero(0);
        let o = TruthTable::one(0);
        assert_eq!(z.n_minterms(), 1);
        assert!(!z.get(0));
        assert!(o.get(0));
        assert!(o.is_one() && !o.is_zero());
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        for n in [2usize, 5, 8] {
            let f = TruthTable::from_fn(n, |m| (m * 2654435761usize) & 0x8 != 0);
            let g = TruthTable::from_fn(n, |m| (m * 40503) & 0x4 != 0);
            let mut t = f.clone();
            t.and_assign(&g);
            assert_eq!(t, f.and(&g), "and n={n}");
            let mut t = f.clone();
            t.or_assign(&g);
            assert_eq!(t, f.or(&g), "or n={n}");
            let mut t = f.clone();
            t.xor_assign(&g);
            assert_eq!(t, f.xor(&g), "xor n={n}");
            let mut t = f.clone();
            t.not_assign();
            assert_eq!(t, f.not(), "not n={n}");
            t.not_assign();
            assert_eq!(t, f, "double complement restores, tail bits clean");
            let mut t = f.clone();
            t.and_not_assign(&g);
            assert_eq!(t, f.and_not(&g), "and_not n={n}");
            let mut dst = TruthTable::zero(0);
            TruthTable::and_into(&mut dst, &f, &g);
            assert_eq!(dst, f.and(&g), "and_into n={n}");
            TruthTable::and_not_into(&mut dst, &f, &g);
            assert_eq!(dst, f.and_not(&g), "and_not_into n={n}");
        }
    }

    #[test]
    fn arena_ops_match_table_ops() {
        for n in [0usize, 3, 6, 7, 9] {
            let mut arena = TtArena::new(n, 6);
            arena.write_one(0);
            assert!(arena.to_table(0).is_one(), "one n={n}");
            arena.write_zero(0);
            assert!(arena.to_table(0).is_zero(), "zero n={n}");
            if n >= 2 {
                arena.write_var(0, 0);
                arena.write_var(1, n - 1);
                let a = TruthTable::var(0, n);
                let b = TruthTable::var(n - 1, n);
                assert_eq!(arena.to_table(0), a);
                assert_eq!(arena.to_table(1), b);
                for (ca, cb) in [(false, false), (true, false), (false, true), (true, true)] {
                    arena.and2(2, 0, ca, 1, cb);
                    let want = (if ca { a.not() } else { a.clone() }).and(&if cb {
                        b.not()
                    } else {
                        b.clone()
                    });
                    assert_eq!(arena.to_table(2), want, "and2 n={n} ca={ca} cb={cb}");
                    assert_eq!(arena.to_table_compl(2, true), want.not());
                }
                // In-place ops against slot 0.
                arena.write_one(3);
                arena.and_in_place(3, 0, true);
                assert_eq!(arena.to_table(3), a.not(), "and_in_place");
                arena.or_in_place(3, 0);
                assert!(arena.to_table(3).is_one(), "or_in_place");
                arena.copy(4, 1, true);
                assert_eq!(arena.to_table(4), b.not(), "copy complemented");
                assert!(!arena.slots_equal(4, 1));
                arena.copy(5, 1, false);
                assert!(arena.slots_equal(5, 1));
                for m in 0..(1usize << n) {
                    assert_eq!(arena.get(1, m), b.get(m), "get n={n} m={m}");
                }
            }
        }
    }

    #[test]
    fn arena_single_allocation_layout() {
        let arena = TtArena::new(9, 10);
        assert_eq!(arena.n_slots(), 10);
        assert_eq!(arena.words_per_slot(), 8);
        assert_eq!(arena.n_vars(), 9);
        assert_eq!(arena.slot(3).len(), 8);
    }

    #[test]
    fn from_word_masks_excess_bits() {
        let t = TruthTable::from_word(2, u64::MAX).unwrap();
        assert!(t.is_one());
        assert!(TruthTable::from_word(7, 0).is_err());
    }
}
