//! NPN and P canonical forms.
//!
//! Two functions are **NPN-equivalent** if one can be obtained from the
//! other by Negating inputs, Permuting inputs, and/or Negating the output.
//! The synthesis engine's cut-rewriting pass groups 4-input cut functions
//! by NPN class so one pre-optimized replacement network per class suffices
//! (exactly as in ABC). Two functions are **P-equivalent** under input
//! permutation alone — the equivalence used when matching a subtree onto a
//! camouflaged cell whose pins can be connected in any order.
//!
//! Canonicalization is exhaustive over the transform group, which is exact
//! and fast for the arities used here (≤ 4 inputs for cells and cuts:
//! 4!·2⁴·2 = 768 transforms).

use crate::TruthTable;

/// A transform in the NPN group: permute inputs, negate a subset of inputs,
/// optionally negate the output.
///
/// Applying the transform to `f` yields `g` with
/// `g(x) = out_neg ⊕ f(π⁻¹(x) ⊕ input_neg)` — i.e. input `v` of `f` is
/// wired (possibly inverted) to input `perm[v]` of `g`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// `perm[v]` is the position of `f`'s input `v` in the new function.
    pub perm: Vec<usize>,
    /// Bit `v` set ⇒ input `v` of `f` is complemented before use.
    pub input_neg: u32,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform over `n` inputs.
    pub fn identity(n: usize) -> Self {
        NpnTransform {
            perm: (0..n).collect(),
            input_neg: 0,
            output_neg: false,
        }
    }

    /// Applies the transform to a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the permutation length differs from the table arity.
    pub fn apply(&self, f: &TruthTable) -> TruthTable {
        assert_eq!(self.perm.len(), f.n_vars(), "transform arity mismatch");
        let mut t = f.clone();
        for v in 0..f.n_vars() {
            if self.input_neg & (1 << v) != 0 {
                t = t.flip_var(v);
            }
        }
        let mut t = t.permute(&self.perm).expect("valid permutation");
        if self.output_neg {
            t = t.not();
        }
        t
    }

    /// The inverse transform, such that `inv.apply(&t.apply(f)) == f`.
    pub fn inverse(&self) -> Self {
        let n = self.perm.len();
        let mut inv_perm = vec![0; n];
        for (v, &p) in self.perm.iter().enumerate() {
            inv_perm[p] = v;
        }
        // Input negations move with the permutation.
        let mut input_neg = 0u32;
        for v in 0..n {
            if self.input_neg & (1 << inv_perm[v]) != 0 {
                input_neg |= 1 << v;
            }
        }
        NpnTransform {
            perm: inv_perm,
            input_neg,
            output_neg: self.output_neg,
        }
    }
}

/// Generates all permutations of `0..n` (lexicographic order).
pub fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    heap_permute(&mut cur, n, &mut out);
    out.sort();
    out
}

fn heap_permute(arr: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(arr.clone());
        return;
    }
    for i in 0..k {
        heap_permute(arr, k - 1, out);
        if k.is_multiple_of(2) {
            arr.swap(i, k - 1);
        } else {
            arr.swap(0, k - 1);
        }
    }
}

/// The NPN canonical form of a function: the lexicographically smallest
/// truth table in its NPN class, together with the transform that produced
/// it.
///
/// # Panics
///
/// Panics if the function has more than 6 variables (exhaustive
/// canonicalization is only intended for cut/cell-sized functions).
///
/// # Example
///
/// ```
/// use mvf_logic::{npn::npn_canonical, TruthTable};
///
/// let a = TruthTable::var(0, 2);
/// let b = TruthTable::var(1, 2);
/// let (c1, _) = npn_canonical(&a.and(&b));
/// let (c2, _) = npn_canonical(&a.or(&b).not()); // NOR ≡ AND under NPN
/// assert_eq!(c1, c2);
/// ```
pub fn npn_canonical(f: &TruthTable) -> (TruthTable, NpnTransform) {
    assert!(f.n_vars() <= 6, "exhaustive NPN limited to 6 variables");
    let n = f.n_vars();
    let perms = all_permutations(n);
    let mut best: Option<(TruthTable, NpnTransform)> = None;
    for perm in &perms {
        for input_neg in 0..(1u32 << n) {
            for output_neg in [false, true] {
                let t = NpnTransform {
                    perm: perm.clone(),
                    input_neg,
                    output_neg,
                };
                let g = t.apply(f);
                if best.as_ref().is_none_or(|(b, _)| g < *b) {
                    best = Some((g, t));
                }
            }
        }
    }
    best.expect("at least the identity transform")
}

/// The P canonical form (input permutation only): the lexicographically
/// smallest table reachable by permuting inputs, with its permutation.
///
/// # Panics
///
/// Panics if the function has more than 6 variables.
pub fn p_canonical(f: &TruthTable) -> (TruthTable, Vec<usize>) {
    assert!(
        f.n_vars() <= 6,
        "exhaustive P-canonicalization limited to 6 variables"
    );
    let mut best: Option<(TruthTable, Vec<usize>)> = None;
    for perm in all_permutations(f.n_vars()) {
        let g = f.permute(&perm).expect("valid permutation");
        if best.as_ref().is_none_or(|(b, _)| g < *b) {
            best = Some((g, perm));
        }
    }
    best.expect("at least the identity permutation")
}

/// An NPN equivalence class, keyed by its canonical truth table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NpnClass {
    canonical: TruthTable,
}

impl NpnClass {
    /// The class containing `f`.
    pub fn of(f: &TruthTable) -> Self {
        NpnClass {
            canonical: npn_canonical(f).0,
        }
    }

    /// The canonical representative table.
    pub fn representative(&self) -> &TruthTable {
        &self.canonical
    }

    /// Whether `f` belongs to this class.
    pub fn contains(&self, f: &TruthTable) -> bool {
        npn_canonical(f).0 == self.canonical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_count() {
        assert_eq!(all_permutations(0).len(), 1);
        assert_eq!(all_permutations(1).len(), 1);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(4).len(), 24);
    }

    #[test]
    fn transform_inverse_roundtrip() {
        let f = TruthTable::from_fn(4, |m| (m * 7 + 3) % 5 < 2);
        let t = NpnTransform {
            perm: vec![2, 0, 3, 1],
            input_neg: 0b0110,
            output_neg: true,
        };
        let g = t.apply(&f);
        assert_eq!(t.inverse().apply(&g), f);
    }

    #[test]
    fn and_or_nand_nor_share_npn_class() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let and = a.and(&b);
        let class = NpnClass::of(&and);
        assert!(class.contains(&a.or(&b)));
        assert!(class.contains(&a.and(&b).not()));
        assert!(class.contains(&a.or(&b).not()));
        assert!(class.contains(&a.not().and(&b)));
        assert!(!class.contains(&a.xor(&b)));
    }

    #[test]
    fn canonical_is_invariant_over_class() {
        let f = TruthTable::from_fn(3, |m| [1, 0, 0, 1, 1, 1, 0, 1][m] == 1);
        let (canon, _) = npn_canonical(&f);
        // Apply a few random-ish transforms; canonical form must not move.
        for (perm, neg, oneg) in [
            (vec![1, 2, 0], 0b101u32, true),
            (vec![2, 1, 0], 0b010, false),
            (vec![0, 2, 1], 0b111, true),
        ] {
            let t = NpnTransform {
                perm,
                input_neg: neg,
                output_neg: oneg,
            };
            let g = t.apply(&f);
            assert_eq!(npn_canonical(&g).0, canon);
        }
    }

    #[test]
    fn npn_transform_recovers_canonical() {
        let f = TruthTable::from_fn(4, |m| (m ^ (m >> 2)) & 3 == 2);
        let (canon, t) = npn_canonical(&f);
        assert_eq!(t.apply(&f), canon);
    }

    #[test]
    fn p_canonical_respects_permutation_only() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        // a·¬b and ¬a·b are P-equivalent...
        let f = a.and(&b.not());
        let g = a.not().and(&b);
        assert_eq!(p_canonical(&f).0, p_canonical(&g).0);
        // ...but a·b is not P-equivalent to a+b.
        assert_ne!(p_canonical(&a.and(&b)).0, p_canonical(&a.or(&b)).0);
    }

    #[test]
    fn number_of_npn_classes_of_2var_functions() {
        use std::collections::HashSet;
        let mut classes = HashSet::new();
        for bits in 0..16u64 {
            let f = TruthTable::from_word(2, bits).unwrap();
            classes.insert(npn_canonical(&f).0);
        }
        // Known: 2-variable functions fall into 4 NPN classes
        // (const, literal, AND-like, XOR-like).
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn number_of_npn_classes_of_3var_functions() {
        use std::collections::HashSet;
        let mut classes = HashSet::new();
        for bits in 0..256u64 {
            let f = TruthTable::from_word(3, bits).unwrap();
            classes.insert(npn_canonical(&f).0);
        }
        // Known result: 14 NPN classes of 3-variable functions.
        assert_eq!(classes.len(), 14);
    }
}
