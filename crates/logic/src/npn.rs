//! NPN and P canonical forms.
//!
//! Two functions are **NPN-equivalent** if one can be obtained from the
//! other by Negating inputs, Permuting inputs, and/or Negating the output.
//! The synthesis engine's cut-rewriting pass groups 4-input cut functions
//! by NPN class so one pre-optimized replacement network per class suffices
//! (exactly as in ABC). Two functions are **P-equivalent** under input
//! permutation alone — the equivalence used when matching a subtree onto a
//! camouflaged cell whose pins can be connected in any order.
//!
//! Canonicalization is exhaustive over the transform group, which is exact
//! and fast for the arities used here (≤ 4 inputs for cells and cuts:
//! 4!·2⁴·2 = 768 transforms).

use crate::TruthTable;

/// A transform in the NPN group: permute inputs, negate a subset of inputs,
/// optionally negate the output.
///
/// Applying the transform to `f` yields `g` with
/// `g(x) = out_neg ⊕ f(π⁻¹(x) ⊕ input_neg)` — i.e. input `v` of `f` is
/// wired (possibly inverted) to input `perm[v]` of `g`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// `perm[v]` is the position of `f`'s input `v` in the new function.
    pub perm: Vec<usize>,
    /// Bit `v` set ⇒ input `v` of `f` is complemented before use.
    pub input_neg: u32,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform over `n` inputs.
    pub fn identity(n: usize) -> Self {
        NpnTransform {
            perm: (0..n).collect(),
            input_neg: 0,
            output_neg: false,
        }
    }

    /// Applies the transform to a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the permutation length differs from the table arity.
    pub fn apply(&self, f: &TruthTable) -> TruthTable {
        assert_eq!(self.perm.len(), f.n_vars(), "transform arity mismatch");
        apply_parts(f, &self.perm, self.input_neg, self.output_neg)
    }

    /// The inverse transform, such that `inv.apply(&t.apply(f)) == f`.
    pub fn inverse(&self) -> Self {
        let n = self.perm.len();
        let mut inv_perm = vec![0; n];
        for (v, &p) in self.perm.iter().enumerate() {
            inv_perm[p] = v;
        }
        // Input negations move with the permutation.
        let mut input_neg = 0u32;
        for v in 0..n {
            if self.input_neg & (1 << inv_perm[v]) != 0 {
                input_neg |= 1 << v;
            }
        }
        NpnTransform {
            perm: inv_perm,
            input_neg,
            output_neg: self.output_neg,
        }
    }
}

/// A lazy, allocation-free permutation stream over `0..n`, in
/// lexicographic order.
///
/// This replaces the old materializing pipeline (recursive Heap's
/// algorithm into a `Vec<Vec<usize>>`, then a sort): the `O(n!·n)`
/// up-front allocation spike is gone, each step is a handful of in-place
/// swaps on one buffer, and the lexicographic yield order — which the
/// canonicalizers' tie-breaks and the attack's witness-permutation
/// semantics depend on — is a property of the algorithm instead of a
/// trailing sort.
///
/// `next` is a lending iterator (it returns a borrow of the internal
/// buffer), so drive it with `while let`:
///
/// ```
/// use mvf_logic::npn::Permutations;
///
/// let mut perms = Permutations::new(3);
/// let mut count = 0;
/// let mut first = Vec::new();
/// while let Some(p) = perms.next() {
///     if count == 0 {
///         first = p.to_vec();
///     }
///     count += 1;
/// }
/// assert_eq!(count, 6);
/// assert_eq!(first, [0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Permutations {
    cur: Vec<usize>,
    started: bool,
    done: bool,
}

impl Permutations {
    /// A stream over all permutations of `0..n`. (`n == 0` yields exactly
    /// one empty permutation, matching [`all_permutations`].)
    pub fn new(n: usize) -> Self {
        Permutations {
            cur: (0..n).collect(),
            started: false,
            done: false,
        }
    }

    /// Rewinds the stream to the identity permutation.
    pub fn reset(&mut self) {
        for (i, p) in self.cur.iter_mut().enumerate() {
            *p = i;
        }
        self.started = false;
        self.done = false;
    }

    /// Advances to the next permutation and returns it, or `None` once
    /// the stream is exhausted.
    #[allow(clippy::should_implement_trait)] // lending: borrows self
    pub fn next(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.cur);
        }
        // Classic lexicographic successor: find the rightmost ascent,
        // swap its head with the smallest larger element to its right,
        // reverse the (descending) suffix. All in-place.
        let n = self.cur.len();
        let Some(i) = (0..n.saturating_sub(1))
            .rev()
            .find(|&i| self.cur[i] < self.cur[i + 1])
        else {
            self.done = true;
            return None;
        };
        let j = (i + 1..n)
            .rev()
            .find(|&j| self.cur[j] > self.cur[i])
            .expect("an ascent guarantees a larger suffix element");
        self.cur.swap(i, j);
        self.cur[i + 1..].reverse();
        Some(&self.cur)
    }
}

/// Generates all permutations of `0..n` (lexicographic order).
///
/// Prefer [`Permutations`] when the consumer can stream: this collects
/// all `n!` permutations into owned vectors.
pub fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut perms = Permutations::new(n);
    while let Some(p) = perms.next() {
        out.push(p.to_vec());
    }
    out
}

/// The NPN canonical form of a function: the lexicographically smallest
/// truth table in its NPN class, together with the transform that produced
/// it.
///
/// # Panics
///
/// Panics if the function has more than 6 variables (exhaustive
/// canonicalization is only intended for cut/cell-sized functions).
///
/// # Example
///
/// ```
/// use mvf_logic::{npn::npn_canonical, TruthTable};
///
/// let a = TruthTable::var(0, 2);
/// let b = TruthTable::var(1, 2);
/// let (c1, _) = npn_canonical(&a.and(&b));
/// let (c2, _) = npn_canonical(&a.or(&b).not()); // NOR ≡ AND under NPN
/// assert_eq!(c1, c2);
/// ```
pub fn npn_canonical(f: &TruthTable) -> (TruthTable, NpnTransform) {
    assert!(f.n_vars() <= 6, "exhaustive NPN limited to 6 variables");
    let n = f.n_vars();
    let mut best: Option<(TruthTable, NpnTransform)> = None;
    let mut perms = Permutations::new(n);
    while let Some(perm) = perms.next() {
        for input_neg in 0..(1u32 << n) {
            for output_neg in [false, true] {
                let g = apply_parts(f, perm, input_neg, output_neg);
                if best.as_ref().is_none_or(|(b, _)| g < *b) {
                    // The transform itself is only materialized on an
                    // improvement; every rejected candidate stays
                    // allocation-free.
                    best = Some((
                        g,
                        NpnTransform {
                            perm: perm.to_vec(),
                            input_neg,
                            output_neg,
                        },
                    ));
                }
            }
        }
    }
    best.expect("at least the identity transform")
}

/// [`NpnTransform::apply`] over borrowed parts, so exhaustive scans can
/// evaluate a transform without building an owned `NpnTransform` first.
fn apply_parts(f: &TruthTable, perm: &[usize], input_neg: u32, output_neg: bool) -> TruthTable {
    let mut t = f.clone();
    for v in 0..f.n_vars() {
        if input_neg & (1 << v) != 0 {
            t = t.flip_var(v);
        }
    }
    let mut t = t.permute(perm).expect("valid permutation");
    if output_neg {
        t = t.not();
    }
    t
}

/// The P canonical form (input permutation only): the lexicographically
/// smallest table reachable by permuting inputs, with its permutation.
///
/// # Panics
///
/// Panics if the function has more than 6 variables.
pub fn p_canonical(f: &TruthTable) -> (TruthTable, Vec<usize>) {
    assert!(
        f.n_vars() <= 6,
        "exhaustive P-canonicalization limited to 6 variables"
    );
    let mut best: Option<(TruthTable, Vec<usize>)> = None;
    let mut perms = Permutations::new(f.n_vars());
    while let Some(perm) = perms.next() {
        let g = f.permute(perm).expect("valid permutation");
        if best.as_ref().is_none_or(|(b, _)| g < *b) {
            best = Some((g, perm.to_vec()));
        }
    }
    best.expect("at least the identity permutation")
}

/// An NPN equivalence class, keyed by its canonical truth table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NpnClass {
    canonical: TruthTable,
}

impl NpnClass {
    /// The class containing `f`.
    pub fn of(f: &TruthTable) -> Self {
        NpnClass {
            canonical: npn_canonical(f).0,
        }
    }

    /// The canonical representative table.
    pub fn representative(&self) -> &TruthTable {
        &self.canonical
    }

    /// Whether `f` belongs to this class.
    pub fn contains(&self, f: &TruthTable) -> bool {
        npn_canonical(f).0 == self.canonical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_count() {
        assert_eq!(all_permutations(0).len(), 1);
        assert_eq!(all_permutations(1).len(), 1);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(4).len(), 24);
    }

    #[test]
    fn lazy_stream_is_lexicographic_and_complete() {
        for n in 0..=5usize {
            let mut perms = Permutations::new(n);
            let mut seen: Vec<Vec<usize>> = Vec::new();
            while let Some(p) = perms.next() {
                if let Some(prev) = seen.last() {
                    assert!(prev.as_slice() < p, "not lexicographic at {p:?}");
                }
                seen.push(p.to_vec());
            }
            assert_eq!(seen, all_permutations(n), "n = {n}");
            assert!(perms.next().is_none(), "exhausted stream stays exhausted");
            // Reset rewinds to the identity.
            perms.reset();
            let restart = perms.next().map(<[usize]>::to_vec);
            assert_eq!(restart.as_deref(), seen.first().map(Vec::as_slice));
        }
    }

    #[test]
    fn transform_inverse_roundtrip() {
        let f = TruthTable::from_fn(4, |m| (m * 7 + 3) % 5 < 2);
        let t = NpnTransform {
            perm: vec![2, 0, 3, 1],
            input_neg: 0b0110,
            output_neg: true,
        };
        let g = t.apply(&f);
        assert_eq!(t.inverse().apply(&g), f);
    }

    #[test]
    fn and_or_nand_nor_share_npn_class() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let and = a.and(&b);
        let class = NpnClass::of(&and);
        assert!(class.contains(&a.or(&b)));
        assert!(class.contains(&a.and(&b).not()));
        assert!(class.contains(&a.or(&b).not()));
        assert!(class.contains(&a.not().and(&b)));
        assert!(!class.contains(&a.xor(&b)));
    }

    #[test]
    fn canonical_is_invariant_over_class() {
        let f = TruthTable::from_fn(3, |m| [1, 0, 0, 1, 1, 1, 0, 1][m] == 1);
        let (canon, _) = npn_canonical(&f);
        // Apply a few random-ish transforms; canonical form must not move.
        for (perm, neg, oneg) in [
            (vec![1, 2, 0], 0b101u32, true),
            (vec![2, 1, 0], 0b010, false),
            (vec![0, 2, 1], 0b111, true),
        ] {
            let t = NpnTransform {
                perm,
                input_neg: neg,
                output_neg: oneg,
            };
            let g = t.apply(&f);
            assert_eq!(npn_canonical(&g).0, canon);
        }
    }

    #[test]
    fn npn_transform_recovers_canonical() {
        let f = TruthTable::from_fn(4, |m| (m ^ (m >> 2)) & 3 == 2);
        let (canon, t) = npn_canonical(&f);
        assert_eq!(t.apply(&f), canon);
    }

    #[test]
    fn p_canonical_respects_permutation_only() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        // a·¬b and ¬a·b are P-equivalent...
        let f = a.and(&b.not());
        let g = a.not().and(&b);
        assert_eq!(p_canonical(&f).0, p_canonical(&g).0);
        // ...but a·b is not P-equivalent to a+b.
        assert_ne!(p_canonical(&a.and(&b)).0, p_canonical(&a.or(&b)).0);
    }

    #[test]
    fn number_of_npn_classes_of_2var_functions() {
        use std::collections::HashSet;
        let mut classes = HashSet::new();
        for bits in 0..16u64 {
            let f = TruthTable::from_word(2, bits).unwrap();
            classes.insert(npn_canonical(&f).0);
        }
        // Known: 2-variable functions fall into 4 NPN classes
        // (const, literal, AND-like, XOR-like).
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn number_of_npn_classes_of_3var_functions() {
        use std::collections::HashSet;
        let mut classes = HashSet::new();
        for bits in 0..256u64 {
            let f = TruthTable::from_word(3, bits).unwrap();
            classes.insert(npn_canonical(&f).0);
        }
        // Known result: 14 NPN classes of 3-variable functions.
        assert_eq!(classes.len(), 14);
    }
}
