//! NPN and P canonical forms.
//!
//! Two functions are **NPN-equivalent** if one can be obtained from the
//! other by Negating inputs, Permuting inputs, and/or Negating the output.
//! The synthesis engine's cut-rewriting pass groups 4-input cut functions
//! by NPN class so one pre-optimized replacement network per class suffices
//! (exactly as in ABC). Two functions are **P-equivalent** under input
//! permutation alone — the equivalence used when matching a subtree onto a
//! camouflaged cell whose pins can be connected in any order.
//!
//! Canonicalization is exhaustive over the transform group, which is exact
//! and fast for the arities used here (≤ 4 inputs for cells and cuts:
//! 4!·2⁴·2 = 768 transforms).

use std::collections::HashMap;

use crate::{LogicError, TruthTable, VectorFunction};

/// A transform in the NPN group: permute inputs, negate a subset of inputs,
/// optionally negate the output.
///
/// Applying the transform to `f` yields `g` with
/// `g(x) = out_neg ⊕ f(π⁻¹(x) ⊕ input_neg)` — i.e. input `v` of `f` is
/// wired (possibly inverted) to input `perm[v]` of `g`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// `perm[v]` is the position of `f`'s input `v` in the new function.
    pub perm: Vec<usize>,
    /// Bit `v` set ⇒ input `v` of `f` is complemented before use.
    pub input_neg: u32,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform over `n` inputs.
    pub fn identity(n: usize) -> Self {
        NpnTransform {
            perm: (0..n).collect(),
            input_neg: 0,
            output_neg: false,
        }
    }

    /// Applies the transform to a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the permutation length differs from the table arity.
    pub fn apply(&self, f: &TruthTable) -> TruthTable {
        assert_eq!(self.perm.len(), f.n_vars(), "transform arity mismatch");
        apply_parts(f, &self.perm, self.input_neg, self.output_neg)
    }

    /// The inverse transform, such that `inv.apply(&t.apply(f)) == f`.
    pub fn inverse(&self) -> Self {
        let n = self.perm.len();
        let mut inv_perm = vec![0; n];
        for (v, &p) in self.perm.iter().enumerate() {
            inv_perm[p] = v;
        }
        // Input negations move with the permutation.
        let mut input_neg = 0u32;
        for v in 0..n {
            if self.input_neg & (1 << inv_perm[v]) != 0 {
                input_neg |= 1 << v;
            }
        }
        NpnTransform {
            perm: inv_perm,
            input_neg,
            output_neg: self.output_neg,
        }
    }
}

/// A lazy, allocation-free permutation stream over `0..n`, in
/// lexicographic order.
///
/// This replaces the old materializing pipeline (recursive Heap's
/// algorithm into a `Vec<Vec<usize>>`, then a sort): the `O(n!·n)`
/// up-front allocation spike is gone, each step is a handful of in-place
/// swaps on one buffer, and the lexicographic yield order — which the
/// canonicalizers' tie-breaks and the attack's witness-permutation
/// semantics depend on — is a property of the algorithm instead of a
/// trailing sort.
///
/// `next` is a lending iterator (it returns a borrow of the internal
/// buffer), so drive it with `while let`:
///
/// ```
/// use mvf_logic::npn::Permutations;
///
/// let mut perms = Permutations::new(3);
/// let mut count = 0;
/// let mut first = Vec::new();
/// while let Some(p) = perms.next() {
///     if count == 0 {
///         first = p.to_vec();
///     }
///     count += 1;
/// }
/// assert_eq!(count, 6);
/// assert_eq!(first, [0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Permutations {
    cur: Vec<usize>,
    started: bool,
    done: bool,
}

impl Permutations {
    /// A stream over all permutations of `0..n`. (`n == 0` yields exactly
    /// one empty permutation, matching [`all_permutations`].)
    pub fn new(n: usize) -> Self {
        Permutations {
            cur: (0..n).collect(),
            started: false,
            done: false,
        }
    }

    /// Rewinds the stream to the identity permutation.
    pub fn reset(&mut self) {
        for (i, p) in self.cur.iter_mut().enumerate() {
            *p = i;
        }
        self.started = false;
        self.done = false;
    }

    /// Advances to the next permutation and returns it, or `None` once
    /// the stream is exhausted.
    #[allow(clippy::should_implement_trait)] // lending: borrows self
    pub fn next(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.cur);
        }
        // Classic lexicographic successor: find the rightmost ascent,
        // swap its head with the smallest larger element to its right,
        // reverse the (descending) suffix. All in-place.
        let n = self.cur.len();
        let Some(i) = (0..n.saturating_sub(1))
            .rev()
            .find(|&i| self.cur[i] < self.cur[i + 1])
        else {
            self.done = true;
            return None;
        };
        let j = (i + 1..n)
            .rev()
            .find(|&j| self.cur[j] > self.cur[i])
            .expect("an ascent guarantees a larger suffix element");
        self.cur.swap(i, j);
        self.cur[i + 1..].reverse();
        Some(&self.cur)
    }
}

/// The Gray code at rank `pos`: consecutive ranks differ in exactly one
/// bit, so an enumeration ordered by rank can apply each step as a single
/// in-place polarity flip. `gray_code(0) == 0` (the identity mask).
pub fn gray_code(pos: u64) -> u64 {
    pos ^ (pos >> 1)
}

/// The rank of a Gray-code word — the inverse of [`gray_code`].
pub fn gray_rank(mask: u64) -> u64 {
    let mut rank = mask;
    let mut shifted = mask;
    while shifted > 0 {
        shifted >>= 1;
        rank ^= shifted;
    }
    rank
}

/// A lazy enumerator of all `2^n` input/output negation masks in Gray-code
/// order, the polarity half of an NPN orbit walk.
///
/// Each step reports the mask together with the single bit that changed
/// from the previous mask, so an orbit walk can maintain a transformed
/// function incrementally — one `flip_var`/`not` per step instead of
/// rebuilding from scratch. The mask at position `p` is `gray_code(p)`,
/// which keeps orbit points addressable as bare mixed-radix indices
/// (position 0 is always the empty mask, i.e. the identity).
///
/// ```
/// use mvf_logic::npn::{gray_code, NegationMasks};
///
/// let mut masks = NegationMasks::new(2);
/// let mut seen = Vec::new();
/// while let Some((mask, flipped)) = masks.next() {
///     seen.push((mask, flipped));
/// }
/// assert_eq!(
///     seen,
///     [(0b00, None), (0b01, Some(0)), (0b11, Some(1)), (0b10, Some(0))]
/// );
/// assert_eq!(gray_code(2), 0b11);
/// ```
#[derive(Debug, Clone)]
pub struct NegationMasks {
    pos: u64,
    total: u64,
    mask: u32,
}

impl NegationMasks {
    /// A stream over all negation masks of `n` bits. (`n == 0` yields
    /// exactly one empty mask.)
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn new(n: usize) -> Self {
        assert!(n <= 32, "negation masks limited to 32 bits");
        NegationMasks {
            pos: 0,
            total: 1u64 << n,
            mask: 0,
        }
    }

    /// Rewinds the stream to the empty mask.
    pub fn reset(&mut self) {
        self.pos = 0;
        self.mask = 0;
    }

    /// Number of masks in the stream (`2^n`).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `false` — the stream always contains at least the empty mask.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Advances to the next mask; returns `(mask, flipped_bit)` where
    /// `flipped_bit` is the single bit that changed from the previous
    /// mask (`None` for the leading empty mask), or `None` once the
    /// stream is exhausted.
    #[allow(clippy::should_implement_trait)] // paired with Permutations::next
    pub fn next(&mut self) -> Option<(u32, Option<usize>)> {
        if self.pos == self.total {
            return None;
        }
        let flipped = if self.pos == 0 {
            None
        } else {
            // Gray step k-1 → k flips exactly bit trailing_zeros(k).
            let bit = self.pos.trailing_zeros() as usize;
            self.mask ^= 1 << bit;
            Some(bit)
        };
        self.pos += 1;
        Some((self.mask, flipped))
    }
}

/// Generates all permutations of `0..n` (lexicographic order).
///
/// Prefer [`Permutations`] when the consumer can stream: this collects
/// all `n!` permutations into owned vectors.
pub fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut perms = Permutations::new(n);
    while let Some(p) = perms.next() {
        out.push(p.to_vec());
    }
    out
}

/// The NPN canonical form of a function: the lexicographically smallest
/// truth table in its NPN class, together with the transform that produced
/// it.
///
/// # Panics
///
/// Panics if the function has more than 6 variables (exhaustive
/// canonicalization is only intended for cut/cell-sized functions).
///
/// # Example
///
/// ```
/// use mvf_logic::{npn::npn_canonical, TruthTable};
///
/// let a = TruthTable::var(0, 2);
/// let b = TruthTable::var(1, 2);
/// let (c1, _) = npn_canonical(&a.and(&b));
/// let (c2, _) = npn_canonical(&a.or(&b).not()); // NOR ≡ AND under NPN
/// assert_eq!(c1, c2);
/// ```
pub fn npn_canonical(f: &TruthTable) -> (TruthTable, NpnTransform) {
    assert!(f.n_vars() <= 6, "exhaustive NPN limited to 6 variables");
    let n = f.n_vars();
    let mut best: Option<(TruthTable, NpnTransform)> = None;
    let mut perms = Permutations::new(n);
    while let Some(perm) = perms.next() {
        for input_neg in 0..(1u32 << n) {
            for output_neg in [false, true] {
                let g = apply_parts(f, perm, input_neg, output_neg);
                if best.as_ref().is_none_or(|(b, _)| g < *b) {
                    // The transform itself is only materialized on an
                    // improvement; every rejected candidate stays
                    // allocation-free.
                    best = Some((
                        g,
                        NpnTransform {
                            perm: perm.to_vec(),
                            input_neg,
                            output_neg,
                        },
                    ));
                }
            }
        }
    }
    best.expect("at least the identity transform")
}

/// [`NpnTransform::apply`] over borrowed parts, so exhaustive scans can
/// evaluate a transform without building an owned `NpnTransform` first.
fn apply_parts(f: &TruthTable, perm: &[usize], input_neg: u32, output_neg: bool) -> TruthTable {
    let mut t = f.clone();
    for v in 0..f.n_vars() {
        if input_neg & (1 << v) != 0 {
            t = t.flip_var(v);
        }
    }
    let mut t = t.permute(perm).expect("valid permutation");
    if output_neg {
        t = t.not();
    }
    t
}

/// The P canonical form (input permutation only): the lexicographically
/// smallest table reachable by permuting inputs, with its permutation.
///
/// Streams the lazy [`Permutations`] enumerator (the permutation is only
/// materialized on an improvement) and keeps the lexicographic-first
/// tie-break of the exhaustive scan.
///
/// # Errors
///
/// Returns [`LogicError::TooManyVars`] for functions of more than 6
/// variables — exhaustive canonicalization is only intended for cut- and
/// cell-sized functions, and an oversized cell should fail gracefully
/// rather than stall in a `6!`-fold scan.
pub fn p_canonical(f: &TruthTable) -> Result<(TruthTable, Vec<usize>), LogicError> {
    if f.n_vars() > 6 {
        return Err(LogicError::TooManyVars(f.n_vars()));
    }
    let mut best: Option<(TruthTable, Vec<usize>)> = None;
    let mut perms = Permutations::new(f.n_vars());
    while let Some(perm) = perms.next() {
        let g = f.permute(perm).expect("valid permutation");
        if best.as_ref().is_none_or(|(b, _)| g < *b) {
            best = Some((g, perm.to_vec()));
        }
    }
    Ok(best.expect("at least the identity permutation"))
}

/// An NPN equivalence class, keyed by its canonical truth table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NpnClass {
    canonical: TruthTable,
}

impl NpnClass {
    /// The class containing `f`.
    pub fn of(f: &TruthTable) -> Self {
        NpnClass {
            canonical: npn_canonical(f).0,
        }
    }

    /// The canonical representative table.
    pub fn representative(&self) -> &TruthTable {
        &self.canonical
    }

    /// Whether `f` belongs to this class.
    pub fn contains(&self, f: &TruthTable) -> bool {
        npn_canonical(f).0 == self.canonical
    }
}

/// An incremental registry of NPN equivalence classes: feed it functions,
/// get back a dense class id plus the transform onto the class canon.
///
/// This is the batch-level complement of [`npn_canonical`]: a candidate
/// batch full of NPN-transforms of each other collapses to a handful of
/// classes, and downstream work (orbit walks, screens, SAT rep sets) can
/// be done once per class instead of once per candidate. Ids are assigned
/// in first-appearance order, so the mapping is deterministic for a fixed
/// feed order.
#[derive(Debug, Clone, Default)]
pub struct NpnClasses {
    ids: HashMap<TruthTable, usize>,
    reps: Vec<TruthTable>,
}

impl NpnClasses {
    /// An empty registry.
    pub fn new() -> Self {
        NpnClasses::default()
    }

    /// Classifies `f`: returns its class id (dense, first-appearance
    /// order) and the transform `t` with `t.apply(f) == canonical`.
    ///
    /// # Panics
    ///
    /// Panics if the function has more than 6 variables (see
    /// [`npn_canonical`]).
    pub fn classify(&mut self, f: &TruthTable) -> (usize, NpnTransform) {
        let (canon, t) = npn_canonical(f);
        if let Some(&id) = self.ids.get(&canon) {
            return (id, t);
        }
        let id = self.reps.len();
        self.ids.insert(canon.clone(), id);
        self.reps.push(canon);
        (id, t)
    }

    /// The canonical representative of class `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn representative(&self, id: usize) -> &TruthTable {
        &self.reps[id]
    }

    /// Number of distinct classes seen so far.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// Whether no function has been classified yet.
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }
}

/// A point of the full NPN interpretation group acting on a
/// [`VectorFunction`]: negate inputs, permute inputs, permute outputs,
/// negate outputs — the complete I/O freedom the paper's adversary must
/// grant a camouflaged block.
///
/// [`IoInterpretation::apply`] evaluates the pipeline
/// `f.negate_inputs(in_neg) → permute_inputs(in_perm) →
/// permute_outputs(out_perm) → negate_outputs(out_neg)`; `in_neg` is in
/// the *pre-permutation* frame (bit `v` inverts `f`'s input `v`) and
/// `out_neg` in the *post-permutation* frame (bit `j` inverts final
/// output `j`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IoInterpretation {
    /// Input permutation: `f`'s input `v` is driven by wire `in_perm[v]`.
    pub in_perm: Vec<usize>,
    /// Pre-permutation input polarity mask.
    pub in_neg: u32,
    /// Output permutation: `f`'s output `i` appears at `out_perm[i]`.
    pub out_perm: Vec<usize>,
    /// Post-permutation output polarity mask.
    pub out_neg: u32,
}

impl IoInterpretation {
    /// The identity interpretation for an `n_in → n_out` function.
    pub fn identity(n_in: usize, n_out: usize) -> Self {
        IoInterpretation {
            in_perm: (0..n_in).collect(),
            in_neg: 0,
            out_perm: (0..n_out).collect(),
            out_neg: 0,
        }
    }

    /// A pure permutation interpretation (both polarity masks empty) —
    /// the P subgroup the pre-NPN adversary was limited to.
    pub fn from_perms(in_perm: Vec<usize>, out_perm: Vec<usize>) -> Self {
        IoInterpretation {
            in_perm,
            in_neg: 0,
            out_perm,
            out_neg: 0,
        }
    }

    /// Whether this is the identity interpretation.
    pub fn is_identity(&self) -> bool {
        self.in_neg == 0
            && self.out_neg == 0
            && self.in_perm.iter().enumerate().all(|(i, &p)| i == p)
            && self.out_perm.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// Applies the interpretation to a function.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadPermutation`] if either permutation does
    /// not match the function's arity.
    ///
    /// # Panics
    ///
    /// Panics if a polarity mask has bits beyond the function's arity.
    pub fn apply(&self, f: &VectorFunction) -> Result<VectorFunction, LogicError> {
        let g = f
            .negate_inputs(self.in_neg)
            .permute_inputs(&self.in_perm)?
            .permute_outputs(&self.out_perm)?;
        Ok(g.negate_outputs(self.out_neg))
    }

    /// The composition "apply `self`, then `then`": for every `f`,
    /// `then.apply(&self.apply(f)) == self.compose(then).apply(f)`.
    ///
    /// # Panics
    ///
    /// Panics if the two interpretations' arities disagree.
    pub fn compose(&self, then: &IoInterpretation) -> Self {
        let n_in = self.in_perm.len();
        let n_out = self.out_perm.len();
        assert_eq!(then.in_perm.len(), n_in, "input arity mismatch");
        assert_eq!(then.out_perm.len(), n_out, "output arity mismatch");
        let mut in_perm = vec![0; n_in];
        let mut in_neg = self.in_neg;
        for v in 0..n_in {
            in_perm[v] = then.in_perm[self.in_perm[v]];
            if then.in_neg & (1 << self.in_perm[v]) != 0 {
                in_neg ^= 1 << v;
            }
        }
        let mut inv_then_out = vec![0; n_out];
        for (i, &p) in then.out_perm.iter().enumerate() {
            inv_then_out[p] = i;
        }
        let mut out_perm = vec![0; n_out];
        let mut out_neg = then.out_neg;
        for i in 0..n_out {
            out_perm[i] = then.out_perm[self.out_perm[i]];
        }
        for j in 0..n_out {
            if self.out_neg & (1 << inv_then_out[j]) != 0 {
                out_neg ^= 1 << j;
            }
        }
        IoInterpretation {
            in_perm,
            in_neg,
            out_perm,
            out_neg,
        }
    }

    /// The inverse interpretation, such that
    /// `t.compose(&t.inverse())` is the identity.
    pub fn inverse(&self) -> Self {
        let n_in = self.in_perm.len();
        let n_out = self.out_perm.len();
        let mut in_perm = vec![0; n_in];
        let mut in_neg = 0u32;
        for (v, &p) in self.in_perm.iter().enumerate() {
            in_perm[p] = v;
            if self.in_neg & (1 << v) != 0 {
                in_neg |= 1 << p;
            }
        }
        let mut out_perm = vec![0; n_out];
        let mut out_neg = 0u32;
        for (i, &q) in self.out_perm.iter().enumerate() {
            out_perm[q] = i;
        }
        for j in 0..n_out {
            if self.out_neg & (1 << self.out_perm[j]) != 0 {
                out_neg |= 1 << j;
            }
        }
        IoInterpretation {
            in_perm,
            in_neg,
            out_perm,
            out_neg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_count() {
        assert_eq!(all_permutations(0).len(), 1);
        assert_eq!(all_permutations(1).len(), 1);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(4).len(), 24);
    }

    #[test]
    fn lazy_stream_is_lexicographic_and_complete() {
        for n in 0..=5usize {
            let mut perms = Permutations::new(n);
            let mut seen: Vec<Vec<usize>> = Vec::new();
            while let Some(p) = perms.next() {
                if let Some(prev) = seen.last() {
                    assert!(prev.as_slice() < p, "not lexicographic at {p:?}");
                }
                seen.push(p.to_vec());
            }
            assert_eq!(seen, all_permutations(n), "n = {n}");
            assert!(perms.next().is_none(), "exhausted stream stays exhausted");
            // Reset rewinds to the identity.
            perms.reset();
            let restart = perms.next().map(<[usize]>::to_vec);
            assert_eq!(restart.as_deref(), seen.first().map(Vec::as_slice));
        }
    }

    #[test]
    fn transform_inverse_roundtrip() {
        let f = TruthTable::from_fn(4, |m| (m * 7 + 3) % 5 < 2);
        let t = NpnTransform {
            perm: vec![2, 0, 3, 1],
            input_neg: 0b0110,
            output_neg: true,
        };
        let g = t.apply(&f);
        assert_eq!(t.inverse().apply(&g), f);
    }

    #[test]
    fn and_or_nand_nor_share_npn_class() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let and = a.and(&b);
        let class = NpnClass::of(&and);
        assert!(class.contains(&a.or(&b)));
        assert!(class.contains(&a.and(&b).not()));
        assert!(class.contains(&a.or(&b).not()));
        assert!(class.contains(&a.not().and(&b)));
        assert!(!class.contains(&a.xor(&b)));
    }

    #[test]
    fn canonical_is_invariant_over_class() {
        let f = TruthTable::from_fn(3, |m| [1, 0, 0, 1, 1, 1, 0, 1][m] == 1);
        let (canon, _) = npn_canonical(&f);
        // Apply a few random-ish transforms; canonical form must not move.
        for (perm, neg, oneg) in [
            (vec![1, 2, 0], 0b101u32, true),
            (vec![2, 1, 0], 0b010, false),
            (vec![0, 2, 1], 0b111, true),
        ] {
            let t = NpnTransform {
                perm,
                input_neg: neg,
                output_neg: oneg,
            };
            let g = t.apply(&f);
            assert_eq!(npn_canonical(&g).0, canon);
        }
    }

    #[test]
    fn npn_transform_recovers_canonical() {
        let f = TruthTable::from_fn(4, |m| (m ^ (m >> 2)) & 3 == 2);
        let (canon, t) = npn_canonical(&f);
        assert_eq!(t.apply(&f), canon);
    }

    #[test]
    fn p_canonical_respects_permutation_only() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        // a·¬b and ¬a·b are P-equivalent...
        let f = a.and(&b.not());
        let g = a.not().and(&b);
        assert_eq!(p_canonical(&f).unwrap().0, p_canonical(&g).unwrap().0);
        // ...but a·b is not P-equivalent to a+b.
        assert_ne!(
            p_canonical(&a.and(&b)).unwrap().0,
            p_canonical(&a.or(&b)).unwrap().0
        );
    }

    #[test]
    fn p_canonical_rejects_oversized_cells() {
        let f = TruthTable::zero(7);
        assert!(matches!(p_canonical(&f), Err(LogicError::TooManyVars(7))));
    }

    #[test]
    fn negation_masks_are_gray_coded_and_complete() {
        for n in 0..=4usize {
            let mut masks = NegationMasks::new(n);
            assert_eq!(masks.len(), 1 << n);
            let mut seen = Vec::new();
            let mut prev: Option<u32> = None;
            while let Some((mask, flipped)) = masks.next() {
                match (prev, flipped) {
                    (None, None) => assert_eq!(mask, 0),
                    (Some(p), Some(bit)) => assert_eq!(p ^ mask, 1 << bit),
                    other => panic!("inconsistent step {other:?}"),
                }
                assert_eq!(u64::from(mask), gray_code(seen.len() as u64));
                assert_eq!(gray_rank(u64::from(mask)), seen.len() as u64);
                prev = Some(mask);
                seen.push(mask);
            }
            assert_eq!(seen.len(), 1 << n, "n = {n}");
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 1 << n, "all masks distinct");
            assert!(masks.next().is_none());
            masks.reset();
            assert_eq!(masks.next(), Some((0, None)));
        }
    }

    #[test]
    fn io_interpretation_apply_compose_inverse() {
        let f = VectorFunction::from_lookup_table(3, 2, &[1, 0, 3, 2, 2, 3, 1, 0]).unwrap();
        let t = IoInterpretation {
            in_perm: vec![2, 0, 1],
            in_neg: 0b101,
            out_perm: vec![1, 0],
            out_neg: 0b10,
        };
        // apply == the documented pipeline.
        let manual = f
            .negate_inputs(0b101)
            .permute_inputs(&[2, 0, 1])
            .unwrap()
            .permute_outputs(&[1, 0])
            .unwrap()
            .negate_outputs(0b10);
        assert_eq!(t.apply(&f).unwrap(), manual);
        // compose(a, b).apply == b.apply ∘ a.apply
        let u = IoInterpretation {
            in_perm: vec![1, 2, 0],
            in_neg: 0b011,
            out_perm: vec![0, 1],
            out_neg: 0b01,
        };
        assert_eq!(
            t.compose(&u).apply(&f).unwrap(),
            u.apply(&t.apply(&f).unwrap()).unwrap()
        );
        // inverse undoes apply, and composes to the identity.
        assert_eq!(t.inverse().apply(&t.apply(&f).unwrap()).unwrap(), f);
        assert!(t.compose(&t.inverse()).is_identity());
        assert!(t.inverse().compose(&t).is_identity());
        assert!(IoInterpretation::identity(3, 2).is_identity());
        assert!(!t.is_identity());
    }

    #[test]
    fn npn_classes_assign_dense_first_appearance_ids() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let mut classes = NpnClasses::new();
        let (and_id, t) = classes.classify(&a.and(&b));
        assert_eq!(and_id, 0);
        assert_eq!(t.apply(&a.and(&b)), *classes.representative(0));
        // NOR is NPN-equivalent to AND: same id, different transform.
        let (nor_id, t2) = classes.classify(&a.or(&b).not());
        assert_eq!(nor_id, 0);
        assert_eq!(t2.apply(&a.or(&b).not()), *classes.representative(0));
        // XOR opens a fresh class.
        assert_eq!(classes.classify(&a.xor(&b)).0, 1);
        assert_eq!(classes.len(), 2);
    }

    #[test]
    fn number_of_npn_classes_of_2var_functions() {
        use std::collections::HashSet;
        let mut classes = HashSet::new();
        for bits in 0..16u64 {
            let f = TruthTable::from_word(2, bits).unwrap();
            classes.insert(npn_canonical(&f).0);
        }
        // Known: 2-variable functions fall into 4 NPN classes
        // (const, literal, AND-like, XOR-like).
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn number_of_npn_classes_of_3var_functions() {
        use std::collections::HashSet;
        let mut classes = HashSet::new();
        for bits in 0..256u64 {
            let f = TruthTable::from_word(3, bits).unwrap();
            classes.insert(npn_canonical(&f).0);
        }
        // Known result: 14 NPN classes of 3-variable functions.
        assert_eq!(classes.len(), 14);
    }
}
