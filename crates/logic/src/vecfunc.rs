use std::fmt;

use crate::{LogicError, TruthTable};

/// A multi-output Boolean function — e.g. a 4→4 S-box.
///
/// This is the unit of "viable function" in the paper: the adversary knows
/// a set of `VectorFunction`s the obfuscated block might implement, and the
/// designer merges them into one circuit. Phase II's pin-assignment freedom
/// is exposed here as [`VectorFunction::permute_inputs`] and
/// [`VectorFunction::permute_outputs`].
///
/// # Example
///
/// ```
/// use mvf_logic::VectorFunction;
///
/// // A 2-bit swap: (a, b) -> (b, a).
/// let f = VectorFunction::from_lookup_table(2, 2, &[0b00, 0b10, 0b01, 0b11])?;
/// assert_eq!(f.eval(0b01), 0b10);
/// assert!(f.is_bijection());
/// # Ok::<(), mvf_logic::LogicError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VectorFunction {
    n_inputs: usize,
    outputs: Vec<TruthTable>,
}

impl VectorFunction {
    /// Builds a function from per-output truth tables.
    ///
    /// # Panics
    ///
    /// Panics if any table's arity differs from `n_inputs`.
    pub fn new(n_inputs: usize, outputs: Vec<TruthTable>) -> Self {
        for t in &outputs {
            assert_eq!(t.n_vars(), n_inputs, "output arity mismatch");
        }
        VectorFunction { n_inputs, outputs }
    }

    /// Builds a function from a lookup table: `table[m]` is the output word
    /// for input minterm `m`, with output bit `i` in bit `i`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadTableLength`] if `table.len() != 2^n_inputs`
    /// and [`LogicError::TooManyVars`] if `n_inputs` exceeds the supported
    /// maximum.
    pub fn from_lookup_table(
        n_inputs: usize,
        n_outputs: usize,
        table: &[u16],
    ) -> Result<Self, LogicError> {
        if n_inputs > crate::MAX_VARS {
            return Err(LogicError::TooManyVars(n_inputs));
        }
        if table.len() != 1 << n_inputs {
            return Err(LogicError::BadTableLength(table.len()));
        }
        let outputs = (0..n_outputs)
            .map(|bit| TruthTable::from_fn(n_inputs, |m| (table[m] >> bit) & 1 == 1))
            .collect();
        Ok(VectorFunction { n_inputs, outputs })
    }

    /// Number of inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The truth table of output `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn output(&self, i: usize) -> &TruthTable {
        &self.outputs[i]
    }

    /// All output tables, in order.
    pub fn outputs(&self) -> &[TruthTable] {
        &self.outputs
    }

    /// Evaluates the function: returns the output word for input minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^n_inputs`.
    pub fn eval(&self, m: usize) -> u16 {
        let mut out = 0u16;
        for (i, t) in self.outputs.iter().enumerate() {
            if t.get(m) {
                out |= 1 << i;
            }
        }
        out
    }

    /// The function's lookup table (`2^n_inputs` output words).
    pub fn to_lookup_table(&self) -> Vec<u16> {
        (0..1usize << self.n_inputs).map(|m| self.eval(m)).collect()
    }

    /// `true` iff `n_inputs == n_outputs` and the function is a bijection.
    pub fn is_bijection(&self) -> bool {
        if self.n_inputs != self.outputs.len() {
            return false;
        }
        let mut seen = vec![false; 1 << self.n_inputs];
        for m in 0..(1usize << self.n_inputs) {
            let y = self.eval(m) as usize;
            if seen[y] {
                return false;
            }
            seen[y] = true;
        }
        true
    }

    /// Applies an input-pin permutation: input `v` of `self` is driven by
    /// wire `perm[v]` of the permuted function, i.e. the new function `g`
    /// satisfies `g(x) = f(x')` with `x'[v] = x[perm[v]]`.
    ///
    /// This is the Phase-II genotype's input half.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadPermutation`] if `perm` is not a
    /// permutation of `0..n_inputs`.
    pub fn permute_inputs(&self, perm: &[usize]) -> Result<Self, LogicError> {
        let outputs = self
            .outputs
            .iter()
            .map(|t| t.permute(perm))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(VectorFunction {
            n_inputs: self.n_inputs,
            outputs,
        })
    }

    /// [`VectorFunction::permute_inputs`] into a caller-provided scratch
    /// function, reusing its table storage. `out` is reshaped to this
    /// function's arity; after warm-up the call performs no allocation —
    /// the step that makes permutation-orbit walks (the any-IO
    /// plausibility sweep) allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadPermutation`] if `perm` is not a
    /// permutation of `0..n_inputs`; `out` is unspecified (but valid) on
    /// error.
    pub fn permute_inputs_into(
        &self,
        perm: &[usize],
        out: &mut VectorFunction,
    ) -> Result<(), LogicError> {
        out.n_inputs = self.n_inputs;
        out.outputs
            .resize_with(self.outputs.len(), || TruthTable::zero(self.n_inputs));
        for (src, dst) in self.outputs.iter().zip(&mut out.outputs) {
            src.permute_into(perm, dst)?;
        }
        Ok(())
    }

    /// Applies input-polarity flips: the new function `g` satisfies
    /// `g(x) = f(x ⊕ mask)` — each set bit of `mask` names an input read
    /// through an inverter.
    ///
    /// Together with [`VectorFunction::permute_inputs`] this is the input
    /// half of an NPN interpretation. The two commute up to a mask
    /// translation: negating before permuting with mask `a` equals
    /// permuting first and negating with `a'` where `a'` has bit
    /// `perm[v]` set iff `a` has bit `v` set.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has a bit at or above `n_inputs`.
    pub fn negate_inputs(&self, mask: u32) -> Self {
        let mut out = self.clone();
        out.negate_inputs_assign(mask);
        out
    }

    /// In-place form of [`VectorFunction::negate_inputs`].
    ///
    /// # Panics
    ///
    /// Panics if `mask` has a bit at or above `n_inputs`.
    pub fn negate_inputs_assign(&mut self, mask: u32) {
        assert!(
            u64::from(mask) >> self.n_inputs == 0,
            "negation mask {mask:#b} exceeds {} inputs",
            self.n_inputs
        );
        let mut m = mask;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            self.negate_input_assign(v);
            m &= m - 1;
        }
    }

    /// Flips the polarity of a single input in place: `f(x) ← f(x ⊕ e_var)`.
    /// One Gray-code step of an NPN orbit walk.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_inputs`.
    pub fn negate_input_assign(&mut self, var: usize) {
        for t in &mut self.outputs {
            t.flip_var_assign(var);
        }
    }

    /// Applies output-polarity flips: output `i` is complemented iff bit
    /// `i` of `mask` is set. The output half of an NPN interpretation,
    /// applied *after* any output permutation.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has a bit at or above `n_outputs`.
    pub fn negate_outputs(&self, mask: u32) -> Self {
        let mut out = self.clone();
        out.negate_outputs_assign(mask);
        out
    }

    /// In-place form of [`VectorFunction::negate_outputs`].
    ///
    /// # Panics
    ///
    /// Panics if `mask` has a bit at or above `n_outputs`.
    pub fn negate_outputs_assign(&mut self, mask: u32) {
        assert!(
            (u64::from(mask)) >> self.outputs.len() == 0,
            "negation mask {mask:#b} exceeds {} outputs",
            self.outputs.len()
        );
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            self.negate_output_assign(i);
            m &= m - 1;
        }
    }

    /// Complements a single output in place. One Gray-code step of an NPN
    /// orbit walk.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_outputs`.
    pub fn negate_output_assign(&mut self, i: usize) {
        self.outputs[i].not_assign();
    }

    /// Applies an output-pin permutation: output `i` of `self` appears at
    /// position `perm[i]` of the result.
    ///
    /// This is the Phase-II genotype's output half.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadPermutation`] if `perm` is not a
    /// permutation of `0..n_outputs`.
    pub fn permute_outputs(&self, perm: &[usize]) -> Result<Self, LogicError> {
        let n = self.outputs.len();
        if perm.len() != n {
            return Err(LogicError::BadPermutation);
        }
        let mut new_outputs = vec![None; n];
        for (i, &p) in perm.iter().enumerate() {
            if p >= n || new_outputs[p].is_some() {
                return Err(LogicError::BadPermutation);
            }
            new_outputs[p] = Some(self.outputs[i].clone());
        }
        Ok(VectorFunction {
            n_inputs: self.n_inputs,
            outputs: new_outputs
                .into_iter()
                .map(|o| o.expect("filled"))
                .collect(),
        })
    }

    /// [`VectorFunction::permute_outputs`] into a caller-provided scratch
    /// function, reusing its table storage (allocation-free once warm).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadPermutation`] if `perm` is not a
    /// permutation of `0..n_outputs`; `out` is unspecified (but valid) on
    /// error.
    pub fn permute_outputs_into(
        &self,
        perm: &[usize],
        out: &mut VectorFunction,
    ) -> Result<(), LogicError> {
        let n = self.outputs.len();
        if perm.len() != n {
            return Err(LogicError::BadPermutation);
        }
        let mut seen = 0u64;
        for &p in perm {
            if p >= n || seen & (1 << p) != 0 {
                return Err(LogicError::BadPermutation);
            }
            seen |= 1 << p;
        }
        out.n_inputs = self.n_inputs;
        out.outputs
            .resize_with(n, || TruthTable::zero(self.n_inputs));
        for (i, &p) in perm.iter().enumerate() {
            out.outputs[p].copy_from(&self.outputs[i]);
        }
        Ok(())
    }
}

impl fmt::Debug for VectorFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VectorFunction({}→{})",
            self.n_inputs,
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn present_sbox() -> VectorFunction {
        const S: [u16; 16] = [
            0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
        ];
        VectorFunction::from_lookup_table(4, 4, &S).unwrap()
    }

    #[test]
    fn lookup_roundtrip() {
        let f = present_sbox();
        assert_eq!(f.eval(0), 0xC);
        assert_eq!(f.eval(0xF), 0x2);
        assert_eq!(
            f.to_lookup_table(),
            vec![0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2]
        );
    }

    #[test]
    fn bijection_detection() {
        assert!(present_sbox().is_bijection());
        let collapsed = VectorFunction::from_lookup_table(2, 2, &[0, 0, 1, 2]).unwrap();
        assert!(!collapsed.is_bijection());
        let non_square = VectorFunction::from_lookup_table(2, 1, &[0, 1, 1, 0]).unwrap();
        assert!(!non_square.is_bijection());
    }

    #[test]
    fn input_permutation_semantics() {
        let f = present_sbox();
        let perm = vec![2, 0, 3, 1];
        let g = f.permute_inputs(&perm).unwrap();
        for m in 0..16usize {
            // g's wire perm[v] carries f's input v.
            let mut m2 = 0usize;
            for v in 0..4 {
                if m & (1 << v) != 0 {
                    m2 |= 1 << perm[v];
                }
            }
            assert_eq!(f.eval(m), g.eval(m2));
        }
    }

    #[test]
    fn output_permutation_semantics() {
        let f = present_sbox();
        let perm = vec![3, 1, 0, 2];
        let g = f.permute_outputs(&perm).unwrap();
        for m in 0..16usize {
            let y = f.eval(m);
            let z = g.eval(m);
            for i in 0..4 {
                assert_eq!((y >> i) & 1, (z >> perm[i]) & 1);
            }
        }
    }

    #[test]
    fn permutation_errors() {
        let f = present_sbox();
        assert!(f.permute_inputs(&[0, 0, 1, 2]).is_err());
        assert!(f.permute_outputs(&[0, 1]).is_err());
    }

    #[test]
    fn into_variants_match_allocating_permutations() {
        let f = present_sbox();
        // One scratch pair reused across every orbit element, including
        // after an error left it in an unspecified state.
        let mut scratch_in = VectorFunction::from_lookup_table(1, 1, &[0, 1]).unwrap();
        let mut scratch_out = scratch_in.clone();
        assert!(f
            .permute_inputs_into(&[0, 0, 1, 2], &mut scratch_in)
            .is_err());
        assert!(f.permute_outputs_into(&[0, 1], &mut scratch_out).is_err());
        for perm in [[0, 1, 2, 3], [2, 0, 3, 1], [3, 2, 1, 0], [1, 3, 0, 2]] {
            f.permute_inputs_into(&perm, &mut scratch_in).unwrap();
            assert_eq!(scratch_in, f.permute_inputs(&perm).unwrap());
            f.permute_outputs_into(&perm, &mut scratch_out).unwrap();
            assert_eq!(scratch_out, f.permute_outputs(&perm).unwrap());
        }
    }

    #[test]
    fn negation_semantics() {
        let f = present_sbox();
        let g = f.negate_inputs(0b0101);
        for m in 0..16usize {
            assert_eq!(g.eval(m), f.eval(m ^ 0b0101));
        }
        let h = f.negate_outputs(0b1010);
        for m in 0..16usize {
            assert_eq!(h.eval(m), f.eval(m) ^ 0b1010);
        }
        // Gray-step forms compose to the mask forms.
        let mut step = f.clone();
        step.negate_input_assign(0);
        step.negate_input_assign(2);
        assert_eq!(step, g);
        let mut ostep = f.clone();
        ostep.negate_output_assign(1);
        ostep.negate_output_assign(3);
        assert_eq!(ostep, h);
        // Negate-then-permute equals permute-then-negate with the mask
        // translated through the permutation.
        let perm = [2, 0, 3, 1];
        let a = 0b0110u32;
        let mut translated = 0u32;
        for v in 0..4 {
            if a & (1 << v) != 0 {
                translated |= 1 << perm[v];
            }
        }
        assert_eq!(
            f.negate_inputs(a).permute_inputs(&perm).unwrap(),
            f.permute_inputs(&perm).unwrap().negate_inputs(translated)
        );
    }

    #[test]
    fn bad_table_length_rejected() {
        assert!(matches!(
            VectorFunction::from_lookup_table(3, 2, &[0; 7]),
            Err(LogicError::BadTableLength(7))
        ));
    }
}
