//! Boolean-function foundations for the MVF obfuscation toolchain.
//!
//! This crate provides the function-level substrate used by every other
//! crate in the workspace:
//!
//! * [`TruthTable`] — bit-packed truth tables over up to 16 variables with
//!   the full complement of Boolean operations (allocating and in-place),
//!   cofactoring, support computation and variable permutation.
//! * [`TtArena`] — a flat arena packing many equally-sized tables into one
//!   contiguous allocation, with fused complement-aware operations between
//!   slots; the backing store of allocation-free circuit simulation.
//! * [`Cube`] / [`Sop`] — cube (product term) and sum-of-products covers.
//! * [`isop`] — the Minato–Morreale irredundant sum-of-products algorithm,
//!   used by the refactoring pass of the synthesis engine.
//! * [`npn`] — NPN and P (permutation-only) canonical forms, used by the
//!   cut-rewriting pass and by the camouflaged-cell matcher.
//! * [`VectorFunction`] — multi-output Boolean functions (e.g. an S-box),
//!   with input/output pin permutation, the degree of freedom exploited by
//!   Phase II of the paper.
//!
//! # Example
//!
//! ```
//! use mvf_logic::TruthTable;
//!
//! // f(a, b) = a AND b
//! let a = TruthTable::var(0, 2);
//! let b = TruthTable::var(1, 2);
//! let f = a.and(&b);
//! assert_eq!(f.count_ones(), 1);
//! // Positive cofactor with respect to b is just a.
//! assert_eq!(f.cofactor(1, true), TruthTable::var(0, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod error;
mod isop;
pub mod npn;
mod tt;
mod vecfunc;

pub use cube::{Cube, Sop};
pub use error::LogicError;
pub use isop::isop;
pub use npn::{IoInterpretation, NegationMasks, NpnClass, NpnClasses, NpnTransform};
pub use tt::{TruthTable, TtArena};
pub use vecfunc::VectorFunction;

/// Maximum number of variables supported by [`TruthTable`].
pub const MAX_VARS: usize = 16;
