//! Minato–Morreale irredundant sum-of-products (ISOP) computation.
//!
//! Given an incompletely specified function as a pair of truth tables
//! `(lower, upper)` with `lower ⊆ upper` (onset and onset∪don't-care), the
//! algorithm produces an irredundant cube cover `C` with
//! `lower ⊆ C ⊆ upper`. This is the classical recursive procedure used by
//! ABC's refactoring pass, which this workspace's synthesis engine mirrors.

use crate::{Cube, Sop, TruthTable};

/// Computes an irredundant sum-of-products cover for the interval
/// `[lower, upper]`.
///
/// The returned cover `C` satisfies `lower ⊆ C ⊆ upper` and no cube or
/// literal can be dropped without violating the lower bound.
///
/// # Panics
///
/// Panics if the tables differ in arity, if `lower ⊄ upper`, or if the
/// arity exceeds 32 (the cube limit).
///
/// # Example
///
/// ```
/// use mvf_logic::{isop, TruthTable};
///
/// let f = TruthTable::from_fn(3, |m| m.count_ones() >= 2); // majority
/// let cover = isop(&f, &f);
/// assert_eq!(cover.to_truth_table(), f);
/// assert_eq!(cover.n_cubes(), 3); // ab + ac + bc
/// ```
pub fn isop(lower: &TruthTable, upper: &TruthTable) -> Sop {
    assert_eq!(lower.n_vars(), upper.n_vars(), "isop arity mismatch");
    assert!(lower.n_vars() <= 32, "isop limited to 32 variables");
    assert!(
        lower.and_not(upper).is_zero(),
        "isop requires lower ⊆ upper"
    );
    let n = lower.n_vars();
    let mut cubes = Vec::new();
    let _ = isop_rec(lower, upper, n, &mut cubes, Cube::new());
    Sop::from_cubes(n, cubes)
}

/// Recursive core. Returns the function realized by the cubes added for
/// this sub-problem (needed by the caller to compute the residual onset).
fn isop_rec(
    lower: &TruthTable,
    upper: &TruthTable,
    scan_bound: usize,
    out: &mut Vec<Cube>,
    prefix: Cube,
) -> TruthTable {
    if lower.is_zero() {
        return TruthTable::zero(lower.n_vars());
    }
    if upper.is_one() {
        out.push(prefix);
        return TruthTable::one(lower.n_vars());
    }
    // Pick the top-most variable in the combined support. Cofactors then
    // only depend on variables below it, so the bound shrinks each level.
    let var = (0..scan_bound)
        .rev()
        .find(|&v| lower.depends_on(v) || upper.depends_on(v))
        .expect("non-constant interval must have support");

    let l0 = lower.cofactor(var, false);
    let l1 = lower.cofactor(var, true);
    let u0 = upper.cofactor(var, false);
    let u1 = upper.cofactor(var, true);

    // Cubes that must carry ¬var: onset minterms of the 0-half not
    // coverable in the 1-half.
    let f0 = isop_rec(&l0.and_not(&u1), &u0, var, out, prefix.with_neg(var));
    // Cubes that must carry var.
    let f1 = isop_rec(&l1.and_not(&u0), &u1, var, out, prefix.with_pos(var));
    // Remaining onset is covered by cubes independent of var.
    let lnew = l0.and_not(&f0).or(&l1.and_not(&f1));
    let f2 = isop_rec(&lnew, &u0.and(&u1), var, out, prefix);

    let x = TruthTable::var(var, lower.n_vars());
    x.not().and(&f0).or(&x.and(&f1)).or(&f2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_interval(lower: &TruthTable, upper: &TruthTable) {
        let cover = isop(lower, upper);
        let f = cover.to_truth_table();
        assert!(lower.and_not(&f).is_zero(), "cover misses onset");
        assert!(f.and_not(upper).is_zero(), "cover exceeds upper bound");
    }

    #[test]
    fn exact_simple_functions() {
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        for f in [
            a.and(&b),
            a.or(&b),
            a.xor(&b),
            a.and(&b).or(&c),
            a.ite(&b, &c),
            TruthTable::zero(3),
            TruthTable::one(3),
        ] {
            let cover = isop(&f, &f);
            assert_eq!(cover.to_truth_table(), f, "f={f:?}");
        }
    }

    #[test]
    fn xor_needs_two_cubes() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let f = a.xor(&b);
        let cover = isop(&f, &f);
        assert_eq!(cover.n_cubes(), 2);
        assert_eq!(cover.n_literals(), 4);
    }

    #[test]
    fn majority_is_three_cubes() {
        let f = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let cover = isop(&f, &f);
        assert_eq!(cover.n_cubes(), 3);
        assert_eq!(cover.n_literals(), 6);
    }

    #[test]
    fn dont_cares_shrink_cover() {
        // Onset {m=7}, don't care everything with >= 2 ones: the single
        // cube "a" (or similar) suffices instead of a·b·c.
        let lower = TruthTable::from_fn(3, |m| m == 7);
        let upper = TruthTable::from_fn(3, |m| m.count_ones() >= 2 || m == 7);
        let cover = isop(&lower, &upper);
        check_interval(&lower, &upper);
        assert!(cover.n_literals() < 3, "don't cares should shrink the cube");
    }

    #[test]
    fn randomized_intervals() {
        // Deterministic pseudo-random functions over 6 vars.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let on = TruthTable::from_word(6, next()).unwrap();
            let dc = TruthTable::from_word(6, next()).unwrap();
            let upper = on.or(&dc);
            check_interval(&on, &upper);
        }
    }

    #[test]
    fn exact_random_8var() {
        let f = TruthTable::from_fn(8, |m| (m.wrapping_mul(0x9E37) >> 4) & 3 == 1);
        let cover = isop(&f, &f);
        assert_eq!(cover.to_truth_table(), f);
    }

    #[test]
    #[should_panic(expected = "lower ⊆ upper")]
    fn rejects_inverted_interval() {
        let _ = isop(&TruthTable::one(2), &TruthTable::zero(2));
    }
}
