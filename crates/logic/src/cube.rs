use std::fmt;

use crate::TruthTable;

/// A product term (cube) over up to 32 variables.
///
/// Variable `v` appears positively if bit `v` of `pos` is set, negatively if
/// bit `v` of `neg` is set, and does not appear otherwise. A cube with a
/// variable in both masks is the empty (contradictory) cube; the all-empty
/// cube is the universal cube (constant 1).
///
/// # Example
///
/// ```
/// use mvf_logic::Cube;
///
/// // a ∧ ¬c
/// let c = Cube::new().with_pos(0).with_neg(2);
/// assert!(c.eval(0b001));
/// assert!(!c.eval(0b101));
/// assert_eq!(c.n_literals(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cube {
    pos: u32,
    neg: u32,
}

impl Cube {
    /// The universal cube (no literals, constant 1).
    pub fn new() -> Self {
        Cube { pos: 0, neg: 0 }
    }

    /// Adds a positive literal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= 32`.
    #[must_use]
    pub fn with_pos(mut self, var: usize) -> Self {
        assert!(var < 32, "cube variables limited to 32");
        self.pos |= 1 << var;
        self
    }

    /// Adds a negative literal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= 32`.
    #[must_use]
    pub fn with_neg(mut self, var: usize) -> Self {
        assert!(var < 32, "cube variables limited to 32");
        self.neg |= 1 << var;
        self
    }

    /// Mask of positively appearing variables.
    pub fn pos_mask(&self) -> u32 {
        self.pos
    }

    /// Mask of negatively appearing variables.
    pub fn neg_mask(&self) -> u32 {
        self.neg
    }

    /// `true` iff the cube contains no satisfying assignment.
    pub fn is_contradictory(&self) -> bool {
        self.pos & self.neg != 0
    }

    /// `true` iff the cube is the universal cube.
    pub fn is_universal(&self) -> bool {
        self.pos == 0 && self.neg == 0
    }

    /// Number of literals in the cube.
    pub fn n_literals(&self) -> usize {
        (self.pos.count_ones() + self.neg.count_ones()) as usize
    }

    /// Evaluates the cube on an input assignment bitmask.
    pub fn eval(&self, assignment: usize) -> bool {
        let a = assignment as u32;
        (a & self.pos) == self.pos && (a & self.neg) == 0
    }

    /// The literals of the cube as `(var, polarity)` pairs, ascending by
    /// variable; `polarity` is `true` for positive literals.
    pub fn literals(&self) -> Vec<(usize, bool)> {
        let mut out = Vec::with_capacity(self.n_literals());
        for v in 0..32usize {
            if self.pos & (1 << v) != 0 {
                out.push((v, true));
            }
            if self.neg & (1 << v) != 0 {
                out.push((v, false));
            }
        }
        out
    }

    /// The truth table of the cube over `n_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if the cube mentions a variable `>= n_vars`.
    pub fn to_truth_table(&self, n_vars: usize) -> TruthTable {
        let used = self.pos | self.neg;
        assert!(
            n_vars >= 32 - used.leading_zeros() as usize,
            "cube mentions variables outside the requested arity"
        );
        let mut t = TruthTable::one(n_vars);
        for (v, pol) in self.literals() {
            let x = TruthTable::var(v, n_vars);
            t = if pol { t.and(&x) } else { t.and(&x.not()) };
        }
        t
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_universal() {
            return write!(f, "⊤");
        }
        let mut first = true;
        for (v, pol) in self.literals() {
            if !first {
                write!(f, "·")?;
            }
            first = false;
            if !pol {
                write!(f, "¬")?;
            }
            write!(f, "x{v}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A sum-of-products cover: the OR of a list of [`Cube`]s.
///
/// # Example
///
/// ```
/// use mvf_logic::{Cube, Sop};
///
/// // a·b + ¬a·c
/// let sop = Sop::from_cubes(
///     3,
///     vec![
///         Cube::new().with_pos(0).with_pos(1),
///         Cube::new().with_neg(0).with_pos(2),
///     ],
/// );
/// assert_eq!(sop.n_cubes(), 2);
/// assert!(sop.eval(0b011)); // a=1, b=1
/// assert!(sop.eval(0b100)); // a=0, c=1
/// assert!(!sop.eval(0b001));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Sop {
    n_vars: usize,
    cubes: Vec<Cube>,
}

impl Sop {
    /// An empty cover (constant 0) over `n_vars` variables.
    pub fn zero(n_vars: usize) -> Self {
        Sop {
            n_vars,
            cubes: Vec::new(),
        }
    }

    /// Builds a cover from explicit cubes.
    pub fn from_cubes(n_vars: usize, cubes: Vec<Cube>) -> Self {
        Sop { n_vars, cubes }
    }

    /// The cover's arity.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn n_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals across all cubes.
    pub fn n_literals(&self) -> usize {
        self.cubes.iter().map(Cube::n_literals).sum()
    }

    /// Appends a cube to the cover.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Evaluates the cover on an input assignment bitmask.
    pub fn eval(&self, assignment: usize) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }

    /// The truth table of the cover.
    pub fn to_truth_table(&self) -> TruthTable {
        let mut t = TruthTable::zero(self.n_vars);
        for c in &self.cubes {
            t = t.or(&c.to_truth_table(self.n_vars));
        }
        t
    }
}

impl fmt::Debug for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "⊥");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Cube> for Sop {
    /// Collects cubes into a cover; the arity is set to the smallest value
    /// covering every mentioned variable.
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let used = cubes
            .iter()
            .fold(0u32, |m, c| m | c.pos_mask() | c.neg_mask());
        let n_vars = (32 - used.leading_zeros()) as usize;
        Sop { n_vars, cubes }
    }
}

impl Extend<Cube> for Sop {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        self.cubes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_eval_and_masks() {
        let c = Cube::new().with_pos(1).with_neg(3);
        assert!(c.eval(0b0010));
        assert!(c.eval(0b0110));
        assert!(!c.eval(0b1010));
        assert!(!c.eval(0b0000));
        assert_eq!(c.pos_mask(), 0b0010);
        assert_eq!(c.neg_mask(), 0b1000);
    }

    #[test]
    fn universal_and_contradictory() {
        assert!(Cube::new().is_universal());
        assert!(Cube::new().eval(0b1111));
        let c = Cube::new().with_pos(0).with_neg(0);
        assert!(c.is_contradictory());
        assert!(!c.eval(0));
        assert!(!c.eval(1));
    }

    #[test]
    fn cube_truth_table_matches_eval() {
        let c = Cube::new().with_pos(0).with_neg(2).with_pos(3);
        let t = c.to_truth_table(4);
        for m in 0..16 {
            assert_eq!(t.get(m), c.eval(m), "m={m}");
        }
    }

    #[test]
    fn sop_matches_truth_table() {
        let sop = Sop::from_cubes(
            3,
            vec![
                Cube::new().with_pos(0).with_pos(1),
                Cube::new().with_neg(0).with_pos(2),
            ],
        );
        let t = sop.to_truth_table();
        for m in 0..8 {
            assert_eq!(t.get(m), sop.eval(m));
        }
        assert_eq!(sop.n_literals(), 4);
    }

    #[test]
    fn sop_from_iterator_sizes_arity() {
        let sop: Sop = vec![Cube::new().with_pos(4)].into_iter().collect();
        assert_eq!(sop.n_vars(), 5);
    }
}
