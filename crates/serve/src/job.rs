//! The checkpointable audit job: one workload driven end to end.
//!
//! [`run_audit`] executes the same pipeline as
//! [`Flow::run_many`] for a single workload with the full adversary
//! enabled — Phase I–III search, then the interpretation-freedom sweep —
//! but stepped: an observer callback fires at every safe boundary (each
//! `checkpoint_steps` GA generations, each `sweep_chunk` sweep items)
//! with a complete [`Checkpoint`], and may pause the job there.
//! [`resume_audit`] picks a paused job back up from its checkpoint and
//! finishes **bit-identically** to the run that was never interrupted:
//! the GA state carries the exact RNG stream position and scored
//! population, the sweep progress carries the exact cursor, and
//! everything else is recomputed deterministically.
//!
//! The produced [`WorkloadReport`] equals what
//! `Flow::run_many` reports for the same workload and seed with
//! `attack_sweep + attack_interpretation_freedom + attack_shards(1)`
//! (plus `attack_npn` / `attack_class_share` when the service config
//! sets them) — the crate's integration tests compare the canonical
//! wire encodings byte for byte.

use mvf::{
    Flow, FlowBuilder, FlowConfig, Ga, PinObjective, PlausibilityVerdict, SchemeKind,
    SearchStrategy, Workload, WorkloadReport,
};
use mvf_attack::{AnyIoJob, AnyIoOptions, SimplifyStats};
use mvf_ga::{GaConfig, GeneticAlgorithm, ObjectiveRunner};

use crate::checkpoint::{Checkpoint, CheckpointPhase, GaFinal};
use crate::store::SessionStore;
use crate::ServeConfig;

/// The observer's verdict at a checkpoint boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep running.
    Continue,
    /// Stop here; the job returns [`AuditOutcome::Paused`] with this
    /// boundary's checkpoint.
    Pause,
}

/// How an audit job ended.
pub enum AuditOutcome {
    /// Ran to completion.
    Finished {
        /// The audit report, byte-identical on the wire to the
        /// corresponding `Flow::run_many` entry.
        report: Box<WorkloadReport>,
        /// The sweep solver's inprocessing counters (all zero when the
        /// flow failed before any sweep ran). Reported by the service's
        /// `status` response; never part of the report itself, so
        /// resume bit-identity is unaffected.
        sat: SimplifyStats,
    },
    /// Paused by the observer; resume later with [`resume_audit`].
    Paused(Box<Checkpoint>),
}

/// Runs one workload from the start. See the module docs.
///
/// `seed` is the resolved search seed (use
/// [`Workload::resolve_seed`] to match a `run_many` batch position).
/// `store` optionally warm-starts the sweep from a cached session;
/// results are identical with or without it.
pub fn run_audit(
    cfg: &ServeConfig,
    workload: &Workload,
    seed: u64,
    store: Option<&mut SessionStore>,
    observer: &mut dyn FnMut(&Checkpoint) -> Control,
) -> AuditOutcome {
    drive(cfg, workload, seed, cfg.scheme, 0, None, store, observer)
}

/// Resumes a paused job from its checkpoint. The checkpoint's scheme
/// tag wins over [`ServeConfig::scheme`]: a job resumed after the
/// service's `MVF_SCHEME` knob changed still finishes bit-identically
/// under its original family. See the module docs.
pub fn resume_audit(
    cfg: &ServeConfig,
    checkpoint: Checkpoint,
    store: Option<&mut SessionStore>,
    observer: &mut dyn FnMut(&Checkpoint) -> Control,
) -> AuditOutcome {
    let Checkpoint {
        workload,
        seed,
        scheme,
        failed_evaluations,
        phase,
    } = checkpoint;
    drive(
        cfg,
        &workload,
        seed,
        scheme,
        failed_evaluations,
        Some(phase),
        store,
        observer,
    )
}

/// Convenience wrapper: runs (or resumes) to completion, never pausing.
pub fn audit(
    cfg: &ServeConfig,
    workload: &Workload,
    seed: u64,
    store: Option<&mut SessionStore>,
) -> WorkloadReport {
    match run_audit(cfg, workload, seed, store, &mut |_| Control::Continue) {
        AuditOutcome::Finished { report, .. } => *report,
        AuditOutcome::Paused(_) => unreachable!("the observer never pauses"),
    }
}

#[allow(clippy::too_many_arguments)]
fn drive(
    cfg: &ServeConfig,
    workload: &Workload,
    seed: u64,
    scheme: SchemeKind,
    failed_base: usize,
    phase: Option<CheckpointPhase>,
    store: Option<&mut SessionStore>,
    observer: &mut dyn FnMut(&Checkpoint) -> Control,
) -> AuditOutcome {
    let ga_cfg = GaConfig {
        seed,
        ..cfg.flow.ga.clone()
    };
    let flow: Flow<Ga> = FlowBuilder::new()
        .config(FlowConfig {
            ga: ga_cfg.clone(),
            ..cfg.flow.clone()
        })
        .scheme(scheme)
        .lock_options(cfg.lock)
        .build();
    let strategy_name = flow.strategy().name();
    let checkpoint_steps = cfg.checkpoint_steps.max(1);
    let sweep_chunk = cfg.sweep_chunk.max(1);

    // Phase II: the GA, stepped one generation at a time. A checkpoint
    // in this phase is the engine's own search state.
    let (ga_final, failed_total, resume_sweep) = match phase {
        Some(CheckpointPhase::Sweep { ga, progress }) => (ga, failed_base, Some(progress)),
        ga_phase => {
            let objective = PinObjective::new(
                &workload.functions,
                &flow.config().script,
                flow.library(),
                &flow.config().map,
            );
            let engine = GeneticAlgorithm::new(ga_cfg);
            let mut runner = match ga_phase {
                Some(CheckpointPhase::Ga(state)) => {
                    ObjectiveRunner::resume(engine, &objective, state)
                }
                _ => ObjectiveRunner::start(engine, &objective),
            };
            let mut since_checkpoint = 0usize;
            while runner.step() {
                since_checkpoint += 1;
                if since_checkpoint >= checkpoint_steps && !runner.is_done() {
                    since_checkpoint = 0;
                    let cp = Checkpoint {
                        workload: workload.clone(),
                        seed,
                        scheme,
                        failed_evaluations: failed_base + objective.failed_evaluations(),
                        phase: CheckpointPhase::Ga(runner.state().clone()),
                    };
                    if observer(&cp) == Control::Pause {
                        return AuditOutcome::Paused(Box::new(cp));
                    }
                }
            }
            let state = runner.state();
            let ga_final = GaFinal {
                best: state.best.0.clone(),
                history: state.history.clone(),
                evaluations: state.evaluations,
            };
            (ga_final, failed_base + objective.failed_evaluations(), None)
        }
    };

    // Phases I+III for the winning assignment (deterministic — safe to
    // redo on every resume; only the search and the sweep carry state).
    let outcome = flow.finish_with(
        &workload.functions,
        ga_final.best.clone(),
        ga_final.history.clone(),
        ga_final.evaluations,
        failed_total,
    );
    let result = match outcome {
        Err(_) => {
            // A failed flow has nothing to sweep; the report carries the
            // error, exactly as a `run_many` batch entry would.
            return AuditOutcome::Finished {
                report: Box::new(WorkloadReport {
                    name: workload.name.clone(),
                    seed,
                    strategy: strategy_name,
                    outcome,
                    plausibility: None,
                }),
                sat: SimplifyStats::default(),
            };
        }
        Ok(result) => result,
    };

    // The red-team sweep, stepped in `sweep_chunk` work items. A
    // checkpoint in this phase is the GA outcome plus the sweep cursor.
    let opts = AnyIoOptions {
        shards: 1,
        screen: cfg.attack_screen,
        npn: cfg.attack_npn,
        class_share: cfg.attack_class_share,
        ..AnyIoOptions::default()
    };
    let space = flow.obfuscation_space();
    let mut job = match store {
        Some(store) => store
            .session_in(&space, &result.mapped.netlist)
            .any_io_job_in(
                &space,
                &result.mapped.netlist,
                &result.merged.functions,
                &opts,
            ),
        None => AnyIoJob::new_in(
            &space,
            &result.mapped.netlist,
            result.merged.functions.clone(),
            &opts,
        ),
    };
    if let Some(progress) = &resume_sweep {
        job.restore(progress);
    }
    while !job.is_done() {
        job.step(sweep_chunk);
        if !job.is_done() {
            let cp = Checkpoint {
                workload: workload.clone(),
                seed,
                scheme,
                failed_evaluations: failed_total,
                phase: CheckpointPhase::Sweep {
                    ga: ga_final.clone(),
                    progress: job.progress(),
                },
            };
            if observer(&cp) == Control::Pause {
                return AuditOutcome::Paused(Box::new(cp));
            }
        }
    }
    let sat = job.sat_stats();
    let plausibility = PlausibilityVerdict::from_any_io(job.verdicts());
    AuditOutcome::Finished {
        report: Box::new(WorkloadReport {
            name: workload.name.clone(),
            seed,
            strategy: strategy_name,
            outcome: Ok(result),
            plausibility: Some(plausibility),
        }),
        sat,
    }
}
