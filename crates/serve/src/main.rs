//! The `mvf-serve` binary: the audit service over stdio, or TCP when
//! `MVF_SERVE_ADDR` is set (e.g. `MVF_SERVE_ADDR=127.0.0.1:7171`).
//!
//! See the library crate docs for the protocol and the knob table.

use mvf_serve::{AuditService, ServeConfig};

fn main() -> std::io::Result<()> {
    let cfg = ServeConfig::from_env();
    let service = AuditService::start(cfg);
    let result = match std::env::var("MVF_SERVE_ADDR") {
        Ok(addr) => {
            eprintln!("mvf-serve: listening on {addr}");
            service.serve_tcp(&addr)
        }
        Err(_) => service.serve_stdio(),
    };
    service.shutdown_and_join();
    result
}
