//! Versioned checkpoint files for long audit jobs.
//!
//! A checkpoint captures the complete resumable state of one workload at
//! a safe boundary: during Phase II, the GA engine's
//! [`GaSearchState`] (generation counter, master-RNG stream position,
//! population with fitness); after it, the final search outcome plus the
//! interpretation-freedom sweep's [`AnyIoProgress`]. Everything else —
//! the merged circuit, the encoded solver, the screen — is recomputed
//! deterministically from the workload on resume, so
//! `resume(checkpoint)` finishes bit-identically to the uninterrupted
//! run (asserted by the crate's tests).
//!
//! Fidelity rule: every `f64` in a checkpoint is stored as its IEEE-754
//! bit pattern in hex (`"0x3ff0000000000000"`), not as a decimal number
//! — fitness values can be `INFINITY` (failed evaluations), and resume
//! must reproduce the exact bits the run would have carried.
//!
//! The file format is versioned: [`FORMAT`] names it,
//! [`VERSION`] gates compatibility, and readers reject anything
//! they do not understand rather than guessing.

use std::fmt;
use std::io::Write;
use std::path::Path;

use mvf::merge::PinAssignment;
use mvf::{SchemeKind, Workload};
use mvf_attack::AnyIoProgress;
use mvf_ga::{GaSearchState, GenStats};

use crate::json::Value;
use crate::wire::{
    decode_assignment, decode_workload, encode_assignment, encode_workload, WireError,
};

/// The `format` tag every checkpoint file carries.
pub const FORMAT: &str = "mvf-serve-checkpoint";
/// The current checkpoint format version. Version 2 added the sweep
/// progress's `resolved` verdict cache (the NPN/class-sharing sweep);
/// version 3 added the obfuscation `scheme` tag, so a resumed job keeps
/// its family even if the service's `MVF_SCHEME` knob changed in
/// between. Older files are rejected rather than resumed with guessed
/// state.
pub const VERSION: u64 = 3;

/// The final Phase-II outcome carried into the sweep phase.
#[derive(Debug, Clone)]
pub struct GaFinal {
    /// The best pin assignment found.
    pub best: PinAssignment,
    /// Per-generation statistics.
    pub history: Vec<GenStats>,
    /// Fitness evaluations spent.
    pub evaluations: usize,
}

/// Which phase the job was in, with that phase's resumable state.
#[derive(Debug, Clone)]
pub enum CheckpointPhase {
    /// Mid-search: the GA engine state at a generation boundary.
    Ga(GaSearchState<PinAssignment>),
    /// Search done, mid-sweep: the final GA outcome (to recompute the
    /// circuit) plus the sweep cursor.
    Sweep {
        /// The completed search's outcome.
        ga: GaFinal,
        /// The interpretation-freedom sweep's position.
        progress: AnyIoProgress,
    },
}

/// One job's complete resumable state.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The workload being audited (functions, name, seed override).
    pub workload: Workload,
    /// The resolved search seed.
    pub seed: u64,
    /// The obfuscation family the job runs under. Resume honours this
    /// tag, not the service's current configuration, so the continued
    /// run is bit-identical to the uninterrupted one.
    pub scheme: SchemeKind,
    /// Failed fitness evaluations tallied so far (resumes as the base
    /// for the continued run's own tally).
    pub failed_evaluations: usize,
    /// Phase state.
    pub phase: CheckpointPhase,
}

/// A checkpoint read failure.
#[derive(Debug)]
pub enum CheckpointError {
    /// The document is not valid JSON or not a valid checkpoint.
    Malformed(String),
    /// The file carries a format/version this reader does not support.
    Unsupported(String),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Unsupported(m) => write!(f, "unsupported checkpoint: {m}"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Malformed(e.to_string())
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn bits(x: f64) -> Value {
    Value::str(format!("{:#018x}", x.to_bits()))
}

fn from_bits(v: &Value) -> Result<f64, CheckpointError> {
    let s = v
        .as_str()
        .ok_or_else(|| CheckpointError::Malformed("float bits are not a string".into()))?;
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| CheckpointError::Malformed(format!("'{s}' is not an 0x bit pattern")))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Malformed(format!("'{s}' is not an 0x bit pattern")))
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, CheckpointError> {
    v.get(key)
        .ok_or_else(|| CheckpointError::Malformed(format!("missing field '{key}'")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, CheckpointError> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| CheckpointError::Malformed(format!("field '{key}' is not an integer")))
}

fn stats_value(s: &GenStats) -> Value {
    Value::Obj(vec![
        ("best_so_far".into(), bits(s.best_so_far)),
        ("best".into(), bits(s.best)),
        ("avg".into(), bits(s.avg)),
    ])
}

fn stats_from(v: &Value) -> Result<GenStats, CheckpointError> {
    Ok(GenStats {
        best_so_far: from_bits(field(v, "best_so_far")?)?,
        best: from_bits(field(v, "best")?)?,
        avg: from_bits(field(v, "avg")?)?,
    })
}

fn history_value(history: &[GenStats]) -> Value {
    Value::Arr(history.iter().map(stats_value).collect())
}

fn history_from(v: &Value, key: &str) -> Result<Vec<GenStats>, CheckpointError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| CheckpointError::Malformed(format!("field '{key}' is not an array")))?
        .iter()
        .map(stats_from)
        .collect()
}

fn scored(genome: &PinAssignment, fitness: f64) -> Value {
    Value::Obj(vec![
        ("genome".into(), encode_assignment(genome)),
        ("fitness".into(), bits(fitness)),
    ])
}

fn scored_from(v: &Value) -> Result<(PinAssignment, f64), CheckpointError> {
    Ok((
        decode_assignment(field(v, "genome")?)?,
        from_bits(field(v, "fitness")?)?,
    ))
}

fn ga_state_value(s: &GaSearchState<PinAssignment>) -> Value {
    Value::Obj(vec![
        ("generation".into(), Value::usize(s.generation)),
        (
            "master_rng".into(),
            Value::Arr(s.master_rng.iter().map(|&w| Value::u64(w)).collect()),
        ),
        (
            "population".into(),
            Value::Arr(s.population.iter().map(|(g, f)| scored(g, *f)).collect()),
        ),
        ("best".into(), scored(&s.best.0, s.best.1)),
        ("history".into(), history_value(&s.history)),
        ("evaluations".into(), Value::usize(s.evaluations)),
    ])
}

fn ga_state_from(v: &Value) -> Result<GaSearchState<PinAssignment>, CheckpointError> {
    let rng_words = field(v, "master_rng")?
        .as_arr()
        .ok_or_else(|| CheckpointError::Malformed("field 'master_rng' is not an array".into()))?;
    if rng_words.len() != 4 {
        return Err(CheckpointError::Malformed(
            "field 'master_rng' is not 4 words".into(),
        ));
    }
    let mut master_rng = [0u64; 4];
    for (slot, w) in master_rng.iter_mut().zip(rng_words) {
        *slot = w
            .as_u64()
            .ok_or_else(|| CheckpointError::Malformed("master_rng word is not a u64".into()))?;
    }
    let population = field(v, "population")?
        .as_arr()
        .ok_or_else(|| CheckpointError::Malformed("field 'population' is not an array".into()))?
        .iter()
        .map(scored_from)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(GaSearchState {
        generation: usize_field(v, "generation")?,
        master_rng,
        population,
        best: scored_from(field(v, "best")?)?,
        history: history_from(v, "history")?,
        evaluations: usize_field(v, "evaluations")?,
    })
}

/// `best` entries use `null` for "no witness yet" (`usize::MAX` does not
/// fit an exact JSON number).
fn progress_value(p: &AnyIoProgress) -> Value {
    Value::Obj(vec![
        ("pos".into(), Value::usize(p.pos)),
        (
            "best".into(),
            Value::Arr(
                p.best
                    .iter()
                    .map(|&b| {
                        if b == usize::MAX {
                            Value::Null
                        } else {
                            Value::usize(b)
                        }
                    })
                    .collect(),
            ),
        ),
        (
            "queries".into(),
            Value::Arr(p.queries.iter().map(|&q| Value::usize(q)).collect()),
        ),
        (
            "resolved".into(),
            Value::Arr(
                p.resolved
                    .iter()
                    .map(|&(uid, sat)| {
                        Value::Arr(vec![Value::usize(uid as usize), Value::Bool(sat)])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn progress_from(v: &Value) -> Result<AnyIoProgress, CheckpointError> {
    let best = field(v, "best")?
        .as_arr()
        .ok_or_else(|| CheckpointError::Malformed("field 'best' is not an array".into()))?
        .iter()
        .map(|b| match b {
            Value::Null => Ok(usize::MAX),
            b => b.as_usize().ok_or_else(|| {
                CheckpointError::Malformed("best entry is not null or an integer".into())
            }),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let queries = field(v, "queries")?
        .as_arr()
        .ok_or_else(|| CheckpointError::Malformed("field 'queries' is not an array".into()))?
        .iter()
        .map(|q| {
            q.as_usize()
                .ok_or_else(|| CheckpointError::Malformed("queries entry is not an integer".into()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let resolved = field(v, "resolved")?
        .as_arr()
        .ok_or_else(|| CheckpointError::Malformed("field 'resolved' is not an array".into()))?
        .iter()
        .map(|entry| {
            let pair = entry.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                CheckpointError::Malformed("resolved entry is not a [uid, bool] pair".into())
            })?;
            let uid = pair[0]
                .as_usize()
                .filter(|&u| u <= u32::MAX as usize)
                .ok_or_else(|| {
                    CheckpointError::Malformed("resolved uid is not a 32-bit integer".into())
                })?;
            let sat = pair[1].as_bool().ok_or_else(|| {
                CheckpointError::Malformed("resolved verdict is not a bool".into())
            })?;
            Ok((uid as u32, sat))
        })
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    Ok(AnyIoProgress {
        pos: usize_field(v, "pos")?,
        best,
        queries,
        resolved,
    })
}

impl Checkpoint {
    /// Serializes to the versioned JSON document.
    pub fn to_value(&self) -> Value {
        let (phase_tag, ga, sweep) = match &self.phase {
            CheckpointPhase::Ga(state) => ("ga", ga_state_value(state), Value::Null),
            CheckpointPhase::Sweep { ga, progress } => (
                "sweep",
                Value::Obj(vec![
                    ("best".into(), encode_assignment(&ga.best)),
                    ("history".into(), history_value(&ga.history)),
                    ("evaluations".into(), Value::usize(ga.evaluations)),
                ]),
                progress_value(progress),
            ),
        };
        Value::Obj(vec![
            ("format".into(), Value::str(FORMAT)),
            ("version".into(), Value::usize(VERSION as usize)),
            ("workload".into(), encode_workload(&self.workload)),
            ("seed".into(), Value::u64(self.seed)),
            ("scheme".into(), Value::str(self.scheme.tag())),
            (
                "failed_evaluations".into(),
                Value::usize(self.failed_evaluations),
            ),
            ("phase".into(), Value::str(phase_tag)),
            ("ga".into(), ga),
            ("sweep".into(), sweep),
        ])
    }

    /// Parses a checkpoint document, rejecting unknown formats and
    /// versions.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on malformed or unsupported documents.
    pub fn from_value(v: &Value) -> Result<Checkpoint, CheckpointError> {
        let format = field(v, "format")?.as_str().unwrap_or("");
        if format != FORMAT {
            return Err(CheckpointError::Unsupported(format!(
                "format '{format}' (expected '{FORMAT}')"
            )));
        }
        let version = field(v, "version")?.as_u64().unwrap_or(0);
        if version != VERSION {
            return Err(CheckpointError::Unsupported(format!(
                "version {version} (this build reads {VERSION})"
            )));
        }
        let workload = decode_workload(field(v, "workload")?)?;
        let seed = field(v, "seed")?
            .as_u64()
            .ok_or_else(|| CheckpointError::Malformed("field 'seed' is not a u64".into()))?;
        let scheme_tag = field(v, "scheme")?
            .as_str()
            .ok_or_else(|| CheckpointError::Malformed("field 'scheme' is not a string".into()))?;
        let scheme = SchemeKind::from_tag(scheme_tag).ok_or_else(|| {
            CheckpointError::Unsupported(format!("obfuscation scheme '{scheme_tag}'"))
        })?;
        let failed_evaluations = usize_field(v, "failed_evaluations")?;
        let phase = match field(v, "phase")?.as_str() {
            Some("ga") => CheckpointPhase::Ga(ga_state_from(field(v, "ga")?)?),
            Some("sweep") => {
                let ga = field(v, "ga")?;
                CheckpointPhase::Sweep {
                    ga: GaFinal {
                        best: decode_assignment(field(ga, "best")?)?,
                        history: history_from(ga, "history")?,
                        evaluations: usize_field(ga, "evaluations")?,
                    },
                    progress: progress_from(field(v, "sweep")?)?,
                }
            }
            _ => {
                return Err(CheckpointError::Malformed(
                    "field 'phase' is not 'ga' or 'sweep'".into(),
                ))
            }
        };
        Ok(Checkpoint {
            workload,
            seed,
            scheme,
            failed_evaluations,
            phase,
        })
    }

    /// Serializes to one JSON line.
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// Parses [`Checkpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on malformed or unsupported documents.
    pub fn from_json(text: &str) -> Result<Checkpoint, CheckpointError> {
        let v = Value::parse(text).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        Checkpoint::from_value(&v)
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename),
    /// so a crash mid-write never corrupts the previous checkpoint.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn write(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a checkpoint written by [`Checkpoint::write`].
    ///
    /// # Errors
    ///
    /// Filesystem, parse, or version errors.
    pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::from_json(std::fs::read_to_string(path)?.trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> GaSearchState<PinAssignment> {
        let genome = PinAssignment {
            input_perms: vec![vec![1, 0, 2, 3], vec![0, 1, 2, 3]],
            output_perms: vec![vec![3, 2, 1, 0], vec![0, 2, 1, 3]],
        };
        GaSearchState {
            generation: 7,
            master_rng: [u64::MAX, 1, 0x0123_4567_89AB_CDEF, 42],
            population: vec![(genome.clone(), 92.5), (genome.clone(), f64::INFINITY)],
            best: (genome, 92.5),
            history: vec![GenStats {
                best_so_far: 92.5,
                best: 92.5,
                avg: f64::INFINITY,
            }],
            evaluations: 16,
        }
    }

    fn sample_workload() -> Workload {
        Workload {
            name: "ck".into(),
            functions: mvf_sboxes::optimal_sboxes()[..2].to_vec(),
            seed: Some(u64::MAX - 1),
        }
    }

    #[test]
    fn ga_checkpoint_round_trips_bit_exactly() {
        let cp = Checkpoint {
            workload: sample_workload(),
            seed: 0xDEAD_BEEF_DEAD_BEEF,
            scheme: SchemeKind::Camouflage,
            failed_evaluations: 3,
            phase: CheckpointPhase::Ga(sample_state()),
        };
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back.seed, cp.seed);
        assert_eq!(back.failed_evaluations, 3);
        assert_eq!(back.workload.seed, cp.workload.seed);
        let CheckpointPhase::Ga(state) = back.phase else {
            panic!("phase changed");
        };
        let want = sample_state();
        assert_eq!(state.generation, want.generation);
        assert_eq!(state.master_rng, want.master_rng);
        assert_eq!(state.evaluations, want.evaluations);
        assert_eq!(state.population.len(), want.population.len());
        for ((g, f), (wg, wf)) in state.population.iter().zip(&want.population) {
            assert_eq!(g, wg);
            assert_eq!(f.to_bits(), wf.to_bits(), "fitness bits must survive");
        }
        assert_eq!(
            state.history[0].avg.to_bits(),
            f64::INFINITY.to_bits(),
            "INFINITY survives the bits encoding"
        );
    }

    #[test]
    fn sweep_checkpoint_round_trips() {
        let cp = Checkpoint {
            workload: sample_workload(),
            seed: 9,
            scheme: SchemeKind::Locking,
            failed_evaluations: 0,
            phase: CheckpointPhase::Sweep {
                ga: GaFinal {
                    best: PinAssignment {
                        input_perms: vec![vec![0, 1]],
                        output_perms: vec![vec![1, 0]],
                    },
                    history: Vec::new(),
                    evaluations: 40,
                },
                progress: AnyIoProgress {
                    pos: 17,
                    best: vec![usize::MAX, 4],
                    queries: vec![9, 2],
                    resolved: vec![(0, false), (3, true), (11, false)],
                },
            },
        };
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        let CheckpointPhase::Sweep { ga, progress } = back.phase else {
            panic!("phase changed");
        };
        assert_eq!(ga.evaluations, 40);
        assert_eq!(progress.pos, 17);
        assert_eq!(progress.best, vec![usize::MAX, 4]);
        assert_eq!(progress.queries, vec![9, 2]);
        assert_eq!(progress.resolved, vec![(0, false), (3, true), (11, false)]);
    }

    #[test]
    fn unknown_formats_and_versions_are_rejected() {
        let cp = Checkpoint {
            workload: sample_workload(),
            seed: 1,
            scheme: SchemeKind::Camouflage,
            failed_evaluations: 0,
            phase: CheckpointPhase::Ga(sample_state()),
        };
        let good = cp.to_json();
        let wrong_version = good.replacen("\"version\":3", "\"version\":999", 1);
        assert!(matches!(
            Checkpoint::from_json(&wrong_version),
            Err(CheckpointError::Unsupported(_))
        ));
        let wrong_format = good.replacen(FORMAT, "other-format", 1);
        assert!(matches!(
            Checkpoint::from_json(&wrong_format),
            Err(CheckpointError::Unsupported(_))
        ));
        assert!(Checkpoint::from_json("{}").is_err());
        assert!(Checkpoint::from_json("not json").is_err());
    }

    #[test]
    fn write_and_read_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("mvf-serve-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.checkpoint.json");
        let cp = Checkpoint {
            workload: sample_workload(),
            seed: 5,
            scheme: SchemeKind::Locking,
            failed_evaluations: 0,
            phase: CheckpointPhase::Ga(sample_state()),
        };
        cp.write(&path).unwrap();
        let back = Checkpoint::read(&path).unwrap();
        assert_eq!(back.seed, 5);
        std::fs::remove_file(&path).ok();
    }
}
