//! The audit service front end: a line-delimited JSON protocol over
//! stdio or TCP.
//!
//! Every request is one JSON object on one line with a `cmd` field;
//! every response is one JSON object on one line with an `ok` field:
//!
//! | `cmd` | fields | response |
//! |---|---|---|
//! | `submit` | `id`, `workload` *or* `checkpoint`, optional `wait` | `status` (and `report` with `wait`) |
//! | `status` | `id` | `status`, `error` when failed; done jobs add the sweep solver's inprocessing counters (`n_vivified`, `n_eliminated`, `n_reductions`) |
//! | `result` | `id` | `report` (once done) |
//! | `checkpoint` | `id` | `checkpoint` (latest boundary snapshot) |
//! | `cancel` | `id` | `status` — the job pauses at its next boundary |
//! | `shutdown` | — | `ok`; queued jobs are left unstarted |
//!
//! Jobs run on one worker thread that owns the [`SessionStore`], so
//! repeated submissions of the same circuit warm-start automatically.
//! A cancelled or shut-down job keeps its latest [`Checkpoint`]; fetch
//! it with `checkpoint` and resubmit it (the `checkpoint` field of
//! `submit`) to resume — the finished report is bit-identical to an
//! uninterrupted run.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::{Arc, Condvar, Mutex};

use mvf::cells::{CamoLibrary, Library};
use mvf::{lock_library, ObfuscationSpace, SchemeKind, Workload, WorkloadReport};
use mvf_attack::SimplifyStats;

use crate::checkpoint::Checkpoint;
use crate::job::{resume_audit, run_audit, AuditOutcome, Control};
use crate::json::Value;
use crate::store::SessionStore;
use crate::wire::{decode_workload, encode_report_in};
use crate::ServeConfig;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Cancelled,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Cancelled => "cancelled",
        }
    }
}

struct JobEntry {
    workload: Workload,
    seed: u64,
    /// The obfuscation family this job runs under (the checkpoint's on
    /// resume, the service's otherwise); picks the choice library its
    /// report's netlist is encoded against.
    scheme: SchemeKind,
    phase: Phase,
    cancel: bool,
    /// Latest boundary snapshot (the submitted one before the job
    /// starts; then refreshed at every observer call).
    checkpoint: Option<Checkpoint>,
    /// Whether this submission resumes from `checkpoint`.
    resume: bool,
    report: Option<Box<WorkloadReport>>,
    /// The sweep solver's inprocessing counters, once the job is done.
    sat: Option<SimplifyStats>,
}

struct State {
    jobs: HashMap<String, JobEntry>,
    queue: std::collections::VecDeque<String>,
    submitted: u64,
    shutdown: bool,
}

struct Inner {
    cfg: ServeConfig,
    lib: Library,
    camo: CamoLibrary,
    lock: CamoLibrary,
    state: Mutex<State>,
    cv: Condvar,
}

/// The audit service: one worker thread draining a job queue, plus
/// [`handle`](AuditService::handle) for the wire protocol. Construct
/// with [`AuditService::start`]; drive with
/// [`serve_stdio`](AuditService::serve_stdio) /
/// [`serve_tcp`](AuditService::serve_tcp) or call `handle` directly.
pub struct AuditService {
    inner: Arc<Inner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl AuditService {
    /// Starts the worker thread. The service audits with `cfg`'s flow
    /// over the standard cell libraries.
    pub fn start(cfg: ServeConfig) -> AuditService {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let lock = lock_library(&lib);
        let inner = Arc::new(Inner {
            cfg,
            lib,
            camo,
            lock,
            state: Mutex::new(State {
                jobs: HashMap::new(),
                queue: std::collections::VecDeque::new(),
                submitted: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::spawn(move || worker_loop(&worker_inner));
        AuditService {
            inner,
            worker: Some(worker),
        }
    }

    /// Handles one request line and returns the response line (without a
    /// trailing newline). Never panics on malformed input — protocol
    /// errors come back as `{"ok":false,"error":…}`.
    pub fn handle(&self, line: &str) -> String {
        self.inner.handle(line)
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.inner.state.lock().unwrap().shutdown
    }

    /// Requests shutdown (as the `shutdown` command would) and joins the
    /// worker. A running job is paused at its next boundary and keeps
    /// its checkpoint.
    pub fn shutdown_and_join(mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
            self.inner.cv.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            worker.join().expect("audit worker panicked");
        }
    }

    /// Serves the line protocol over a reader/writer pair until EOF or
    /// `shutdown`. This is the stdio front end of the `mvf-serve`
    /// binary, factored over generic streams so tests can drive it.
    ///
    /// # Errors
    ///
    /// I/O errors from the streams.
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle(&line);
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            if self.is_shutdown() {
                break;
            }
        }
        Ok(())
    }

    /// Serves the line protocol on stdin/stdout until EOF or `shutdown`.
    ///
    /// # Errors
    ///
    /// I/O errors from the standard streams.
    pub fn serve_stdio(&self) -> std::io::Result<()> {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        self.serve_lines(stdin.lock(), stdout.lock())
    }

    /// Binds `addr` and serves the line protocol to every connection,
    /// one thread per client, until `shutdown`.
    ///
    /// # Errors
    ///
    /// Bind/accept errors.
    pub fn serve_tcp(&self, addr: &str) -> std::io::Result<()> {
        let listener = std::net::TcpListener::bind(addr)?;
        // Poll-accept so a `shutdown` submitted by any client stops the
        // listener promptly.
        listener.set_nonblocking(true)?;
        loop {
            if self.is_shutdown() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    let inner = Arc::clone(&self.inner);
                    std::thread::spawn(move || {
                        let reader = std::io::BufReader::new(match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => return,
                        });
                        let mut writer = stream;
                        for line in reader.lines() {
                            let Ok(line) = line else { break };
                            if line.trim().is_empty() {
                                continue;
                            }
                            let response = inner.handle(&line);
                            if writer.write_all(response.as_bytes()).is_err()
                                || writer.write_all(b"\n").is_err()
                            {
                                break;
                            }
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn ok_response(extra: Vec<(String, Value)>) -> String {
    let mut fields = vec![("ok".to_string(), Value::Bool(true))];
    fields.extend(extra);
    Value::Obj(fields).to_string()
}

fn err_response(msg: &str) -> String {
    Value::Obj(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::str(msg)),
    ])
    .to_string()
}

impl Inner {
    /// Encodes a report under the job's scheme: the netlist's
    /// choice-bearing cells resolve against that family's library.
    fn report_value(&self, scheme: SchemeKind, report: &WorkloadReport) -> Value {
        let choices = match scheme {
            SchemeKind::Camouflage => &self.camo,
            SchemeKind::Locking => &self.lock,
        };
        encode_report_in(
            &ObfuscationSpace::with_kind(scheme, &self.lib, choices),
            report,
        )
    }

    fn handle(&self, line: &str) -> String {
        let request = match Value::parse(line) {
            Ok(v) => v,
            Err(e) => return err_response(&format!("bad request: {e}")),
        };
        match request.get("cmd").and_then(Value::as_str) {
            Some("submit") => self.submit(&request),
            Some("status") => self.status(&request),
            Some("result") => self.result(&request),
            Some("checkpoint") => self.checkpoint(&request),
            Some("cancel") => self.cancel(&request),
            Some("shutdown") => {
                let mut st = self.state.lock().unwrap();
                st.shutdown = true;
                self.cv.notify_all();
                ok_response(Vec::new())
            }
            Some(cmd) => err_response(&format!("unknown cmd '{cmd}'")),
            None => err_response("missing cmd"),
        }
    }

    fn job_id(request: &Value) -> Result<String, String> {
        request
            .get("id")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| "missing id".to_string())
    }

    fn submit(&self, request: &Value) -> String {
        let id = match Self::job_id(request) {
            Ok(id) => id,
            Err(e) => return err_response(&e),
        };
        // A submission is either a fresh workload or a checkpoint to
        // resume (which embeds its workload and seed).
        let (workload, seed, scheme, checkpoint, resume) = match request.get("checkpoint") {
            Some(cp) => match Checkpoint::from_value(cp) {
                Ok(cp) => (cp.workload.clone(), cp.seed, cp.scheme, Some(cp), true),
                Err(e) => return err_response(&format!("bad checkpoint: {e}")),
            },
            None => match request.get("workload") {
                Some(w) => match decode_workload(w) {
                    Ok(w) => (w, 0, self.cfg.scheme, None, false),
                    Err(e) => return err_response(&format!("bad workload: {e}")),
                },
                None => return err_response("submit needs a workload or a checkpoint"),
            },
        };
        let wait = request
            .get("wait")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        {
            let mut st = self.state.lock().unwrap();
            if st.shutdown {
                return err_response("service is shutting down");
            }
            if st.jobs.contains_key(&id) {
                return err_response(&format!("job '{id}' already exists"));
            }
            // Fresh submissions derive their seed exactly as a
            // `run_many` batch does, with the submission counter as the
            // batch index.
            let seed = if resume {
                seed
            } else {
                let index = st.submitted;
                workload.resolve_seed(self.cfg.flow.ga.seed, index)
            };
            st.submitted += 1;
            st.jobs.insert(
                id.clone(),
                JobEntry {
                    workload,
                    seed,
                    scheme,
                    phase: Phase::Queued,
                    cancel: false,
                    checkpoint,
                    resume,
                    report: None,
                    sat: None,
                },
            );
            st.queue.push_back(id.clone());
            self.cv.notify_all();
        }
        if wait {
            return self.wait_and_report(&id);
        }
        ok_response(vec![
            ("id".into(), Value::str(&id)),
            ("status".into(), Value::str(Phase::Queued.name())),
        ])
    }

    fn wait_and_report(&self, id: &str) -> String {
        let mut st = self.state.lock().unwrap();
        loop {
            let entry = st.jobs.get(id).expect("waited-on job exists");
            match entry.phase {
                Phase::Done => {
                    let report = entry.report.as_ref().expect("done job has a report");
                    return ok_response(vec![
                        ("id".into(), Value::str(id)),
                        ("status".into(), Value::str(Phase::Done.name())),
                        ("report".into(), self.report_value(entry.scheme, report)),
                    ]);
                }
                Phase::Cancelled => {
                    return ok_response(vec![
                        ("id".into(), Value::str(id)),
                        ("status".into(), Value::str(Phase::Cancelled.name())),
                    ]);
                }
                Phase::Queued | Phase::Running => {
                    st = self.cv.wait(st).unwrap();
                }
            }
        }
    }

    fn status(&self, request: &Value) -> String {
        let id = match Self::job_id(request) {
            Ok(id) => id,
            Err(e) => return err_response(&e),
        };
        let st = self.state.lock().unwrap();
        match st.jobs.get(&id) {
            Some(entry) => {
                let mut fields = vec![
                    ("id".into(), Value::str(&id)),
                    ("status".into(), Value::str(entry.phase.name())),
                ];
                // A finished job also reports what inprocessing did to
                // its sweep solver.
                if let Some(sat) = &entry.sat {
                    fields.push(("n_vivified".into(), Value::u64(sat.n_vivified)));
                    fields.push(("n_eliminated".into(), Value::u64(sat.n_eliminated)));
                    fields.push(("n_reductions".into(), Value::u64(sat.n_reductions)));
                }
                ok_response(fields)
            }
            None => err_response(&format!("no job '{id}'")),
        }
    }

    fn result(&self, request: &Value) -> String {
        let id = match Self::job_id(request) {
            Ok(id) => id,
            Err(e) => return err_response(&e),
        };
        let st = self.state.lock().unwrap();
        match st.jobs.get(&id) {
            Some(entry) => match &entry.report {
                Some(report) => ok_response(vec![
                    ("id".into(), Value::str(&id)),
                    ("report".into(), self.report_value(entry.scheme, report)),
                ]),
                None => err_response(&format!(
                    "job '{id}' is {}, no report yet",
                    entry.phase.name()
                )),
            },
            None => err_response(&format!("no job '{id}'")),
        }
    }

    fn checkpoint(&self, request: &Value) -> String {
        let id = match Self::job_id(request) {
            Ok(id) => id,
            Err(e) => return err_response(&e),
        };
        let st = self.state.lock().unwrap();
        match st.jobs.get(&id) {
            Some(entry) => match &entry.checkpoint {
                Some(cp) => ok_response(vec![
                    ("id".into(), Value::str(&id)),
                    ("checkpoint".into(), cp.to_value()),
                ]),
                None => err_response(&format!("job '{id}' has no checkpoint yet")),
            },
            None => err_response(&format!("no job '{id}'")),
        }
    }

    fn cancel(&self, request: &Value) -> String {
        let id = match Self::job_id(request) {
            Ok(id) => id,
            Err(e) => return err_response(&e),
        };
        let mut st = self.state.lock().unwrap();
        match st.jobs.get_mut(&id) {
            Some(entry) => {
                let phase = match entry.phase {
                    // A queued job never starts; a running one pauses at
                    // its next checkpoint boundary.
                    Phase::Queued => {
                        entry.phase = Phase::Cancelled;
                        st.queue.retain(|q| q != &id);
                        self.cv.notify_all();
                        Phase::Cancelled
                    }
                    Phase::Running => {
                        entry.cancel = true;
                        Phase::Running
                    }
                    done => done,
                };
                ok_response(vec![
                    ("id".into(), Value::str(&id)),
                    ("status".into(), Value::str(phase.name())),
                ])
            }
            None => err_response(&format!("no job '{id}'")),
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut store = SessionStore::new(inner.cfg.session_cache_bytes);
    loop {
        // Claim the next runnable job.
        let (id, workload, seed, resume_from) = {
            let mut st = inner.state.lock().unwrap();
            let id = loop {
                if let Some(id) = st.queue.pop_front() {
                    break id;
                }
                if st.shutdown {
                    return;
                }
                st = inner.cv.wait(st).unwrap();
            };
            let entry = st.jobs.get_mut(&id).expect("queued job exists");
            entry.phase = Phase::Running;
            let resume_from = if entry.resume {
                entry.checkpoint.clone()
            } else {
                None
            };
            (id, entry.workload.clone(), entry.seed, resume_from)
        };

        // Run it with the lock released; the observer re-locks briefly
        // at every boundary to publish the checkpoint and poll for
        // cancel/shutdown.
        let mut observer = |cp: &Checkpoint| {
            let mut st = inner.state.lock().unwrap();
            let entry = st.jobs.get_mut(&id).expect("running job exists");
            entry.checkpoint = Some(cp.clone());
            if let Some(dir) = &inner.cfg.checkpoint_dir {
                let path = dir.join(format!("{id}.checkpoint.json"));
                if let Err(e) = cp.write(&path) {
                    eprintln!("mvf-serve: checkpoint write failed for '{id}': {e}");
                }
            }
            if entry.cancel || st.shutdown {
                Control::Pause
            } else {
                Control::Continue
            }
        };
        let outcome = match resume_from {
            Some(cp) => resume_audit(&inner.cfg, cp, Some(&mut store), &mut observer),
            None => run_audit(&inner.cfg, &workload, seed, Some(&mut store), &mut observer),
        };

        let mut st = inner.state.lock().unwrap();
        let entry = st.jobs.get_mut(&id).expect("running job exists");
        match outcome {
            AuditOutcome::Finished { report, sat } => {
                entry.phase = Phase::Done;
                entry.report = Some(report);
                entry.sat = Some(sat);
            }
            AuditOutcome::Paused(cp) => {
                entry.phase = Phase::Cancelled;
                entry.checkpoint = Some(*cp);
            }
        }
        inner.cv.notify_all();
        if st.shutdown {
            return;
        }
    }
}
