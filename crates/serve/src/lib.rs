//! **mvf-serve** — a persistent obfuscation-audit service over the MVF
//! flow.
//!
//! The batch entry point ([`mvf::Flow::run_many`]) treats every workload
//! as a one-shot: encode, search, sweep, discard. A long-lived audit
//! service wants three things a one-shot cannot give:
//!
//! * **Session caching** ([`store::SessionStore`]): circuits resubmitted
//!   with new candidate batches reuse the encoded SAT instance and its
//!   accumulated learnt clauses, keyed by content fingerprint with a
//!   byte-budgeted LRU. Warm answers are bit-identical to cold ones.
//! * **Checkpoint/resume** ([`checkpoint`], [`job`]): long jobs
//!   snapshot their complete state at every safe boundary; a killed job
//!   resumes from its last checkpoint and finishes **bit-identically**
//!   to a run that was never interrupted.
//! * **A wire format** ([`json`], [`wire`]): a hand-rolled, strict,
//!   canonical JSON codec for workloads, netlists, reports and verdicts
//!   — no external dependencies, round-trip property-tested.
//!
//! [`server::AuditService`] ties them together behind a line-delimited
//! request/response protocol served over stdio or TCP by the
//! `mvf-serve` binary.
//!
//! # Knobs (environment, read by [`ServeConfig::from_env`])
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MVF_SERVE_ADDR` | TCP listen address for the binary; unset = stdio | unset |
//! | `MVF_CHECKPOINT_STEPS` | GA generations between checkpoints | 1 |
//! | `MVF_SESSION_CACHE_MB` | session-cache byte budget, in MiB | 64 |
//! | `MVF_GA_POP` / `MVF_GA_GENS` | GA budget per job (as in `mvf-bench`) | 8 / 5 |
//! | `MVF_ATTACK_NPN` | `1`/`true`: sweep the full NPN orbit (polarity flips included) | off |
//! | `MVF_ATTACK_CLASS_SHARE` | `1`/`true`: share screen/SAT verdicts across same-class candidates | off |
//! | `MVF_SCHEME` | obfuscation family for fresh jobs: `camo` or `locking` | `camo` |
//! | `MVF_LOCK_XOR` / `MVF_LOCK_MUX` | key-gate counts of a locking flow | 4 / 2 |
//! | `MVF_LOCK_SEED` | key-gate placement seed of a locking flow | fixed |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod job;
pub mod json;
pub mod server;
pub mod store;
pub mod wire;

pub use checkpoint::{Checkpoint, CheckpointPhase};
pub use job::{audit, resume_audit, run_audit, AuditOutcome, Control};
pub use server::AuditService;
pub use store::SessionStore;

use std::path::PathBuf;

use mvf::{FlowConfig, LockOptions, SchemeKind};

/// Service configuration: the flow every job runs, plus the service's
/// own pacing and budgets.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The flow configuration (script, GA budget, mapper options,
    /// validation) each audited workload runs through.
    pub flow: FlowConfig,
    /// GA generations between checkpoint boundaries (min 1).
    pub checkpoint_steps: usize,
    /// Sweep work items between checkpoint boundaries (min 1).
    pub sweep_chunk: usize,
    /// Byte budget of the worker's [`SessionStore`].
    pub session_cache_bytes: usize,
    /// The red-team sweep's SAT-free screen (on by default, exactly as
    /// [`mvf::FlowBuilder::attack_screen`]); verdicts are bit-identical
    /// either way, only query counts change.
    pub attack_screen: bool,
    /// Extends the sweep's orbit to the complete NPN group (polarity
    /// flips on every pin), as [`mvf::FlowBuilder::attack_npn`]. Off by
    /// default: the orbit grows by `2^(n_in + n_out)`.
    pub attack_npn: bool,
    /// Shares screen passes and SAT verdicts across candidates in the
    /// same interpretation class, as
    /// [`mvf::FlowBuilder::attack_class_share`]. Verdicts and witnesses
    /// are bit-identical either way; only query counts drop.
    pub attack_class_share: bool,
    /// The obfuscation family fresh jobs run
    /// ([`mvf::FlowBuilder::scheme`]). Resumed jobs always keep the
    /// scheme recorded in their checkpoint, so flipping this knob never
    /// changes an in-flight audit.
    pub scheme: SchemeKind,
    /// Key-gate insertion options of a locking flow
    /// ([`mvf::FlowBuilder::lock_options`]); ignored under camouflage.
    pub lock: LockOptions,
    /// When set, every checkpoint is also written (atomically) to
    /// `<dir>/<job-id>.checkpoint.json`.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    /// Service defaults: a demo-sized GA budget (population 8, five
    /// generations — the same default as `mvf-bench`), a checkpoint at
    /// every generation, 64 MiB of session cache, no checkpoint files.
    fn default() -> Self {
        let mut flow = FlowConfig::default();
        flow.ga.population = 8;
        flow.ga.generations = 5;
        ServeConfig {
            flow,
            checkpoint_steps: 1,
            sweep_chunk: 64,
            session_cache_bytes: 64 << 20,
            attack_screen: true,
            attack_npn: false,
            attack_class_share: false,
            scheme: SchemeKind::Camouflage,
            lock: LockOptions::default(),
            checkpoint_dir: None,
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_bool(name: &str, default: bool) -> bool {
    std::env::var(name)
        .ok()
        .map_or(default, |v| matches!(v.as_str(), "1" | "true" | "on"))
}

impl ServeConfig {
    /// The default configuration with the environment knobs applied
    /// (see the crate docs table).
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        cfg.flow.ga.population = env_usize("MVF_GA_POP", cfg.flow.ga.population);
        cfg.flow.ga.generations = env_usize("MVF_GA_GENS", cfg.flow.ga.generations);
        cfg.checkpoint_steps = env_usize("MVF_CHECKPOINT_STEPS", cfg.checkpoint_steps).max(1);
        cfg.session_cache_bytes = env_usize("MVF_SESSION_CACHE_MB", 64) << 20;
        cfg.attack_npn = env_bool("MVF_ATTACK_NPN", cfg.attack_npn);
        cfg.attack_class_share = env_bool("MVF_ATTACK_CLASS_SHARE", cfg.attack_class_share);
        if let Ok(tag) = std::env::var("MVF_SCHEME") {
            if let Some(kind) = SchemeKind::from_tag(&tag) {
                cfg.scheme = kind;
            }
        }
        cfg.lock.n_xor = env_usize("MVF_LOCK_XOR", cfg.lock.n_xor);
        cfg.lock.n_mux = env_usize("MVF_LOCK_MUX", cfg.lock.n_mux);
        if let Some(seed) = std::env::var("MVF_LOCK_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.lock.seed = seed;
        }
        cfg
    }
}
