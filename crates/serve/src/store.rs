//! A bounded, byte-accounted cache of warm [`SweepSession`]s.
//!
//! The service audits many circuits over its lifetime, but tends to see
//! the same few repeatedly (the same obfuscated design re-submitted with
//! new candidate batches). [`SessionStore`] keeps the expensive part —
//! the encoded SAT instance with its accumulated learnt clauses, plus
//! cached screen batches — alive between submissions, keyed by the
//! circuit's content fingerprint, and evicts least-recently-used
//! sessions once the retained state exceeds a byte budget.
//!
//! Caching is invisible in the results: a warm session answers every
//! sweep identically to a cold one (verdicts, witnesses *and* query
//! counts), so eviction only ever costs time, never correctness — the
//! store's tests assert exactly that under a budget small enough to
//! evict on every access.

use mvf::cells::{CamoLibrary, Library};
use mvf::netlist::Netlist;
use mvf::ObfuscationSpace;
use mvf_attack::SweepSession;

/// A byte-budgeted LRU cache of [`SweepSession`]s keyed by circuit
/// content fingerprint.
pub struct SessionStore {
    /// Byte budget for retained sessions (approximate, from
    /// [`SweepSession::db_bytes`]).
    budget: usize,
    /// Monotone access clock for LRU ordering.
    tick: u64,
    entries: Vec<Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

struct Entry {
    key: u64,
    session: SweepSession,
    last_used: u64,
}

impl SessionStore {
    /// A store that retains at most `budget` bytes of session state
    /// (approximately — the session in use is never evicted, so one
    /// oversized circuit still works, it just caches nothing else).
    pub fn new(budget: usize) -> SessionStore {
        SessionStore {
            budget,
            tick: 0,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The warm camouflage session for this circuit — shorthand for
    /// [`SessionStore::session_in`] over a camouflage space.
    pub fn session(
        &mut self,
        nl: &Netlist,
        lib: &Library,
        camo: &CamoLibrary,
    ) -> &mut SweepSession {
        self.session_in(&ObfuscationSpace::camouflage(lib, camo), nl)
    }

    /// The warm session for this circuit under this obfuscation space,
    /// creating (and evicting) on a miss. The cache key commits to the
    /// scheme as well as the circuit, so a camouflage session and a
    /// locking session over the same netlist never collide. The
    /// returned session is pinned for this call: eviction to meet the
    /// budget never removes it.
    pub fn session_in(&mut self, space: &ObfuscationSpace<'_>, nl: &Netlist) -> &mut SweepSession {
        let key = space.fingerprint(nl);
        self.tick += 1;
        let tick = self.tick;
        if let Some(i) = self.entries.iter().position(|e| e.key == key) {
            self.hits += 1;
            self.entries[i].last_used = tick;
            return &mut self.entries[i].session;
        }
        self.misses += 1;
        self.entries.push(Entry {
            key,
            session: SweepSession::new_in(space, nl),
            last_used: tick,
        });
        self.shrink_to_budget(key);
        let i = self
            .entries
            .iter()
            .position(|e| e.key == key)
            .expect("the just-inserted session is never evicted");
        &mut self.entries[i].session
    }

    /// Evicts least-recently-used sessions until the budget holds,
    /// always keeping `pinned`.
    fn shrink_to_budget(&mut self, pinned: u64) {
        while self.bytes() > self.budget && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.key != pinned)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.entries.remove(i);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Approximate bytes retained across all cached sessions.
    pub fn bytes(&self) -> usize {
        self.entries.iter().map(|e| e.session.db_bytes()).sum()
    }

    /// Cached sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from a warm session.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that built a fresh session.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Sessions evicted to meet the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_attack::{random_camouflage, SweepOptions};
    use mvf_sboxes::optimal_sboxes;

    fn setup() -> (Library, CamoLibrary) {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        (lib, camo)
    }

    #[test]
    fn repeated_lookups_hit_the_same_session() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let circuit = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let mut store = SessionStore::new(usize::MAX);
        let key = store.session(&circuit, &lib, &camo).key();
        assert_eq!(store.session(&circuit, &lib, &camo).key(), key);
        assert_eq!(store.len(), 1);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn distinct_circuits_get_distinct_sessions() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let a = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let b = random_camouflage(&boxes[1], &lib, &camo).unwrap();
        let mut store = SessionStore::new(usize::MAX);
        let ka = store.session(&a, &lib, &camo).key();
        let kb = store.session(&b, &lib, &camo).key();
        assert_ne!(ka, kb);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn distinct_schemes_over_one_netlist_never_share_a_session() {
        let (lib, camo) = setup();
        let lock = mvf::lock_library(&lib);
        // A plain standard-cell circuit is valid under both families, so
        // only the scheme commitment keeps their cache keys apart.
        let nand = lib.cell_by_name("NAND2").unwrap();
        let mut circuit = Netlist::new("plain");
        let a = circuit.add_input("a");
        let b = circuit.add_input("b");
        let (_, ab) = circuit.add_cell("g0", mvf::netlist::CellRef::Std(nand), vec![a, b]);
        circuit.add_output("y", ab);
        let camo_space = ObfuscationSpace::camouflage(&lib, &camo);
        let lock_space = ObfuscationSpace::locking(&lib, &lock);
        assert_ne!(
            camo_space.fingerprint(&circuit),
            lock_space.fingerprint(&circuit),
            "the session key must commit to the scheme, not just the netlist"
        );
        let mut store = SessionStore::new(usize::MAX);
        store.session_in(&camo_space, &circuit);
        store.session_in(&lock_space, &circuit);
        assert_eq!(store.len(), 2, "one netlist, two schemes, two sessions");
        assert_eq!(store.misses(), 2);
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn a_tiny_budget_evicts_but_never_changes_verdicts() {
        let (lib, camo) = setup();
        let boxes = optimal_sboxes();
        let a = random_camouflage(&boxes[0], &lib, &camo).unwrap();
        let b = random_camouflage(&boxes[1], &lib, &camo).unwrap();
        let candidates = boxes[..3].to_vec();
        let opts = SweepOptions::default();
        // Reference verdicts from an unbounded store.
        let mut big = SessionStore::new(usize::MAX);
        let want_a =
            big.session(&a, &lib, &camo)
                .sweep_identity(&a, &lib, &camo, &candidates, &opts);
        let want_b =
            big.session(&b, &lib, &camo)
                .sweep_identity(&b, &lib, &camo, &candidates, &opts);
        // A budget of one byte cannot hold any session: every alternating
        // access rebuilds cold. Results must not move.
        let mut tiny = SessionStore::new(1);
        for _ in 0..2 {
            let got_a =
                tiny.session(&a, &lib, &camo)
                    .sweep_identity(&a, &lib, &camo, &candidates, &opts);
            assert_eq!(got_a, want_a);
            let got_b =
                tiny.session(&b, &lib, &camo)
                    .sweep_identity(&b, &lib, &camo, &candidates, &opts);
            assert_eq!(got_b, want_b);
        }
        assert_eq!(tiny.len(), 1, "over-budget sessions must not pile up");
        assert!(tiny.evictions() >= 3, "evictions: {}", tiny.evictions());
        assert_eq!(tiny.hits(), 0, "a one-byte budget can never serve warm");
    }
}
